//! `oebench` — command-line access to the benchmark library: list and
//! inspect the dataset registry, extract open-environment statistics,
//! run prequential evaluations, get algorithm recommendations, and
//! export generated streams as CSV.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match oebench::cli::parse(&args) {
        Ok(opts) => opts,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    match oebench::cli::execute(&opts) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
