//! `oebench` — command-line access to the benchmark library: list and
//! inspect the dataset registry, extract open-environment statistics,
//! run prequential evaluations, run checkpointed sweeps, get algorithm
//! recommendations, and export generated streams as CSV.
//!
//! Exit codes: `0` success, `2` usage errors, `3..=12` the typed
//! [`oeb_core::HarnessError`] codes (see `CliError`), `1` anything else.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match oebench::cli::parse(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    };
    match oebench::cli::execute(&opts) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
