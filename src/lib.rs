//! # oebench
//!
//! A from-scratch Rust reproduction of *OEBench: Investigating Open
//! Environment Challenges in Real-World Relational Data Streams*
//! (VLDB 2024): synthetic relational data streams exhibiting the paper's
//! open-environment phenomena, the full statistics-extraction and
//! dataset-selection pipeline, ten stream-learning algorithms, and the
//! prequential evaluation harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`tabular`] — relational tables, schemas, windows, datasets, CSV IO;
//! * [`synth`] — the 55-dataset synthetic stream registry and generator;
//! * [`preprocess`] — one-hot encoding, scalers, the four imputers;
//! * [`drift`] — ten data/concept drift detectors;
//! * [`outlier`] — ECOD and Isolation Forest;
//! * [`nn`] — the MLP, EWC/LwF regularisers, iCaRL exemplar buffer;
//! * [`tree`] — CART, GBDT, Hoeffding trees, Adaptive Random Forest;
//! * [`linalg`] — matrices, PCA, K-Means, t-SNE, statistics;
//! * [`core`] — learners, harness, statistics pipeline, selection,
//!   recommendation, and the per-table/figure experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use oebench::prelude::*;
//!
//! // Generate a drifting stream from the registry and evaluate a
//! // decision tree prequentially (test-then-train per window).
//! let entry = oebench::synth::by_name("Electricity Prices").unwrap();
//! let spec = entry.spec.scaled(0.02); // small for the doctest
//! let dataset = oebench::synth::generate(&spec, 0);
//! let result = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
//! assert!(result.mean_loss.is_finite());
//! ```

pub mod cli;

pub use oeb_core as core;
pub use oeb_drift as drift;
pub use oeb_faults as faults;
pub use oeb_linalg as linalg;
pub use oeb_nn as nn;
pub use oeb_outlier as outlier;
pub use oeb_preprocess as preprocess;
pub use oeb_synth as synth;
pub use oeb_tabular as tabular;
pub use oeb_tree as tree;

/// The most common imports for working with the benchmark.
pub mod prelude {
    pub use oeb_core::{
        extract_stats, recommend, run_seeds, run_stream, run_sweep, select_representatives,
        try_run_stream, Algorithm, DegradePolicy, HarnessConfig, HarnessError, ImputerChoice,
        LearnerConfig, OeStats, OutlierRemoval, RunOutcome, RunResult, Scenario, StatsConfig,
        StreamLearner, SweepReport,
    };
    pub use oeb_faults::{FaultInjector, FaultKind, FaultLog, FaultPlan};
    pub use oeb_linalg::Matrix;
    pub use oeb_synth::{generate, registry, registry_scaled, selected_five, Level, StreamSpec};
    pub use oeb_tabular::{Domain, StreamDataset, Task};
}
