//! Command-line interface logic for the `oebench` binary.
//!
//! ```text
//! oebench list
//! oebench inspect "Electricity Prices" --scale 0.25
//! oebench stats   "Electricity Prices" --scale 0.25
//! oebench run     "Electricity Prices" --algorithm naive-dt --scale 0.25
//! oebench recommend "Electricity Prices" --scale 0.25
//! oebench export  "Electricity Prices" --out stream.csv --scale 0.05
//! ```

use oeb_core::{
    extract_stats, resolve_threads, run_chaos_matrix, run_sweep_scheduled, try_run_stream,
    Algorithm, ChaosOptions, CostModel, HarnessConfig, HarnessError, Scenario, Schedule,
    StatsConfig, StatsMode, SupervisePolicy,
};
use oeb_synth::Level;
use std::time::Duration;

/// A CLI failure: a message for stderr plus the process exit code.
///
/// Codes: `2` usage / bad arguments, `3..=14` the [`HarnessError`]
/// codes (`3` also covers unknown datasets, which are an invalid
/// configuration; `13` cell deadline, `14` quarantine), `1` anything
/// else including chaos-invariant violations.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    pub message: String,
    pub code: i32,
}

impl CliError {
    /// A usage error (exit code 2).
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// A generic runtime error with an explicit exit code.
    pub fn new(message: impl Into<String>, code: i32) -> CliError {
        CliError {
            message: message.into(),
            code,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl From<HarnessError> for CliError {
    fn from(e: HarnessError) -> CliError {
        CliError {
            message: e.to_string(),
            code: e.exit_code(),
        }
    }
}

/// Parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List all registry datasets.
    List,
    /// Generate and describe one dataset.
    Inspect { name: String },
    /// Extract and print open-environment statistics.
    Stats { name: String },
    /// Run one algorithm prequentially.
    Run { name: String, algorithm: Algorithm },
    /// Print the Figure 9 recommendation for a dataset's measured levels.
    Recommend { name: String },
    /// Export a generated stream to CSV.
    Export { name: String, out: String },
    /// Checkpointed sweep over the five representative datasets.
    Sweep {
        out: String,
        algorithm: Option<Algorithm>,
        limit: Option<usize>,
        /// Path to a `COST_MODEL.json` (`--schedule cost --cost-model P`);
        /// `None` keeps FIFO claim order. Either way the report is
        /// bit-identical — the model only permutes the claim order.
        cost_model: Option<String>,
    },
    /// Chaos-soak run over the fault × drift matrix.
    Chaos {
        /// Optional path for the JSON chaos report.
        out: Option<String>,
        /// Scenario cap (`--limit`); `None` runs the full grid.
        limit: Option<usize>,
    },
}

/// Parsed options shared by all commands.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    pub command: Command,
    /// Registry scale factor.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Sweep worker count; `None` falls back to `OEBENCH_THREADS` and
    /// then the machine's available parallelism.
    pub threads: Option<usize>,
    /// When set, enable tracing and write the span stream to this
    /// JSON-lines file at the end of the run.
    pub trace: Option<String>,
    /// When set, print the end-of-run metrics table to stderr.
    pub metrics: bool,
    /// Per-cell wall-clock deadline in seconds (`--cell-deadline`);
    /// `None` leaves the watchdog disarmed.
    pub cell_deadline: Option<f64>,
    /// Per-cell retry budget before quarantine (`--max-retries`);
    /// `None` keeps the historical fail-fast sweep behaviour.
    pub max_retries: Option<usize>,
    /// Statistics engine for `stats`/`recommend` (`--stats-mode`):
    /// batch recomputation per window, or maintained delta statistics.
    /// Both produce identical scores; the mode lands in the report
    /// header.
    pub stats_mode: StatsMode,
}

/// Usage text.
pub const USAGE: &str = "usage: oebench <command> [args] [--scale F] [--seed N] [--threads N]\n\
commands:\n\
  list                         list the 55 registry datasets\n\
  inspect <name>               generate a dataset and describe it\n\
  stats <name>                 extract its open-environment statistics\n\
  run <name> --algorithm <a>   prequential evaluation (a: naive-nn, ewc, lwf,\n\
                               icarl, sea-nn, naive-dt, naive-gbdt, sea-dt,\n\
                               sea-gbdt, arf)\n\
  recommend <name>             recommendation from measured statistics\n\
  export <name> --out <file>   write the generated stream as CSV\n\
  sweep --out <checkpoint>     checkpointed (dataset x algorithm) sweep over the\n\
                               five representative datasets; resumes from the\n\
                               checkpoint file [--algorithm a] [--limit N]\n\
  chaos                        chaos-soak run over the fault x drift matrix;\n\
                               exits 1 if any supervision invariant is violated\n\
                               [--out report.json] [--limit N] [--max-retries N]\n\
options:\n\
  --threads N                  sweep worker count (default: OEBENCH_THREADS or\n\
                               all cores); results are identical for any N\n\
  --cell-deadline SECS         sweep: wall-clock watchdog per cell; a cell past\n\
                               the deadline is recorded as timed out (exit 13)\n\
  --max-retries N              sweep/chaos: seeded retry budget per cell before\n\
                               quarantine (exit 14); 0 fails fast (default)\n\
  --stats-mode MODE            stats/recommend: statistics engine, `full` (batch\n\
                               recompute per window, default) or `incremental`\n\
                               (maintained delta statistics); scores are\n\
                               identical either way\n\
  --schedule MODE              sweep claim order: `fifo` (default) or `cost`\n\
                               (longest-expected-first from a fitted cost\n\
                               model); results are bit-identical either way\n\
  --cost-model <file>          COST_MODEL.json from `oeb-profile cost-model`;\n\
                               required by (and only valid with) --schedule cost\n\
  --trace <out.jsonl>          record spans and write them as JSON lines;\n\
                               results are bit-identical with tracing on or off\n\
  --metrics                    print the end-of-run metrics table to stderr";

/// Maps a CLI algorithm slug to an [`Algorithm`].
pub fn parse_algorithm(slug: &str) -> Option<Algorithm> {
    Some(match slug.to_ascii_lowercase().as_str() {
        "naive-nn" | "nn" => Algorithm::NaiveNn,
        "ewc" => Algorithm::Ewc,
        "lwf" => Algorithm::Lwf,
        "icarl" => Algorithm::Icarl,
        "sea-nn" => Algorithm::SeaNn,
        "naive-dt" | "dt" => Algorithm::NaiveDt,
        "naive-gbdt" | "gbdt" => Algorithm::NaiveGbdt,
        "sea-dt" => Algorithm::SeaDt,
        "sea-gbdt" => Algorithm::SeaGbdt,
        "arf" => Algorithm::Arf,
        _ => return None,
    })
}

/// Parses CLI arguments (without the program name).
pub fn parse(args: &[String]) -> Result<CliOptions, CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut algorithm: Option<Algorithm> = None;
    let mut out: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut trace: Option<String> = None;
    let mut metrics = false;
    let mut cell_deadline: Option<f64> = None;
    let mut max_retries: Option<usize> = None;
    let mut schedule: Option<String> = None;
    let mut cost_model: Option<String> = None;
    let mut stats_mode = StatsMode::default();
    let mut scale = 0.25f64;
    let mut seed = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| v > 0.0 && v <= 1.0)
                    .ok_or_else(|| {
                        CliError::usage(format!("--scale needs a value in (0, 1]\n{USAGE}"))
                    })?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::usage(format!("--seed needs an integer\n{USAGE}")))?;
            }
            "--algorithm" => {
                i += 1;
                let slug = args.get(i).ok_or_else(|| CliError::usage(USAGE))?;
                algorithm = Some(parse_algorithm(slug).ok_or_else(|| {
                    CliError::usage(format!("unknown algorithm {slug:?}\n{USAGE}"))
                })?);
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).ok_or_else(|| CliError::usage(USAGE))?.clone());
            }
            "--limit" => {
                i += 1;
                limit = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or_else(|| {
                    CliError::usage(format!("--limit needs an integer\n{USAGE}"))
                })?);
            }
            "--threads" => {
                i += 1;
                threads = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &usize| v > 0)
                        .ok_or_else(|| {
                            CliError::usage(format!("--threads needs a positive integer\n{USAGE}"))
                        })?,
                );
            }
            "--trace" => {
                i += 1;
                trace = Some(
                    args.get(i)
                        .ok_or_else(|| {
                            CliError::usage(format!("--trace needs an output path\n{USAGE}"))
                        })?
                        .clone(),
                );
            }
            "--cell-deadline" => {
                i += 1;
                cell_deadline = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &f64| v.is_finite() && v > 0.0)
                        .ok_or_else(|| {
                            CliError::usage(format!(
                                "--cell-deadline needs a positive number of seconds\n{USAGE}"
                            ))
                        })?,
                );
            }
            "--max-retries" => {
                i += 1;
                max_retries = Some(args.get(i).and_then(|v| v.parse().ok()).ok_or_else(|| {
                    CliError::usage(format!("--max-retries needs an integer\n{USAGE}"))
                })?);
            }
            "--schedule" => {
                i += 1;
                schedule = Some(
                    args.get(i)
                        .map(|v| v.to_ascii_lowercase())
                        .filter(|v| v == "fifo" || v == "cost")
                        .ok_or_else(|| {
                            CliError::usage(format!("--schedule needs `fifo` or `cost`\n{USAGE}"))
                        })?,
                );
            }
            "--cost-model" => {
                i += 1;
                cost_model = Some(
                    args.get(i)
                        .ok_or_else(|| {
                            CliError::usage(format!("--cost-model needs a file path\n{USAGE}"))
                        })?
                        .clone(),
                );
            }
            "--stats-mode" => {
                i += 1;
                stats_mode = args
                    .get(i)
                    .and_then(|v| StatsMode::parse(v))
                    .ok_or_else(|| {
                        CliError::usage(format!(
                            "--stats-mode needs `full` or `incremental`\n{USAGE}"
                        ))
                    })?;
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => return Err(CliError::usage(USAGE)),
            other => positional.push(other),
        }
        i += 1;
    }
    let command = match positional.split_first() {
        Some((&"list", [])) => Command::List,
        Some((&"inspect", [name])) => Command::Inspect {
            name: name.to_string(),
        },
        Some((&"stats", [name])) => Command::Stats {
            name: name.to_string(),
        },
        Some((&"run", [name])) => Command::Run {
            name: name.to_string(),
            algorithm: algorithm
                .ok_or_else(|| CliError::usage(format!("run needs --algorithm\n{USAGE}")))?,
        },
        Some((&"recommend", [name])) => Command::Recommend {
            name: name.to_string(),
        },
        Some((&"export", [name])) => Command::Export {
            name: name.to_string(),
            out: out.ok_or_else(|| CliError::usage(format!("export needs --out\n{USAGE}")))?,
        },
        Some((&"sweep", [])) => {
            let cost_scheduled = schedule.as_deref() == Some("cost");
            if cost_scheduled && cost_model.is_none() {
                return Err(CliError::usage(format!(
                    "--schedule cost needs --cost-model\n{USAGE}"
                )));
            }
            if !cost_scheduled && cost_model.is_some() {
                return Err(CliError::usage(format!(
                    "--cost-model is only valid with --schedule cost\n{USAGE}"
                )));
            }
            Command::Sweep {
                out: out.ok_or_else(|| CliError::usage(format!("sweep needs --out\n{USAGE}")))?,
                algorithm,
                limit,
                cost_model: if cost_scheduled { cost_model } else { None },
            }
        }
        Some((&"chaos", [])) => Command::Chaos { out, limit },
        _ => return Err(CliError::usage(USAGE)),
    };
    Ok(CliOptions {
        command,
        scale,
        seed,
        threads,
        trace,
        metrics,
        cell_deadline,
        max_retries,
        stats_mode,
    })
}

fn find_entry(name: &str, scale: f64) -> Result<oeb_synth::DatasetEntry, CliError> {
    oeb_synth::registry_scaled(scale)
        .into_iter()
        .find(|e| e.spec.name.eq_ignore_ascii_case(name) || e.selected == Some(name))
        .ok_or_else(|| {
            CliError::new(
                format!("unknown dataset {name:?}; use `oebench list` to see the registry"),
                3,
            )
        })
}

/// Executes a parsed command, returning the text to print.
///
/// `--trace` / `--metrics` wrap the command: recording is enabled before
/// it runs, the span stream is written (even when the command failed —
/// a trace of a failing run is exactly when you want one) and the
/// metrics table goes to stderr, never stdout, so result output stays
/// byte-identical with observability on or off.
pub fn execute(opts: &CliOptions) -> Result<String, CliError> {
    if opts.trace.is_some() || opts.metrics {
        oeb_trace::enable();
    }
    let result = run_command(opts);
    if let Some(path) = &opts.trace {
        if let Err(e) = oeb_trace::write_trace_file(std::path::Path::new(path)) {
            let write_err = CliError::new(format!("cannot write trace {path}: {e}"), 1);
            return result.and(Err(write_err));
        }
    }
    if opts.metrics {
        eprint!(
            "{}",
            oeb_trace::render_metrics_table(&oeb_trace::snapshot())
        );
    }
    result
}

fn run_command(opts: &CliOptions) -> Result<String, CliError> {
    match &opts.command {
        Command::List => {
            let mut out = String::from("name | task | domain | paper rows | bench rows | window\n");
            for e in oeb_synth::registry_scaled(opts.scale) {
                let task = if e.is_classification() { "clf" } else { "reg" };
                out.push_str(&format!(
                    "{} | {task} | {} | {} | {} | {}{}\n",
                    e.spec.name,
                    e.spec.domain.name(),
                    e.paper_rows,
                    e.spec.n_rows,
                    e.spec.default_window,
                    e.selected
                        .map(|s| format!(" | selected: {s}"))
                        .unwrap_or_default(),
                ));
            }
            Ok(out)
        }
        Command::Inspect { name } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let m = d.table.missing_stats();
            Ok(format!(
                "{}\n  task: {:?}\n  rows: {} ({} windows of {})\n  features: {} \
                 ({} numeric, {} categorical)\n  missing: {:.2}% cells, {:.2}% rows, \
                 {:.2}% columns\n  drift: {:?} at {:?}\n  anomalies: {:?} \
                 ({} events)\n",
                d.name,
                d.task,
                d.n_rows(),
                d.windows().len(),
                d.default_window,
                d.n_features(),
                entry.spec.n_numeric,
                entry.spec.categorical.len(),
                m.empty_cells * 100.0,
                m.rows_with_missing * 100.0,
                m.missing_columns * 100.0,
                entry.spec.drift_pattern,
                entry.spec.drift_level,
                entry.spec.anomaly_level,
                entry.spec.anomaly_events.len(),
            ))
        }
        Command::Stats { name } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let cfg = StatsConfig {
                mode: opts.stats_mode,
                ..Default::default()
            };
            let s = extract_stats(&d, &cfg);
            // The mode is the report's first line, so equivalence checks
            // can diff everything below the header.
            Ok(format!(
                "stats-mode: {}\n{}\n  missing score:  {:.3} (rows {:.3}, cols {:.3}, cells {:.3})\n  \
                 data drift:     {:.3} (HDDDM {:.3}, kdq {:.3}, PCA-CD {:.3}, KS avg {:.3})\n  \
                 concept drift:  {:.3} (DDM {:.3}, EDDM {:.3}, ADWIN {:.3}, PERM {:.3})\n  \
                 anomaly score:  {:.3} (ECOD avg {:.3}, IForest avg {:.3})\n",
                opts.stats_mode.label(),
                s.name,
                s.missing_score(),
                s.missing_rows,
                s.missing_cols,
                s.missing_cells,
                s.drift_score(),
                s.drift_hdddm,
                s.drift_kdq,
                s.drift_pcacd,
                s.drift_ks.avg,
                s.concept_score(),
                s.concept_ddm,
                s.concept_eddm,
                s.concept_adwin,
                s.concept_perm,
                s.anomaly_score(),
                s.anomaly_ecod.avg,
                s.anomaly_iforest.avg,
            ))
        }
        Command::Run { name, algorithm } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let cfg = HarnessConfig {
                seed: opts.seed,
                ..Default::default()
            };
            let result = try_run_stream(&d, *algorithm, &cfg)?;
            let curve: Vec<String> = result
                .per_window_loss
                .iter()
                .map(|l| {
                    if l.is_finite() {
                        format!("{l:.3}")
                    } else {
                        "inf".into()
                    }
                })
                .collect();
            Ok(format!(
                "{} on {}\n  mean loss: {:.4}\n  throughput: {:.0} items/s\n  \
                 model memory: {:.1} KB\n  per-window: {}\n",
                result.algorithm,
                result.dataset,
                result.mean_loss,
                result.throughput,
                result.memory_bytes as f64 / 1024.0,
                curve.join(" "),
            ))
        }
        Command::Recommend { name } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let cfg = StatsConfig {
                mode: opts.stats_mode,
                ..Default::default()
            };
            let s = extract_stats(&d, &cfg);
            let level = |score: f64| {
                if score > 0.3 {
                    Level::High
                } else if score > 0.15 {
                    Level::MediumHigh
                } else if score > 0.05 {
                    Level::MediumLow
                } else {
                    Level::Low
                }
            };
            let scenario = Scenario {
                classification: d.task.is_classification(),
                drift: level((s.drift_score() + s.concept_score()) / 2.0),
                anomaly: level(s.anomaly_score()),
                missing: level(s.missing_score()),
                resource_constrained: false,
            };
            let recs = oeb_core::recommend(&scenario);
            let names: Vec<&str> = recs.iter().map(|a| a.name()).collect();
            Ok(format!(
                "{}\n  measured: drift {:?}, anomaly {:?}, missing {:?}\n  recommended: {}\n",
                d.name,
                scenario.drift,
                scenario.anomaly,
                scenario.missing,
                names.join(", "),
            ))
        }
        Command::Export { name, out } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let csv = oeb_tabular::write_table(&d.table);
            std::fs::write(out, &csv).map_err(|e| {
                CliError::from(HarnessError::Io(format!("cannot write {out}: {e}")))
            })?;
            Ok(format!(
                "wrote {} rows x {} columns to {out}\n",
                d.n_rows(),
                d.table.n_cols(),
            ))
        }
        Command::Sweep {
            out,
            algorithm,
            limit,
            cost_model,
        } => {
            let datasets: Vec<_> = oeb_synth::selected_five()
                .into_iter()
                .map(|e| oeb_synth::generate(&e.spec.scaled(opts.scale), opts.seed))
                .collect();
            let algorithms: Vec<Algorithm> = match algorithm {
                Some(a) => vec![*a],
                None => Algorithm::all().to_vec(),
            };
            let cfg = HarnessConfig {
                seed: opts.seed,
                ..Default::default()
            };
            let policy = SupervisePolicy {
                wall_deadline: opts.cell_deadline.map(Duration::from_secs_f64),
                max_retries: opts.max_retries.unwrap_or(0),
                ..SupervisePolicy::unsupervised()
            };
            let schedule = match cost_model {
                Some(path) => Schedule::Cost(CostModel::load(std::path::Path::new(path))?),
                None => Schedule::Fifo,
            };
            // Progress lines go to stderr; done/total is seeded from the
            // checkpoint, so a resumed sweep reports over the whole grid.
            oeb_core::set_sweep_progress(true);
            let report = run_sweep_scheduled(
                &datasets,
                &algorithms,
                &cfg,
                Some(std::path::Path::new(out)),
                *limit,
                resolve_threads(opts.threads),
                &policy,
                &schedule,
            )?;
            let (completed, inapplicable, failed) = report.counts();
            let mut text = String::new();
            for record in &report.records {
                text.push_str(&format!(
                    "{} | {} | {}\n",
                    record.dataset,
                    record.algorithm,
                    record.outcome.describe(),
                ));
            }
            text.push_str(&format!(
                "{completed} completed, {inapplicable} inapplicable, {failed} failed; \
                 checkpoint: {out}\n",
            ));
            if policy.is_active() {
                let s = report.supervision();
                text.push_str(&format!(
                    "supervision: {} retries, {} recovered, {} timed out \
                     ({} wall-clock), {} quarantined\n",
                    s.retries, s.recovered, s.timeouts, s.wall_timeouts, s.quarantined,
                ));
            }
            Ok(text)
        }
        Command::Chaos { out, limit } => {
            let options = ChaosOptions {
                seed: opts.seed,
                max_cells: *limit,
                threads: resolve_threads(opts.threads),
                max_retries: opts.max_retries.unwrap_or(2),
                ..ChaosOptions::default()
            };
            let report = run_chaos_matrix(&options)?;
            if let Some(path) = out {
                std::fs::write(path, report.to_json_string()).map_err(|e| {
                    CliError::from(HarnessError::Io(format!("cannot write {path}: {e}")))
                })?;
            }
            let mut text = String::new();
            for cell in &report.cells {
                text.push_str(&format!(
                    "{} x {} | {}\n",
                    cell.fault, cell.drift, cell.detail
                ));
            }
            let s = &report.summary;
            text.push_str(&format!(
                "{} scenarios; supervision: {} retries, {} recovered, {} timed out, \
                 {} quarantined\n",
                report.cells.len(),
                s.retries,
                s.recovered,
                s.timeouts,
                s.quarantined,
            ));
            if report.passed() {
                text.push_str("all supervision invariants held\n");
                Ok(text)
            } else {
                for v in &report.violations {
                    text.push_str(&format!("violation: {v}\n"));
                }
                Err(CliError::new(
                    format!(
                        "{text}chaos: {} invariant(s) violated",
                        report.violations.len()
                    ),
                    1,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_list_and_flags() {
        let o = parse(&s(&["list", "--scale", "0.1", "--seed", "7"])).unwrap();
        assert_eq!(o.command, Command::List);
        assert_eq!(o.scale, 0.1);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parses_threads_flag() {
        let o = parse(&s(&["sweep", "--out", "c.jsonl", "--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        let o = parse(&s(&["list"])).unwrap();
        assert_eq!(o.threads, None);
        assert_eq!(parse(&s(&["list", "--threads", "0"])).unwrap_err().code, 2);
        assert_eq!(parse(&s(&["list", "--threads", "x"])).unwrap_err().code, 2);
    }

    #[test]
    fn parses_trace_and_metrics_flags() {
        let o = parse(&s(&["list", "--trace", "/tmp/t.jsonl", "--metrics"])).unwrap();
        assert_eq!(o.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert!(o.metrics);
        assert_eq!(parse(&s(&["list", "--trace"])).unwrap_err().code, 2);
        let o = parse(&s(&["list"])).unwrap();
        assert!(o.trace.is_none() && !o.metrics);
    }

    #[test]
    fn parses_run_with_algorithm() {
        let o = parse(&s(&["run", "Electricity Prices", "--algorithm", "sea-dt"])).unwrap();
        assert_eq!(
            o.command,
            Command::Run {
                name: "Electricity Prices".into(),
                algorithm: Algorithm::SeaDt
            }
        );
    }

    #[test]
    fn run_without_algorithm_is_an_error() {
        assert!(parse(&s(&["run", "Electricity Prices"])).is_err());
    }

    #[test]
    fn algorithm_slugs_roundtrip() {
        for alg in Algorithm::all() {
            let slug = alg.name().to_ascii_lowercase();
            assert_eq!(parse_algorithm(&slug), Some(alg), "slug {slug}");
        }
        assert_eq!(parse_algorithm("nope"), None);
    }

    #[test]
    fn list_contains_all_55() {
        let o = parse(&s(&["list"])).unwrap();
        let out = execute(&o).unwrap();
        assert_eq!(out.lines().count(), 56); // header + 55
        assert!(out.contains("KDDCUP99"));
    }

    #[test]
    fn inspect_by_short_name() {
        let o = parse(&s(&["inspect", "AIR", "--scale", "0.02"])).unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("Shunyi"));
        assert!(out.contains("missing"));
    }

    #[test]
    fn run_executes_prequentially() {
        let o = parse(&s(&[
            "run",
            "ELECTRICITY",
            "--algorithm",
            "dt",
            "--scale",
            "0.02",
        ]))
        .unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("mean loss"));
    }

    #[test]
    fn arf_on_regression_reports_inapplicable() {
        let o = parse(&s(&["run", "AIR", "--algorithm", "arf", "--scale", "0.02"])).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn export_writes_csv() {
        let path = std::env::temp_dir().join("oeb_cli_export.csv");
        let o = parse(&s(&[
            "export",
            "ROOM",
            "--out",
            path.to_str().unwrap(),
            "--scale",
            "0.02",
        ]))
        .unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("wrote"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() > 100);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let o = parse(&s(&["inspect", "not-a-dataset"])).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn errors_carry_distinct_exit_codes() {
        // Usage errors exit 2.
        assert_eq!(parse(&s(&["run", "ROOM"])).unwrap_err().code, 2);
        assert_eq!(parse(&s(&["--scale", "7", "list"])).unwrap_err().code, 2);
        // Unknown dataset is an invalid configuration (3).
        let o = parse(&s(&["stats", "not-a-dataset"])).unwrap();
        assert_eq!(execute(&o).unwrap_err().code, 3);
        // An inapplicable (algorithm, task) pair maps NotApplicable (4).
        let o = parse(&s(&["run", "AIR", "--algorithm", "arf", "--scale", "0.02"])).unwrap();
        assert_eq!(execute(&o).unwrap_err().code, 4);
    }

    #[test]
    fn parses_sweep_with_options() {
        let o = parse(&s(&[
            "sweep",
            "--out",
            "ckpt.jsonl",
            "--algorithm",
            "naive-dt",
            "--limit",
            "3",
        ]))
        .unwrap();
        assert_eq!(
            o.command,
            Command::Sweep {
                out: "ckpt.jsonl".into(),
                algorithm: Some(Algorithm::NaiveDt),
                limit: Some(3),
                cost_model: None,
            }
        );
        assert!(parse(&s(&["sweep"])).is_err(), "sweep requires --out");
    }

    #[test]
    fn parses_schedule_flags() {
        let o = parse(&s(&[
            "sweep",
            "--out",
            "c.jsonl",
            "--schedule",
            "cost",
            "--cost-model",
            "COST_MODEL.json",
        ]))
        .unwrap();
        assert!(matches!(
            o.command,
            Command::Sweep { ref cost_model, .. } if cost_model.as_deref() == Some("COST_MODEL.json")
        ));
        // `fifo` is the default and needs no model.
        let o = parse(&s(&["sweep", "--out", "c.jsonl", "--schedule", "fifo"])).unwrap();
        assert!(matches!(
            o.command,
            Command::Sweep {
                cost_model: None,
                ..
            }
        ));
        // cost without a model, a model without cost, and junk modes are
        // usage errors.
        let cases: &[&[&str]] = &[
            &["sweep", "--out", "c.jsonl", "--schedule", "cost"],
            &["sweep", "--out", "c.jsonl", "--cost-model", "m.json"],
            &["sweep", "--out", "c.jsonl", "--schedule", "lifo"],
            &["sweep", "--out", "c.jsonl", "--schedule"],
            &["sweep", "--out", "c.jsonl", "--cost-model"],
        ];
        for case in cases {
            assert_eq!(parse(&s(case)).unwrap_err().code, 2, "{case:?}");
        }
    }

    #[test]
    fn parses_supervision_flags() {
        let o = parse(&s(&[
            "sweep",
            "--out",
            "c.jsonl",
            "--cell-deadline",
            "2.5",
            "--max-retries",
            "3",
        ]))
        .unwrap();
        assert_eq!(o.cell_deadline, Some(2.5));
        assert_eq!(o.max_retries, Some(3));
        let o = parse(&s(&["list"])).unwrap();
        assert!(o.cell_deadline.is_none() && o.max_retries.is_none());
        for bad in [
            &["list", "--cell-deadline", "0"][..],
            &["list", "--cell-deadline", "x"],
            &["list", "--max-retries", "-1"],
            &["list", "--max-retries"],
        ] {
            assert_eq!(parse(&s(bad)).unwrap_err().code, 2, "args {bad:?}");
        }
    }

    #[test]
    fn parses_stats_mode_flag() {
        let o = parse(&s(&["stats", "ROOM", "--stats-mode", "incremental"])).unwrap();
        assert_eq!(o.stats_mode, StatsMode::Incremental);
        let o = parse(&s(&["stats", "ROOM", "--stats-mode", "full"])).unwrap();
        assert_eq!(o.stats_mode, StatsMode::Full);
        let o = parse(&s(&["stats", "ROOM"])).unwrap();
        assert_eq!(o.stats_mode, StatsMode::Full);
        assert_eq!(
            parse(&s(&["stats", "ROOM", "--stats-mode", "nope"]))
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            parse(&s(&["stats", "ROOM", "--stats-mode"]))
                .unwrap_err()
                .code,
            2
        );
    }

    #[test]
    fn stats_modes_agree_below_the_header() {
        let run = |mode: &str| {
            let o = parse(&s(&[
                "stats",
                "ROOM",
                "--scale",
                "0.02",
                "--stats-mode",
                mode,
            ]))
            .unwrap();
            execute(&o).unwrap()
        };
        let full = run("full");
        let incremental = run("incremental");
        assert!(full.starts_with("stats-mode: full\n"), "{full}");
        assert!(
            incremental.starts_with("stats-mode: incremental\n"),
            "{incremental}"
        );
        let body = |report: &str| report.split_once('\n').map(|(_, b)| b.to_string());
        assert_eq!(body(&full), body(&incremental));
    }

    #[test]
    fn parses_chaos_command() {
        let o = parse(&s(&["chaos", "--limit", "2", "--out", "r.json"])).unwrap();
        assert_eq!(
            o.command,
            Command::Chaos {
                out: Some("r.json".into()),
                limit: Some(2),
            }
        );
        let o = parse(&s(&["chaos"])).unwrap();
        assert_eq!(
            o.command,
            Command::Chaos {
                out: None,
                limit: None
            }
        );
    }

    #[test]
    fn chaos_smoke_runs_and_writes_a_report() {
        let path = std::env::temp_dir().join(format!("oeb_cli_chaos_{}.json", std::process::id()));
        let o = parse(&s(&[
            "chaos",
            "--limit",
            "1",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("all supervision invariants held"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"violations\""), "{json}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_checkpoints_and_resumes() {
        let path = std::env::temp_dir().join(format!("oeb_cli_sweep_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let args = s(&[
            "sweep",
            "--out",
            path.to_str().unwrap(),
            "--algorithm",
            "dt",
            "--scale",
            "0.02",
        ]);

        // Interrupt after two runs: the partial report stops early.
        let mut limited = parse(&args).unwrap();
        if let Command::Sweep { limit, .. } = &mut limited.command {
            *limit = Some(2);
        }
        let partial = execute(&limited).unwrap();
        assert_eq!(partial.lines().count(), 3); // 2 records + summary

        // Resume from the checkpoint: all five datasets are reported and
        // the two checkpointed runs are not repeated.
        let full = execute(&parse(&args).unwrap()).unwrap();
        assert_eq!(full.lines().count(), 6); // 5 records + summary
        assert!(full.contains("5 completed, 0 inapplicable, 0 failed"));
        let checkpoint = std::fs::read_to_string(&path).unwrap();
        assert_eq!(checkpoint.lines().count(), 5, "no pair is run twice");
        let _ = std::fs::remove_file(&path);
    }
}
