//! Command-line interface logic for the `oebench` binary.
//!
//! ```text
//! oebench list
//! oebench inspect "Electricity Prices" --scale 0.25
//! oebench stats   "Electricity Prices" --scale 0.25
//! oebench run     "Electricity Prices" --algorithm naive-dt --scale 0.25
//! oebench recommend "Electricity Prices" --scale 0.25
//! oebench export  "Electricity Prices" --out stream.csv --scale 0.05
//! ```

use oeb_core::{
    extract_stats, run_stream, Algorithm, HarnessConfig, Scenario, StatsConfig,
};
use oeb_synth::Level;

/// Parsed CLI command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List all registry datasets.
    List,
    /// Generate and describe one dataset.
    Inspect { name: String },
    /// Extract and print open-environment statistics.
    Stats { name: String },
    /// Run one algorithm prequentially.
    Run { name: String, algorithm: Algorithm },
    /// Print the Figure 9 recommendation for a dataset's measured levels.
    Recommend { name: String },
    /// Export a generated stream to CSV.
    Export { name: String, out: String },
}

/// Parsed options shared by all commands.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    pub command: Command,
    /// Registry scale factor.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
}

/// Usage text.
pub const USAGE: &str = "usage: oebench <command> [args] [--scale F] [--seed N]\n\
commands:\n\
  list                         list the 55 registry datasets\n\
  inspect <name>               generate a dataset and describe it\n\
  stats <name>                 extract its open-environment statistics\n\
  run <name> --algorithm <a>   prequential evaluation (a: naive-nn, ewc, lwf,\n\
                               icarl, sea-nn, naive-dt, naive-gbdt, sea-dt,\n\
                               sea-gbdt, arf)\n\
  recommend <name>             recommendation from measured statistics\n\
  export <name> --out <file>   write the generated stream as CSV";

/// Maps a CLI algorithm slug to an [`Algorithm`].
pub fn parse_algorithm(slug: &str) -> Option<Algorithm> {
    Some(match slug.to_ascii_lowercase().as_str() {
        "naive-nn" | "nn" => Algorithm::NaiveNn,
        "ewc" => Algorithm::Ewc,
        "lwf" => Algorithm::Lwf,
        "icarl" => Algorithm::Icarl,
        "sea-nn" => Algorithm::SeaNn,
        "naive-dt" | "dt" => Algorithm::NaiveDt,
        "naive-gbdt" | "gbdt" => Algorithm::NaiveGbdt,
        "sea-dt" => Algorithm::SeaDt,
        "sea-gbdt" => Algorithm::SeaGbdt,
        "arf" => Algorithm::Arf,
        _ => return None,
    })
}

/// Parses CLI arguments (without the program name).
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut algorithm: Option<Algorithm> = None;
    let mut out: Option<String> = None;
    let mut scale = 0.25f64;
    let mut seed = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| v > 0.0 && v <= 1.0)
                    .ok_or_else(|| format!("--scale needs a value in (0, 1]\n{USAGE}"))?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("--seed needs an integer\n{USAGE}"))?;
            }
            "--algorithm" => {
                i += 1;
                let slug = args.get(i).ok_or_else(|| USAGE.to_string())?;
                algorithm =
                    Some(parse_algorithm(slug).ok_or_else(|| {
                        format!("unknown algorithm {slug:?}\n{USAGE}")
                    })?);
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).ok_or_else(|| USAGE.to_string())?.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => positional.push(other),
        }
        i += 1;
    }
    let command = match positional.split_first() {
        Some((&"list", [])) => Command::List,
        Some((&"inspect", [name])) => Command::Inspect {
            name: name.to_string(),
        },
        Some((&"stats", [name])) => Command::Stats {
            name: name.to_string(),
        },
        Some((&"run", [name])) => Command::Run {
            name: name.to_string(),
            algorithm: algorithm.ok_or_else(|| format!("run needs --algorithm\n{USAGE}"))?,
        },
        Some((&"recommend", [name])) => Command::Recommend {
            name: name.to_string(),
        },
        Some((&"export", [name])) => Command::Export {
            name: name.to_string(),
            out: out.ok_or_else(|| format!("export needs --out\n{USAGE}"))?,
        },
        _ => return Err(USAGE.to_string()),
    };
    Ok(CliOptions {
        command,
        scale,
        seed,
    })
}

fn find_entry(name: &str, scale: f64) -> Result<oeb_synth::DatasetEntry, String> {
    oeb_synth::registry_scaled(scale)
        .into_iter()
        .find(|e| e.spec.name.eq_ignore_ascii_case(name) || e.selected == Some(name))
        .ok_or_else(|| {
            format!("unknown dataset {name:?}; use `oebench list` to see the registry")
        })
}

/// Executes a parsed command, returning the text to print.
pub fn execute(opts: &CliOptions) -> Result<String, String> {
    match &opts.command {
        Command::List => {
            let mut out = String::from("name | task | domain | paper rows | bench rows | window\n");
            for e in oeb_synth::registry_scaled(opts.scale) {
                let task = if e.is_classification() { "clf" } else { "reg" };
                out.push_str(&format!(
                    "{} | {task} | {} | {} | {} | {}{}\n",
                    e.spec.name,
                    e.spec.domain.name(),
                    e.paper_rows,
                    e.spec.n_rows,
                    e.spec.default_window,
                    e.selected.map(|s| format!(" | selected: {s}")).unwrap_or_default(),
                ));
            }
            Ok(out)
        }
        Command::Inspect { name } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let m = d.table.missing_stats();
            Ok(format!(
                "{}\n  task: {:?}\n  rows: {} ({} windows of {})\n  features: {} \
                 ({} numeric, {} categorical)\n  missing: {:.2}% cells, {:.2}% rows, \
                 {:.2}% columns\n  drift: {:?} at {:?}\n  anomalies: {:?} \
                 ({} events)\n",
                d.name,
                d.task,
                d.n_rows(),
                d.windows().len(),
                d.default_window,
                d.n_features(),
                entry.spec.n_numeric,
                entry.spec.categorical.len(),
                m.empty_cells * 100.0,
                m.rows_with_missing * 100.0,
                m.missing_columns * 100.0,
                entry.spec.drift_pattern,
                entry.spec.drift_level,
                entry.spec.anomaly_level,
                entry.spec.anomaly_events.len(),
            ))
        }
        Command::Stats { name } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let s = extract_stats(&d, &StatsConfig::default());
            Ok(format!(
                "{}\n  missing score:  {:.3} (rows {:.3}, cols {:.3}, cells {:.3})\n  \
                 data drift:     {:.3} (HDDDM {:.3}, kdq {:.3}, PCA-CD {:.3}, KS avg {:.3})\n  \
                 concept drift:  {:.3} (DDM {:.3}, EDDM {:.3}, ADWIN {:.3}, PERM {:.3})\n  \
                 anomaly score:  {:.3} (ECOD avg {:.3}, IForest avg {:.3})\n",
                s.name,
                s.missing_score(),
                s.missing_rows,
                s.missing_cols,
                s.missing_cells,
                s.drift_score(),
                s.drift_hdddm,
                s.drift_kdq,
                s.drift_pcacd,
                s.drift_ks.avg,
                s.concept_score(),
                s.concept_ddm,
                s.concept_eddm,
                s.concept_adwin,
                s.concept_perm,
                s.anomaly_score(),
                s.anomaly_ecod.avg,
                s.anomaly_iforest.avg,
            ))
        }
        Command::Run { name, algorithm } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let mut cfg = HarnessConfig::default();
            cfg.seed = opts.seed;
            let result = run_stream(&d, *algorithm, &cfg)
                .ok_or_else(|| format!("{} does not apply to {:?}", algorithm.name(), d.task))?;
            let curve: Vec<String> = result
                .per_window_loss
                .iter()
                .map(|l| {
                    if l.is_finite() {
                        format!("{l:.3}")
                    } else {
                        "inf".into()
                    }
                })
                .collect();
            Ok(format!(
                "{} on {}\n  mean loss: {:.4}\n  throughput: {:.0} items/s\n  \
                 model memory: {:.1} KB\n  per-window: {}\n",
                result.algorithm,
                result.dataset,
                result.mean_loss,
                result.throughput,
                result.memory_bytes as f64 / 1024.0,
                curve.join(" "),
            ))
        }
        Command::Recommend { name } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let s = extract_stats(&d, &StatsConfig::default());
            let level = |score: f64| {
                if score > 0.3 {
                    Level::High
                } else if score > 0.15 {
                    Level::MediumHigh
                } else if score > 0.05 {
                    Level::MediumLow
                } else {
                    Level::Low
                }
            };
            let scenario = Scenario {
                classification: d.task.is_classification(),
                drift: level((s.drift_score() + s.concept_score()) / 2.0),
                anomaly: level(s.anomaly_score()),
                missing: level(s.missing_score()),
                resource_constrained: false,
            };
            let recs = oeb_core::recommend(&scenario);
            let names: Vec<&str> = recs.iter().map(|a| a.name()).collect();
            Ok(format!(
                "{}\n  measured: drift {:?}, anomaly {:?}, missing {:?}\n  recommended: {}\n",
                d.name,
                scenario.drift,
                scenario.anomaly,
                scenario.missing,
                names.join(", "),
            ))
        }
        Command::Export { name, out } => {
            let entry = find_entry(name, opts.scale)?;
            let d = oeb_synth::generate(&entry.spec, opts.seed);
            let csv = oeb_tabular::write_table(&d.table);
            std::fs::write(out, &csv).map_err(|e| format!("cannot write {out}: {e}"))?;
            Ok(format!(
                "wrote {} rows x {} columns to {out}\n",
                d.n_rows(),
                d.table.n_cols(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_list_and_flags() {
        let o = parse(&s(&["list", "--scale", "0.1", "--seed", "7"])).unwrap();
        assert_eq!(o.command, Command::List);
        assert_eq!(o.scale, 0.1);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parses_run_with_algorithm() {
        let o = parse(&s(&["run", "Electricity Prices", "--algorithm", "sea-dt"])).unwrap();
        assert_eq!(
            o.command,
            Command::Run {
                name: "Electricity Prices".into(),
                algorithm: Algorithm::SeaDt
            }
        );
    }

    #[test]
    fn run_without_algorithm_is_an_error() {
        assert!(parse(&s(&["run", "Electricity Prices"])).is_err());
    }

    #[test]
    fn algorithm_slugs_roundtrip() {
        for alg in Algorithm::all() {
            let slug = alg.name().to_ascii_lowercase();
            assert_eq!(parse_algorithm(&slug), Some(alg), "slug {slug}");
        }
        assert_eq!(parse_algorithm("nope"), None);
    }

    #[test]
    fn list_contains_all_55() {
        let o = parse(&s(&["list"])).unwrap();
        let out = execute(&o).unwrap();
        assert_eq!(out.lines().count(), 56); // header + 55
        assert!(out.contains("KDDCUP99"));
    }

    #[test]
    fn inspect_by_short_name() {
        let o = parse(&s(&["inspect", "AIR", "--scale", "0.02"])).unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("Shunyi"));
        assert!(out.contains("missing"));
    }

    #[test]
    fn run_executes_prequentially() {
        let o = parse(&s(&[
            "run",
            "ELECTRICITY",
            "--algorithm",
            "dt",
            "--scale",
            "0.02",
        ]))
        .unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("mean loss"));
    }

    #[test]
    fn arf_on_regression_reports_inapplicable() {
        let o = parse(&s(&["run", "AIR", "--algorithm", "arf", "--scale", "0.02"])).unwrap();
        assert!(execute(&o).is_err());
    }

    #[test]
    fn export_writes_csv() {
        let path = std::env::temp_dir().join("oeb_cli_export.csv");
        let o = parse(&s(&[
            "export",
            "ROOM",
            "--out",
            path.to_str().unwrap(),
            "--scale",
            "0.02",
        ]))
        .unwrap();
        let out = execute(&o).unwrap();
        assert!(out.contains("wrote"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().count() > 100);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let o = parse(&s(&["inspect", "not-a-dataset"])).unwrap();
        assert!(execute(&o).is_err());
    }
}
