//! Fault injection: wrap a stream in a seeded [`FaultInjector`] and run
//! it through the resilient harness — corrupted cells, NaN bursts,
//! dropped/duplicated/truncated windows, schema violations, and
//! all-missing columns, all reproducible from one seed.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use oebench::faults::{DatasetFrames, FaultInjector};
use oebench::prelude::*;

fn main() {
    let entry = oebench::synth::selected("ELECTRICITY").expect("registry dataset");
    let spec = entry.spec.scaled(0.1);
    let dataset = oebench::synth::generate(&spec, 0);

    // A clean baseline run, then the same stream under the chaos preset
    // (roughly one window in ten structurally damaged, a few percent of
    // cells and labels corrupted).
    let mut config = HarnessConfig {
        degrade: DegradePolicy::resilient(),
        ..Default::default()
    };
    let clean = run_stream(&dataset, Algorithm::NaiveDt, &config).expect("clean run completes");

    config.fault_plan = Some(FaultPlan::chaos(42));
    let faulty = try_run_stream(&dataset, Algorithm::NaiveDt, &config)
        .expect("resilient policy absorbs chaos-level faults");

    println!(
        "{} under Naive(DT):\n  clean:  mean error {:.3} over {} windows\n  chaos:  \
         mean error {:.3} over {} windows, {} degradations",
        dataset.name,
        clean.mean_loss,
        clean.per_window_loss.len(),
        faulty.mean_loss,
        faulty.per_window_loss.len(),
        faulty.degradations.len(),
    );
    for d in faulty.degradations.iter().take(5) {
        println!("    {d}");
    }

    // The injector can also be driven directly, frame by frame, with a
    // log of every fault it fired. Same seed, same faults — injection is
    // keyed on (seed, window), so resuming mid-stream reproduces them.
    let feature_cols = dataset.feature_cols();
    let frames = DatasetFrames::new(&dataset, &feature_cols, 1.0);
    let mut injector = FaultInjector::new(frames, FaultPlan::chaos(42));
    let mut emitted = 0;
    while let Some(frame) = oebench::faults::FrameSource::next_frame(&mut injector) {
        let nan_cells = frame
            .features
            .as_slice()
            .iter()
            .filter(|v| v.is_nan())
            .count();
        if emitted < 3 {
            println!(
                "frame {:>3}: {} rows x {} cols, {} NaN cells",
                frame.index,
                frame.rows(),
                frame.cols(),
                nan_cells
            );
        }
        emitted += 1;
    }
    let log = injector.into_log();
    println!("{emitted} frames emitted, {} faults injected:", log.len());
    for kind in FaultKind::all() {
        println!("  {:<18} {}", kind.name(), log.count(kind));
    }
}
