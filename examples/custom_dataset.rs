//! Bring your own stream: load a relational stream from CSV, attach the
//! task metadata, extract its open-environment statistics, and get an
//! algorithm recommendation — the paper's "portability" design principle
//! (§4.1) applied to a user dataset.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use oebench::prelude::*;
use oebench::tabular::read_table;

fn main() {
    // A small in-line CSV standing in for a user's file: an hourly demand
    // stream whose relationship to the features shifts halfway through.
    let mut csv = String::from("hour,temp,humidity,city,demand\n");
    for i in 0..1200 {
        let hour = i % 24;
        let temp = 15.0 + 10.0 * ((i as f64) / 120.0).sin() + (i % 7) as f64 * 0.3;
        let humidity = 60.0 + (i % 13) as f64;
        let city = ["north", "south", "east"][i % 3];
        // Concept drift: the temperature coefficient flips mid-stream.
        let coeff = if i < 600 { 2.0 } else { -2.0 };
        let demand = 100.0 + coeff * temp + 0.2 * humidity + (i % 5) as f64;
        // A few missing humidity readings.
        let humidity_cell = if i % 41 == 0 {
            String::new()
        } else {
            format!("{humidity}")
        };
        csv.push_str(&format!(
            "{hour},{temp:.2},{humidity_cell},{city},{demand:.2}\n"
        ));
    }

    let table = read_table(&csv).expect("valid CSV");
    let target_col = table.schema().index_of("demand").expect("target column");
    let dataset = StreamDataset::new(
        "customer demand stream",
        Domain::Commerce,
        Task::Regression,
        table,
        target_col,
        100, // window size in rows
    );
    println!(
        "loaded: {} — {} rows, {} features ({} windows)",
        dataset.name,
        dataset.n_rows(),
        dataset.n_features(),
        dataset.windows().len()
    );

    // Extract the §4.3 open-environment statistics.
    let stats = extract_stats(&dataset, &StatsConfig::default());
    println!("\nopen-environment statistics:");
    println!("  missing cells      {:.3}", stats.missing_cells);
    println!("  data-drift score   {:.3}", stats.drift_score());
    println!("  concept-drift score {:.3}", stats.concept_score());
    println!("  anomaly score      {:.3}", stats.anomaly_score());

    // Ask the Figure 9 tree what to run.
    let level = |score: f64| {
        if score > 0.3 {
            Level::High
        } else if score > 0.15 {
            Level::MediumHigh
        } else if score > 0.05 {
            Level::MediumLow
        } else {
            Level::Low
        }
    };
    let scenario = Scenario {
        classification: false,
        drift: level((stats.drift_score() + stats.concept_score()) / 2.0),
        anomaly: level(stats.anomaly_score()),
        missing: level(stats.missing_score()),
        resource_constrained: false,
    };
    let recs = recommend(&scenario);
    let names: Vec<&str> = recs.iter().map(|a| a.name()).collect();
    println!("\nrecommended algorithms: {}", names.join(", "));

    // Run the top recommendation prequentially.
    let result = run_stream(&dataset, recs[0], &HarnessConfig::default())
        .expect("recommended algorithm applies to the task");
    println!(
        "{} mean MSE over {} windows: {:.3}",
        result.algorithm,
        result.per_window_loss.len(),
        result.mean_loss
    );
}
