//! Live drift monitoring: wire the detector suite onto a stream with
//! known abrupt drifts (the INSECTS temperature protocol) and watch the
//! alarms fire.
//!
//! Data-drift detectors (HDDDM, kdq-tree, PCA-CD, per-column KS) watch
//! the feature windows; concept-drift detectors (DDM, EDDM, ADWIN) watch
//! a Hoeffding tree's error stream.
//!
//! ```text
//! cargo run --release --example drift_monitoring
//! ```

use oebench::drift::{
    Adwin, BatchDriftDetector, ConceptDriftDetector, Ddm, Eddm, Hdddm, KdqTreeDetector, KsDetector,
    PcaCd,
};
use oebench::preprocess::OneHotEncoder;
use oebench::tree::{HoeffdingConfig, HoeffdingTree};

fn main() {
    let entry = oebench::synth::by_name("INSECTS-Abrupt (balanced)").expect("registry dataset");
    let spec = entry.spec.scaled(0.1);
    let dataset = oebench::synth::generate(&spec, 0);
    let windows = dataset.windows();
    println!(
        "dataset: {} — {} rows, {} windows, abrupt drifts at 25/50/75% of the stream\n",
        dataset.name,
        dataset.n_rows(),
        windows.len()
    );

    let encoder = OneHotEncoder::fit(&dataset.table, &dataset.feature_cols());

    // Data-drift detectors on the raw feature windows.
    let mut hdddm = Hdddm::default();
    let mut kdq = KdqTreeDetector::default();
    let mut pcacd = PcaCd::default();
    let mut ks = KsDetector::new(0.05);

    // Concept-drift detectors on a Hoeffding tree's online error stream.
    let n_classes = match dataset.task {
        oebench::tabular::Task::Classification { n_classes } => n_classes,
        _ => unreachable!("INSECTS is a classification stream"),
    };
    let mut model = HoeffdingTree::new(encoder.width(), n_classes, HoeffdingConfig::default());
    let mut ddm = Ddm::new();
    let mut eddm = Eddm::new();
    let mut adwin = Adwin::new(0.002);

    println!("window  HDDDM  kdq  PCA-CD  KS(c0)  DDM  EDDM  ADWIN");
    for (w, range) in windows.iter().enumerate() {
        let enc = encoder.encode(&dataset.table, range.clone());
        let marks = [
            hdddm.update(&enc).is_drift(),
            kdq.update(&enc).is_drift(),
            pcacd.update(&enc).is_drift(),
            ks.update(&enc.col(0)).is_drift(),
        ];

        let mut concept = [false; 3];
        for r in 0..enc.rows() {
            let x = enc.row(r);
            let y = dataset.target_at(range.start + r) as usize;
            let err = f64::from(model.predict(x) != y);
            concept[0] |= ddm.update(err).is_drift();
            concept[1] |= eddm.update(err).is_drift();
            concept[2] |= adwin.update(err).is_drift();
            model.learn_one(x, y);
        }
        let dot = |b: bool| if b { "DRIFT" } else { "." };
        println!(
            "{:>6}  {:>5}  {:>3}  {:>6}  {:>6}  {:>3}  {:>4}  {:>5}",
            w,
            dot(marks[0]),
            dot(marks[1]),
            dot(marks[2]),
            dot(marks[3]),
            dot(concept[0]),
            dot(concept[1]),
            dot(concept[2]),
        );
    }
    println!("\n(the stream's abrupt regime switches sit near windows at 25%, 50% and 75%)");
}
