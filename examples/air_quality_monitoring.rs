//! Air-quality monitoring: the paper's motivating regression scenario.
//!
//! An environmental sensor network predicts PM2.5 from meteorological
//! features. Sensors appear, drop out and miss readings (incremental /
//! decremental feature space), and the seasons drive recurrent
//! distribution drift. This example:
//!
//! 1. inspects the evolving feature space window by window (Figure 4);
//! 2. compares the four missing-value imputers (Figure 14);
//! 3. shows the drift impact by comparing against a shuffled stream
//!    (Figure 15).
//!
//! ```text
//! cargo run --release --example air_quality_monitoring
//! ```

use oebench::prelude::*;

fn main() {
    let entry = oebench::synth::selected("AIR").expect("registry dataset");
    let spec = entry.spec.scaled(0.1);
    let dataset = oebench::synth::generate(&spec, 0);
    println!(
        "dataset: {} — {} rows, {} windows, {:.1}% empty cells",
        dataset.name,
        dataset.n_rows(),
        dataset.windows().len(),
        dataset.table.missing_stats().empty_cells * 100.0
    );

    // 1. The evolving feature space: valid-value ratio per window for the
    //    sensor that comes online mid-stream.
    println!("\nsensor 0 valid-value ratio per window (it appears mid-stream):");
    let ratios: Vec<String> = dataset
        .windows()
        .iter()
        .map(|range| {
            let col = dataset.table.column(0).slice(range.clone());
            format!("{:.2}", 1.0 - col.missing_ratio())
        })
        .collect();
    println!("  {}", ratios.join(" "));

    // 2. Imputer comparison on a neural network (the paper's Figure 14
    //    finding: KNN and regression imputers beat mean/zero filling).
    println!("\nimputer comparison (Naive-NN mean MSE):");
    for imputer in [
        ImputerChoice::Knn(2),
        ImputerChoice::Knn(20),
        ImputerChoice::Regression,
        ImputerChoice::Mean,
        ImputerChoice::Zero,
    ] {
        let cfg = HarnessConfig {
            imputer,
            ..Default::default()
        };
        let result = run_stream(&dataset, Algorithm::NaiveNn, &cfg).expect("NN applies");
        println!("  {:<12} {:.3}", imputer.name(), result.mean_loss);
    }

    // 3. Drift impact: the same stream shuffled loses its temporal
    //    structure, so the learner faces no drift.
    let drift = run_stream(&dataset, Algorithm::NaiveNn, &HarnessConfig::default()).unwrap();
    let no_drift = run_stream(
        &dataset,
        Algorithm::NaiveNn,
        &HarnessConfig {
            shuffle: true,
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "\ndrift vs no-drift (shuffled): MSE {:.3} vs {:.3}",
        drift.mean_loss, no_drift.mean_loss
    );
    let spread = |r: &RunResult| -> f64 {
        let max = r.per_window_loss.iter().copied().fold(0.0f64, f64::max);
        max - oebench::linalg::mean(&r.per_window_loss)
    };
    println!(
        "loss-spike spread (max - mean): drift {:.3}, shuffled {:.3}",
        spread(&drift),
        spread(&no_drift)
    );
}
