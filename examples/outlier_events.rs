//! Outlier events: reproduce the §5.3 case study — the 2012 Beijing
//! flood spike, the 2014–15 haze period, and the absurd corrupt
//! precipitation cell (999,990) that blows up a neural network while a
//! decision tree merely degrades.
//!
//! ```text
//! cargo run --release --example outlier_events
//! ```

use oebench::outlier::{anomaly_ratio, Ecod, IForestConfig, IsolationForest};
use oebench::prelude::*;
use oebench::preprocess::OneHotEncoder;

fn main() {
    let entry = oebench::synth::by_name("5 cities PM2.5 (Beijing)").expect("registry dataset");
    let spec = entry.spec.scaled(0.1);
    let dataset = oebench::synth::generate(&spec, 0);
    let windows = dataset.windows();
    println!(
        "dataset: {} — {} rows, {} windows",
        dataset.name,
        dataset.n_rows(),
        windows.len()
    );
    println!("injected events: flood spike at 42%, haze period 80-86%, corrupt cell at 97.5%\n");

    // Per-window anomaly ratios under both detectors (Figure 8).
    let encoder = OneHotEncoder::fit(&dataset.table, &dataset.feature_cols());
    println!("window  ECOD   IForest");
    for (w, range) in windows.iter().enumerate() {
        let mut enc = encoder.encode(&dataset.table, range.clone());
        for v in enc.as_mut_slice() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        let ecod = anomaly_ratio(&Ecod::fit(&enc).score_all(&enc));
        let iforest = anomaly_ratio(
            &IsolationForest::fit(
                &enc,
                &IForestConfig {
                    n_trees: 30,
                    seed: w as u64,
                    ..Default::default()
                },
            )
            .score_all(&enc),
        );
        println!("{w:>6}  {ecod:<5.3}  {iforest:<5.3}");
    }

    // The corrupt cell: NN vs DT (§5.3's vulnerability finding).
    println!("\ntraining through the corrupt 999,990 cell:");
    let nn = run_stream(&dataset, Algorithm::NaiveNn, &HarnessConfig::default()).unwrap();
    let dt = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
    let tail = |r: &RunResult| -> String {
        r.per_window_loss
            .iter()
            .rev()
            .take(4)
            .rev()
            .map(|l| {
                if l.is_finite() {
                    format!("{l:.2}")
                } else {
                    "inf".into()
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "  Naive-NN last windows: {} (mean {})",
        tail(&nn),
        if nn.mean_loss.is_finite() {
            format!("{:.3}", nn.mean_loss)
        } else {
            "N/A — exploded".into()
        }
    );
    println!(
        "  Naive-DT last windows: {} (mean {:.3})",
        tail(&dt),
        dt.mean_loss
    );

    // Removing detected outliers before test/train (Figure 16).
    println!("\noutlier removal before test/train (Naive-DT mean MSE):");
    for removal in [
        OutlierRemoval::None,
        OutlierRemoval::Ecod,
        OutlierRemoval::IForest,
    ] {
        let cfg = HarnessConfig {
            outlier_removal: removal,
            ..Default::default()
        };
        let result = run_stream(&dataset, Algorithm::NaiveDt, &cfg).unwrap();
        println!("  {removal:<9?} {:.3}", result.mean_loss);
    }
}
