//! Quickstart: generate a drifting relational stream from the registry,
//! evaluate two stream learners prequentially, and print the per-window
//! losses.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oebench::prelude::*;

fn main() {
    // Pick the ELECTRICITY stream (one of the paper's five representative
    // datasets) at 10% scale so the example runs in seconds.
    let entry = oebench::synth::selected("ELECTRICITY").expect("registry dataset");
    let spec = entry.spec.scaled(0.1);
    let dataset = oebench::synth::generate(&spec, 0);
    println!(
        "dataset: {} — {} rows, {} features, {} windows",
        dataset.name,
        dataset.n_rows(),
        dataset.n_features(),
        dataset.windows().len()
    );

    // The prequential protocol: each window is tested before it is
    // trained on; the reported loss is the mean over windows.
    for algorithm in [Algorithm::NaiveDt, Algorithm::NaiveNn] {
        let result = run_stream(&dataset, algorithm, &HarnessConfig::default())
            .expect("classification supports both algorithms");
        println!(
            "\n{:<10} mean error {:.3}  ({:.0} items/s, {:.1} KB model)",
            result.algorithm,
            result.mean_loss,
            result.throughput,
            result.memory_bytes as f64 / 1024.0
        );
        let curve: Vec<String> = result
            .per_window_loss
            .iter()
            .map(|l| format!("{l:.2}"))
            .collect();
        println!("per-window error: {}", curve.join(" "));
    }

    // What would the paper's Figure 9 recommend for this stream?
    let recs = recommend(&Scenario {
        classification: true,
        drift: Level::MediumHigh,
        anomaly: Level::MediumHigh,
        missing: Level::Low,
        resource_constrained: false,
    });
    let names: Vec<&str> = recs.iter().map(|a| a.name()).collect();
    println!("\nrecommended for this scenario: {}", names.join(", "));
}
