//! Truly incremental learning: Hoeffding trees and the Adaptive Random
//! Forest evaluated with item-level prequential accuracy (the MOA-style
//! protocol of the paper's §3.2), plus the drift-triggered retraining
//! extension the paper suggests in §2.2.
//!
//! ```text
//! cargo run --release --example incremental_learning
//! ```

use oebench::core::extend::DriftResetLearner;
use oebench::core::{prequential_dataset, Algorithm, LearnerConfig, StreamLearner};
use oebench::linalg::Matrix;
use oebench::tree::{AdaptiveRandomForest, ArfConfig, HoeffdingConfig, HoeffdingTree};

fn main() {
    let entry = oebench::synth::by_name("INSECTS-Abrupt (balanced)").expect("registry dataset");
    let spec = entry.spec.scaled(0.2);
    let dataset = oebench::synth::generate(&spec, 0);
    let n_classes = match dataset.task {
        oebench::tabular::Task::Classification { n_classes } => n_classes,
        _ => unreachable!("INSECTS is classification"),
    };
    println!(
        "dataset: {} — {} items, {} classes, abrupt drifts at 25/50/75%\n",
        dataset.name,
        dataset.n_rows(),
        n_classes
    );

    // Item-level prequential accuracy: test each item, then train on it.
    let mut hoeffding =
        HoeffdingTree::new(dataset.n_features(), n_classes, HoeffdingConfig::default());
    let ht = prequential_dataset(&mut hoeffding, &dataset, dataset.n_rows() / 10);
    println!(
        "Hoeffding tree  — prequential accuracy {:.3} ({} nodes)",
        ht.accuracy,
        hoeffding.n_nodes()
    );

    let mut arf = AdaptiveRandomForest::new(dataset.n_features(), n_classes, ArfConfig::default());
    let arf_result = prequential_dataset(&mut arf, &dataset, dataset.n_rows() / 10);
    println!(
        "ARF (5 trees)   — prequential accuracy {:.3} ({} drift resets)",
        arf_result.accuracy, arf.n_resets
    );
    println!("\nrunning accuracy over the stream (10 checkpoints):");
    let fmt = |c: &[f64]| {
        c.iter()
            .map(|a| format!("{a:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  Hoeffding: {}", fmt(&ht.accuracy_curve));
    println!("  ARF:       {}", fmt(&arf_result.accuracy_curve));

    // The §2.2 suggestion: wrap a window learner with drift-triggered
    // retraining and feed it windows manually.
    let mut wrapped = DriftResetLearner::new(
        Algorithm::NaiveDt,
        dataset.task,
        dataset.n_features(),
        LearnerConfig::default(),
    )
    .expect("classification");
    for range in dataset.windows() {
        let rows: Vec<Vec<f64>> = range
            .clone()
            .map(|r| {
                dataset
                    .table
                    .numeric_row(r)
                    .iter()
                    .take(dataset.n_features())
                    .map(|&v| if v.is_finite() { v } else { 0.0 })
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = range.clone().map(|r| dataset.target_at(r)).collect();
        wrapped.train_window(&Matrix::from_rows(&rows), &ys);
    }
    println!(
        "\nDriftReset[Naive-DT] retrained {} time(s) across the stream's regime switches",
        wrapped.n_resets
    );
}
