//! Offline drop-in for the subset of `criterion` 0.5 this workspace
//! uses. It runs each benchmark a small, fixed number of iterations and
//! prints median wall-clock per iteration — enough for `cargo bench` to
//! produce comparable numbers offline, without the statistical machinery
//! or plotting of the real crate.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost (ignored by the shim: every
/// batch is one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measurement settings (mostly accepted-and-ignored knobs kept for call
/// compatibility; `sample_size` bounds the shim's iteration count).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Disables plot generation (no-op: the shim never plots).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Accepted for compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the shim runs a fixed sample count.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one standalone benchmark. `id` accepts `&str` and `String`
    /// (the real crate takes any `IntoBenchmarkId`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (no-op; kept for call compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        times: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    b.times.sort_unstable();
    let median = b.times.get(b.times.len() / 2).copied().unwrap_or_default();
    println!("{id}: median {median:?} over {} samples", b.times.len());
}

/// Passed to each benchmark closure; records one timing per call.
pub struct Bencher {
    times: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.times.push(start.elapsed());
    }

    /// Times `routine` on a fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.times.push(start.elapsed());
    }
}

/// Declares a benchmark group; both the positional and the
/// `name/config/targets` forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits the `main` that runs the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn benches_run_to_completion() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
    }

    criterion_group!(positional, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2)
            .without_plots()
            .warm_up_time(std::time::Duration::from_millis(1))
            .measurement_time(std::time::Duration::from_millis(1));
        targets = sample_bench
    }

    #[test]
    fn group_macros_expand_to_runnable_fns() {
        positional();
        configured();
    }
}
