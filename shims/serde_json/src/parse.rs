//! A small recursive-descent JSON parser for [`crate::from_str`].

use crate::{Error, Map, Number, Value};

/// Parses a complete JSON document from `text`.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired up (the printer
                            // never emits them); map to the replacement
                            // character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full code point.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
