//! JSON text output: compact and pretty printers.

use crate::{Error, Number, Value};

/// Compact serialisation (no whitespace).
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(to_compact_string(value))
}

/// Pretty serialisation with two-space indentation, matching upstream's
/// `to_string_pretty` layout.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

pub(crate) fn to_compact_string(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::Int(i) => out.push_str(&i.to_string()),
        Number::UInt(u) => out.push_str(&u.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64, always with a decimal point or
                // exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; upstream serialises these as
                // null at the serde layer, so do the same here.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}
