//! Offline drop-in for the subset of `serde_json` this workspace uses:
//! the [`Value`] tree, the [`json!`] macro, [`to_string`] /
//! [`to_string_pretty`], and [`from_str`]. There is no serde integration
//! — callers build values through `json!` / `From` impls and read them
//! back through the `as_*` accessors, which is exactly how the
//! experiment drivers and the checkpoint files use JSON.

mod parse;
mod print;

pub use parse::from_str;
pub use print::{to_string, to_string_pretty};

/// A JSON number: integers and floats are kept apart so integer arrays
/// round-trip without a trailing `.0`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A signed integer (covers every u32/usize this workspace emits).
    Int(i64),
    /// An unsigned integer above `i64::MAX` (full-range u64 seeds).
    UInt(u64),
    /// A double-precision float.
    Float(f64),
}

impl Number {
    /// The numeric value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        // Numeric comparison: 1 == 1.0. (Slightly laxer than upstream,
        // which keeps integer and float representations distinct.)
        self.as_f64() == other.as_f64()
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Map),
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts or replaces `key`, returning any previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        // Key-set equality, order-insensitive (matches upstream's map
        // semantics even though we store insertion order).
        self.len() == other.len() && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements when the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string content when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `f64` when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric content as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// The numeric content as `i64` when the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The boolean content when the value is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The map when the value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the map when the value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup that mirrors indexing but returns an `Option`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print::to_compact_string(self))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`; missing members and non-objects yield `null`,
    /// matching upstream.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `value[i]`; out-of-range and non-arrays yield `null`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(Number::Float(x))
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::Number(Number::Float(x as f64))
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::Number(Number::Int(x as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                match i64::try_from(x) {
                    Ok(i) => Value::Number(Number::Int(i)),
                    Err(_) => Value::Number(Number::UInt(x as u64)),
                }
            }
        }
    )*};
}

impl_from_uint!(u64, usize);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// By-reference conversion used by the [`json!`] macro for leaf values.
///
/// Upstream `json!` serialises leaves through `Serialize`, which works
/// on `&T` — so `json!({"k": owned.field})` never moves out of `owned`.
/// This trait reproduces that: the macro calls
/// [`__json_to_value`]`(&value)`, and auto-deref resolves through any
/// number of reference layers.
pub trait ToJsonValue {
    /// Converts `&self` into an owned [`Value`].
    fn to_json_value(&self) -> Value;
}

/// Macro plumbing for [`json!`]; not public API.
#[doc(hidden)]
pub fn __json_to_value<T: ToJsonValue + ?Sized>(v: &T) -> Value {
    v.to_json_value()
}

macro_rules! impl_to_json_value_via_from {
    ($($t:ty),*) => {$(
        impl ToJsonValue for $t {
            fn to_json_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

impl_to_json_value_via_from!(bool, f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ToJsonValue for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl ToJsonValue for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJsonValue for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: ToJsonValue> ToJsonValue for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: ToJsonValue> ToJsonValue for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(ToJsonValue::to_json_value).collect())
    }
}

impl<T: ToJsonValue> ToJsonValue for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<K: AsRef<str>, T: ToJsonValue> ToJsonValue for std::collections::BTreeMap<K, T> {
    fn to_json_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.as_ref(), v.to_json_value());
        }
        Value::Object(map)
    }
}

impl<K: AsRef<str>, T: ToJsonValue> ToJsonValue for std::collections::HashMap<K, T> {
    fn to_json_value(&self) -> Value {
        // Deterministic output: hash maps are emitted in sorted key order.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k.as_ref(), v.to_json_value());
        }
        Value::Object(map)
    }
}

impl<T: ToJsonValue + ?Sized> ToJsonValue for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

/// Serialisation error type (kept for signature compatibility; the shim
/// printer cannot fail).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Builds a [`Value`] from JSON-ish literal syntax, mirroring
/// `serde_json::json!`: object and array literals may nest, and any
/// member value may be an arbitrary Rust expression (commas inside
/// parentheses, brackets or braces are understood).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {{
        // The token-muncher emits one push per element; `vec![]` cannot
        // express that incrementally.
        #[allow(clippy::vec_init_then_push)]
        {
            let mut array: Vec<$crate::Value> = Vec::new();
            $crate::json_internal!(@array array ($($tt)+));
            $crate::Value::Array(array)
        }
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal!(@object object ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::__json_to_value(&$other) };
}

/// Token-munching guts of [`json!`]; not public API.
///
/// Nested `{..}` / `[..]` literals and bare `null` are matched
/// structurally (each brace/bracket group is a single token tree);
/// every other value is handed to the `expr` fragment parser, which
/// understands arbitrary Rust expressions — including commas nested in
/// turbofish generics, call arguments, and closures.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // --- object entries: `"key": value , ...` ---------------------------
    (@object $map:ident ()) => {};
    (@object $map:ident ($key:literal : null $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::Value::Null);
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $map.insert($key, $crate::json!([ $($inner)* ]));
        $crate::json_internal!(@object $map ($($($rest)*)?));
    };
    (@object $map:ident ($key:literal : $value:expr , $($rest:tt)*)) => {
        $map.insert($key, $crate::__json_to_value(&$value));
        $crate::json_internal!(@object $map ($($rest)*));
    };
    (@object $map:ident ($key:literal : $value:expr)) => {
        $map.insert($key, $crate::__json_to_value(&$value));
    };

    // --- array elements -------------------------------------------------
    (@array $arr:ident ()) => {};
    (@array $arr:ident (null $(, $($rest:tt)*)?)) => {
        $arr.push($crate::Value::Null);
        $crate::json_internal!(@array $arr ($($($rest)*)?));
    };
    (@array $arr:ident ({ $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_internal!(@array $arr ($($($rest)*)?));
    };
    (@array $arr:ident ([ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_internal!(@array $arr ($($($rest)*)?));
    };
    (@array $arr:ident ($value:expr , $($rest:tt)*)) => {
        $arr.push($crate::__json_to_value(&$value));
        $crate::json_internal!(@array $arr ($($rest)*));
    };
    (@array $arr:ident ($value:expr)) => {
        $arr.push($crate::__json_to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_trees() {
        let v = json!({
            "name": "oebench",
            "count": 3,
            "ratio": 0.5,
            "none": null,
            "opt": Some(1.5),
            "missing": Option::<f64>::None,
            "tags": ["a", "b"],
            "nested": { "ok": true },
        });
        assert_eq!(v["name"], "oebench");
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
        assert!(v["none"].is_null());
        assert_eq!(v["opt"].as_f64(), Some(1.5));
        assert!(v["missing"].is_null());
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert_eq!(v["nested"]["ok"].as_bool(), Some(true));
        assert!(v["absent"].is_null());
        assert!(v["tags"][5].is_null());
    }

    #[test]
    fn equality_is_structural_and_order_insensitive_for_objects() {
        let a = json!({ "x": 1, "y": [1, 2.0] });
        let b = json!({ "y": [1.0, 2], "x": 1 });
        assert_eq!(a, b);
        assert_ne!(a, json!({ "x": 2, "y": [1, 2] }));
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n end",
            "ints": [13, 17, 13, 12],
            "f": 0.125,
            "neg": -4,
            "big": 1e300,
            "b": false,
            "n": null,
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
        // Integers print without a decimal point.
        assert!(to_string(&json!([13, 17])).unwrap().contains("[13,17]"));
    }

    #[test]
    fn full_range_u64_survives_parse_and_print() {
        // Seeds hash to the full u64 range; values above i64::MAX must
        // not degrade to floats.
        let text = format!("{{\"seed\":{}}}", u64::MAX);
        let v = from_str(&text).unwrap();
        assert_eq!(v["seed"].as_u64(), Some(u64::MAX));
        assert_eq!(v["seed"].as_i64(), None);
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(json!({ "seed": u64::MAX }), v);
        // Small unsigned values still take the signed representation.
        assert_eq!(json!(3u64).as_i64(), Some(3));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "nul", "\"unterminated", "{\"a\" 1}", "1 2"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn from_value_reference_clones() {
        let v = json!([1, 2]);
        let w = json!({ "alias": v[0] });
        assert_eq!(w["alias"].as_u64(), Some(1));
    }
}
