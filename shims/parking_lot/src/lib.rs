//! Offline drop-in for the subset of `parking_lot` this workspace uses:
//! `Mutex`/`RwLock` with infallible, poison-free locking. Backed by the
//! std primitives; a poisoned std lock is recovered into its inner
//! guard, matching parking_lot's no-poisoning semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
