//! Offline drop-in for the subset of `proptest` 1.x this workspace
//! uses: the [`proptest!`] test macro, `prop_assert*` macros, range /
//! `Just` / tuple / collection / regex-class strategies, `prop_map`,
//! `prop_flat_map`, weighted [`prop_oneof!`], and [`any`].
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic
//! random cases (seeded per test name, stable across runs). There is no
//! shrinking — a failing case reports its case index so it can be
//! reproduced, which is sufficient for the invariant-style properties in
//! this workspace.

use std::rc::Rc;

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice between strategies of one value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Creates a union; weights must not all be zero.
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(
            branches.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs at least one positive weight"
        );
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.branches.iter().map(|(w, _)| *w as u64).sum();
        let mut x = rng.below(total);
        for (w, s) in &self.branches {
            if x < *w as u64 {
                return s.sample(rng);
            }
            x -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S1/a)
    (S1/a, S2/b)
    (S1/a, S2/b, S3/c)
    (S1/a, S2/b, S3/c, S4/d)
    (S1/a, S2/b, S3/c, S4/d, S5/e)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i, S10/j)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i, S10/j, S11/k)
    (S1/a, S2/b, S3/c, S4/d, S5/e, S6/f, S7/g, S8/h, S9/i, S10/j, S11/k, S12/l)
}

/// A `&str` used as a strategy is interpreted as a character-class
/// pattern of the form `[class]{min,max}` (the only regex form this
/// workspace uses); anything else generates the literal string.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        regex_class::generate(self, rng)
    }
}

mod regex_class {
    //! Tiny `[class]{m,n}` pattern generator.

    use super::TestRng;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        if chars.first() != Some(&'[') {
            return pattern.to_string();
        }
        let Some(close) = chars.iter().position(|&c| c == ']') else {
            return pattern.to_string();
        };
        let alphabet = expand_class(&chars[1..close]);
        if alphabet.is_empty() {
            return String::new();
        }
        let (min, max) = parse_counts(&chars[close + 1..]);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let c = if body[i] == '\\' && i + 1 < body.len() {
                i += 1;
                body[i]
            } else if i + 2 < body.len() && body[i + 1] == '-' {
                // A range like `a-z`.
                let (lo, hi) = (body[i], body[i + 2]);
                i += 3;
                for code in lo as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        out.push(ch);
                    }
                }
                continue;
            } else {
                body[i]
            };
            out.push(c);
            i += 1;
        }
        out
    }

    fn parse_counts(rest: &[char]) -> (usize, usize) {
        // `{m,n}` / `{n}`; default is exactly one repetition.
        if rest.first() != Some(&'{') {
            return (1, 1);
        }
        let body: String = rest[1..].iter().take_while(|&&c| c != '}').collect();
        match body.split_once(',') {
            Some((m, n)) => {
                let m = m.trim().parse().unwrap_or(0);
                let n = n.trim().parse().unwrap_or(m);
                (m, n.max(m))
            }
            None => {
                let n = body.trim().parse().unwrap_or(1);
                (n, n)
            }
        }
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// The canonical strategy for `T` (`any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Accepted by [`vec`] as either an exact length or a length range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// A strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`cases` is the number of random cases run).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Item-munching guts of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                // The body runs in a `ControlFlow` closure so that
                // `prop_assume!` can quietly reject a case via `return`.
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::ops::ControlFlow<()> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::ops::ControlFlow::Continue(())
                        },
                    ),
                );
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed; rerun is deterministic",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Skips the current case when `cond` is false (no replacement case is
/// drawn in the shim; the case simply doesn't run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

/// Asserts a condition inside a property (plain assert in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    /// `prop::collection::vec(..)` paths resolve through this alias.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_case() {
        let s = (0usize..100, 0.0..1.0f64);
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(s.sample(&mut a), s.sample(&mut c));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let u = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0..5.0f64).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn oneof_honours_weights_and_types() {
        let s = prop_oneof![9 => (0.0..1.0f64).prop_map(Some), 1 => Just(None)];
        let mut rng = crate::TestRng::for_case("weights", 1);
        let nones = (0..1000).filter(|_| s.sample(&mut rng).is_none()).count();
        assert!((40..250).contains(&nones), "nones {nones}");
    }

    #[test]
    fn vec_and_flat_map_compose() {
        let s = (1usize..5, 1usize..4).prop_flat_map(|(r, c)| {
            prop::collection::vec(0.0..1.0f64, r * c).prop_map(move |data| (r, c, data))
        });
        let mut rng = crate::TestRng::for_case("compose", 2);
        for _ in 0..100 {
            let (r, c, data) = s.sample(&mut rng);
            assert_eq!(data.len(), r * c);
        }
    }

    #[test]
    fn regex_class_strategy_generates_members() {
        let s = "[a-cXY_\\\"]{2,6}";
        let mut rng = crate::TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let text = s.sample(&mut rng);
            assert!((2..=6).contains(&text.chars().count()), "{text:?}");
            for ch in text.chars() {
                assert!(
                    matches!(ch, 'a'..='c' | 'X' | 'Y' | '_' | '"'),
                    "unexpected {ch:?}"
                );
            }
        }
        // Zero-length lower bound is honoured.
        let empty_ok = "[a]{0,2}";
        let mut saw_empty = false;
        for _ in 0..100 {
            saw_empty |= empty_ok.sample(&mut rng).is_empty();
        }
        assert!(saw_empty);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_form_runs_with_multiple_args(
            x in 0usize..10,
            flag in any::<bool>(),
            v in prop::collection::vec(0.0..1.0f64, 1..5),
        ) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
