//! Offline drop-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen` for `f64`/`bool`/integers,
//! `Rng::gen_range` over integer/float ranges, and
//! `SliceRandom::shuffle`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this crate (see `[workspace.dependencies]`).  The
//! generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with the same contract
//! the callers rely on: deterministic per seed, uniform, and fast.

/// Core trait: a source of uniformly distributed `u64` values.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type samplable from raw bits (the `Standard` distribution of
/// upstream rand, folded into one trait for the shim).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// A type usable as the bound of `gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny bias
                // (< 2^-64) is irrelevant for benchmark workloads.
                let hi128 = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + hi128 as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The user-facing random-value API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    /// Drop-in for `rand::rngs::StdRng`: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state; the
            // all-zero state is unreachable this way.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::{Rng, SampleUniform};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn bool_and_gen_bool_mix() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((400..600).contains(&trues), "trues {trues}");
        let biased = (0..1000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(biased > 850, "biased {biased}");
    }
}
