//! Cross-crate integration: the full OEBench pipeline — registry →
//! generation → statistics extraction → representative selection →
//! prequential evaluation — exercised end to end at small scale.

use oebench::prelude::*;

const SCALE: f64 = 0.02;

#[test]
fn full_pipeline_stats_selection_evaluation() {
    // Stage 1: generate a slice of the registry (one per domain family).
    let names = [
        "Electricity Prices",
        "Beijing Multi-Site Air-Quality Shunyi",
        "INSECTS-Abrupt (balanced)",
        "Safe Driver",
        "Power Consumption of Tetouan City",
        "Indian Cities Weather Delhi",
        "Room Occupancy Estimation",
    ];
    let entries: Vec<_> = oebench::synth::registry_scaled(SCALE)
        .into_iter()
        .filter(|e| names.contains(&e.spec.name.as_str()))
        .collect();
    assert_eq!(entries.len(), names.len());

    // Stage 2: extract open-environment statistics for each.
    let stats: Vec<OeStats> = entries
        .iter()
        .map(|e| {
            extract_stats(
                &oebench::synth::generate(&e.spec, 0),
                &StatsConfig::default(),
            )
        })
        .collect();
    for s in &stats {
        assert!(s.n_windows >= 2, "{} has too few windows", s.name);
        assert!(s.missing_cells >= 0.0 && s.missing_cells <= 1.0);
    }

    // Stage 3: cluster and select representatives.
    let selection = select_representatives(&stats, 3, 7);
    assert_eq!(selection.representatives.len(), 3);

    // Stage 4: evaluate a learner on each representative, prequentially.
    for &rep in &selection.representatives {
        let dataset = oebench::synth::generate(&entries[rep].spec, 0);
        let result = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default())
            .expect("DT applies to both tasks");
        assert!(
            result.mean_loss.is_finite(),
            "{} diverged under DT",
            dataset.name
        );
    }
}

#[test]
fn every_algorithm_completes_on_both_task_types() {
    let reg = oebench::synth::registry_scaled(SCALE);
    let clf = reg
        .iter()
        .find(|e| e.spec.name == "Electricity Prices")
        .unwrap();
    let regr = reg
        .iter()
        .find(|e| e.spec.name == "Power Consumption of Tetouan City")
        .unwrap();
    let mut cfg = HarnessConfig::default();
    cfg.learner.epochs = 2;

    for entry in [clf, regr] {
        let dataset = oebench::synth::generate(&entry.spec, 0);
        for alg in Algorithm::all() {
            match run_stream(&dataset, alg, &cfg) {
                Some(result) => {
                    assert!(
                        !result.per_window_loss.is_empty(),
                        "{} produced no windows on {}",
                        alg.name(),
                        dataset.name
                    );
                    assert!(result.memory_bytes > 0);
                }
                None => {
                    // Only ARF on regression is allowed to be N/A.
                    assert_eq!(alg, Algorithm::Arf);
                    assert!(!dataset.task.is_classification());
                }
            }
        }
    }
}

#[test]
fn detectors_fire_on_drifting_streams_not_stationary_ones() {
    let reg = oebench::synth::registry_scaled(0.04);
    let drifting = reg
        .iter()
        .find(|e| e.spec.name == "Power Consumption of Tetouan City")
        .unwrap();
    let stationary = reg.iter().find(|e| e.spec.name == "Safe Driver").unwrap();

    let score = |entry: &oebench::synth::DatasetEntry| -> f64 {
        let d = oebench::synth::generate(&entry.spec, 0);
        extract_stats(&d, &StatsConfig::default()).drift_score()
    };
    let drift_score = score(drifting);
    let stationary_score = score(stationary);
    assert!(
        drift_score > stationary_score,
        "drifting {drift_score} <= stationary {stationary_score}"
    );
}

#[test]
fn seeded_runs_are_reproducible() {
    let reg = oebench::synth::registry_scaled(SCALE);
    let entry = reg
        .iter()
        .find(|e| e.spec.name == "Electricity Prices")
        .unwrap();
    let dataset = oebench::synth::generate(&entry.spec, 5);
    let a = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
    let b = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
    assert_eq!(a.per_window_loss, b.per_window_loss);
    assert_eq!(a.mean_loss, b.mean_loss);
}

#[test]
fn window_scaling_preserves_total_coverage() {
    let reg = oebench::synth::registry_scaled(SCALE);
    let entry = reg
        .iter()
        .find(|e| e.spec.name == "Electricity Prices")
        .unwrap();
    let dataset = oebench::synth::generate(&entry.spec, 0);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let windows = dataset.windows_scaled(factor);
        assert_eq!(windows.first().unwrap().start, 0);
        assert_eq!(windows.last().unwrap().end, dataset.n_rows());
    }
}
