//! Integration tests encoding the paper's qualitative findings — the
//! "shape" a faithful reproduction must preserve, independent of
//! absolute numbers.

use oebench::prelude::*;

/// §5.3 / Finding (6): outliers and the absurd corrupt cell
/// (precipitation 999,990) hit the neural network far harder than the
/// decision tree. The raw training-explosion mechanism is pinned down by
/// `oeb_nn::mlp` unit tests (`outlier_input_can_explode_regression_loss`);
/// here we assert the stream-level shape: the tree's mean loss stays
/// finite, and the NN's worst-window spike (relative to its median
/// window) exceeds the tree's.
#[test]
fn outlier_events_hit_nn_harder_than_dt() {
    let reg = oebench::synth::registry_scaled(0.05);
    let entry = reg
        .iter()
        .find(|e| e.spec.name == "5 cities PM2.5 (Beijing)")
        .unwrap();
    let dataset = oebench::synth::generate(&entry.spec, 0);

    let dt = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
    assert!(
        dt.mean_loss.is_finite(),
        "DT should survive the corrupt cell"
    );

    let nn = run_stream(&dataset, Algorithm::NaiveNn, &HarnessConfig::default()).unwrap();
    let spike_ratio = |r: &RunResult| -> f64 {
        let finite: Vec<f64> = r
            .per_window_loss
            .iter()
            .copied()
            .filter(|l| l.is_finite())
            .collect();
        let median = oebench::linalg::quantile(&finite, 0.5).max(1e-9);
        let max = r.per_window_loss.iter().copied().fold(0.0f64, |a, b| {
            if b.is_finite() {
                a.max(b)
            } else {
                f64::INFINITY
            }
        });
        max / median
    };
    let nn_spike = spike_ratio(&nn);
    let dt_spike = spike_ratio(&dt);
    assert!(
        nn_spike > dt_spike,
        "NN spike ratio {nn_spike} should exceed DT spike ratio {dt_spike}"
    );
}

/// §6.3 / Tables 5 and 6: decision trees are much faster and much
/// smaller than NN-based methods; SEA multiplies the NN footprint by the
/// ensemble size.
#[test]
fn efficiency_ordering_matches_the_paper() {
    let reg = oebench::synth::registry_scaled(0.05);
    let entry = reg
        .iter()
        .find(|e| e.spec.name == "Electricity Prices")
        .unwrap();
    let dataset = oebench::synth::generate(&entry.spec, 0);
    let cfg = HarnessConfig::default();

    let dt = run_stream(&dataset, Algorithm::NaiveDt, &cfg).unwrap();
    let nn = run_stream(&dataset, Algorithm::NaiveNn, &cfg).unwrap();
    let sea_nn = run_stream(&dataset, Algorithm::SeaNn, &cfg).unwrap();
    let ewc = run_stream(&dataset, Algorithm::Ewc, &cfg).unwrap();

    // Throughput: trees refit per window beat 10-epoch SGD.
    assert!(
        dt.throughput > nn.throughput,
        "DT {} <= NN {}",
        dt.throughput,
        nn.throughput
    );
    // Memory: DT < NN < EWC (3x) and NN < SEA-NN (~5x).
    assert!(dt.memory_bytes < nn.memory_bytes);
    assert!(nn.memory_bytes < ewc.memory_bytes);
    assert!(nn.memory_bytes * 3 < sea_nn.memory_bytes);
    // EWC costs roughly double the naive NN time (extra Fisher pass and
    // penalty work) — the paper notes EWC/LwF "doubling the computational
    // cost".
    assert!(ewc.train_seconds > nn.train_seconds);
}

/// §6.4.1 / Finding (2): more local epochs generally reduce loss.
#[test]
fn more_epochs_improve_effectiveness() {
    let reg = oebench::synth::registry_scaled(0.05);
    let entry = reg
        .iter()
        .find(|e| e.spec.name == "Power Consumption of Tetouan City")
        .unwrap();
    let dataset = oebench::synth::generate(&entry.spec, 0);

    let loss_at = |epochs: usize| {
        let mut cfg = HarnessConfig::default();
        cfg.learner.epochs = epochs;
        run_stream(&dataset, Algorithm::NaiveNn, &cfg)
            .unwrap()
            .mean_loss
    };
    let one = loss_at(1);
    let ten = loss_at(10);
    assert!(ten < one, "10 epochs {ten} should beat 1 epoch {one}");
}

/// §6.7 / Finding (5): drifted streams produce loss spikes that the
/// shuffled (no-drift) version of the same stream does not show.
#[test]
fn shuffling_removes_drift_spikes() {
    let reg = oebench::synth::registry_scaled(0.05);
    let entry = reg
        .iter()
        .find(|e| e.spec.name == "Power Consumption of Tetouan City")
        .unwrap();
    let dataset = oebench::synth::generate(&entry.spec, 0);

    let drift = run_stream(&dataset, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
    let shuffled = run_stream(
        &dataset,
        Algorithm::NaiveDt,
        &HarnessConfig {
            shuffle: true,
            ..Default::default()
        },
    )
    .unwrap();
    // Window-to-window variability collapses once temporal structure is
    // destroyed.
    let spread = |r: &RunResult| oebench::linalg::std_dev(&r.per_window_loss);
    assert!(
        spread(&drift) > spread(&shuffled),
        "drift spread {} <= shuffled spread {}",
        spread(&drift),
        spread(&shuffled)
    );
    assert!(shuffled.mean_loss < drift.mean_loss);
}

/// §5.2: training on all history under drift can be worse than training
/// on recent windows only — old data from a different regime misleads.
#[test]
fn recent_data_beats_all_history_under_drift() {
    use oebench::linalg::Matrix;
    use oebench::preprocess::{Imputer, KnnImputer, OneHotEncoder, StandardScaler};
    use oebench::tree::{DecisionTree, TreeConfig, TreeTask};

    // A regression stream with one abrupt regime switch at 50% of the
    // stream (mirroring the paper's Tiantan experiment, where the drift
    // sits around window 7 of 12).
    let spec = oebench::synth::StreamSpec {
        name: "abrupt-regression".into(),
        domain: Domain::Power,
        n_rows: 4000,
        n_numeric: 8,
        categorical: vec![],
        task: oebench::synth::TaskSpec::Regression { noise: 0.1 },
        drift_pattern: oebench::synth::DriftPattern::Abrupt {
            breaks: [0.5, 0.0, 0.0],
            n_breaks: 1,
        },
        drift_level: Level::High,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::Low,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 200,
        seed: 99,
    };
    let dataset = oebench::synth::generate(&spec, 0);
    let windows = dataset.windows();
    assert!(windows.len() >= 14);
    let encoder = OneHotEncoder::fit(&dataset.table, &dataset.feature_cols());

    let prepare = |range: std::ops::Range<usize>| -> (Matrix, Vec<f64>) {
        let mut m = encoder.encode(&dataset.table, range.clone());
        let reference = m.clone();
        KnnImputer { k: 2 }.impute(&mut m, &reference);
        let ys: Vec<f64> = range.map(|r| dataset.target_at(r)).collect();
        (m, ys)
    };

    // The break sits at window 10 of 20. Train on (a) all of windows
    // 0..=12 (mixing both regimes) vs (b) windows 10..=12 only (the new
    // regime); test on window 13.
    let k = 12;
    let (all_x, all_y) = prepare(windows[0].start..windows[k].end);
    let (recent_x, recent_y) = prepare(windows[10].start..windows[k].end);
    let (test_x, test_y) = prepare(windows[k + 1].clone());
    let scaler = StandardScaler::fit(&recent_x);

    let mse = |train_x: &Matrix, train_y: &[f64]| -> f64 {
        let mut tx = train_x.clone();
        scaler.transform(&mut tx);
        let tree = DecisionTree::fit(&tx, train_y, TreeTask::Regression, &TreeConfig::default());
        let mut ex = test_x.clone();
        scaler.transform(&mut ex);
        (0..ex.rows())
            .map(|r| (tree.predict(ex.row(r)) - test_y[r]).powi(2))
            .sum::<f64>()
            / ex.rows() as f64
    };
    let loss_all = mse(&all_x, &all_y);
    let loss_recent = mse(&recent_x, &recent_y);
    assert!(
        loss_recent < loss_all,
        "recent-window training {loss_recent} should beat all-history {loss_all} under drift"
    );
}
