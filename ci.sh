#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings as
# errors, formatting, a parallel-executor smoke run, and the sweep
# benchmark artifact. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Optional: Miri over the concurrency-sensitive tests — the oeb-trace
# event-buffer suite (thread-local buffers flushed into a global
# registry) and the executor's slot-collection tests (per-worker Mutex
# slots drained after join). Miri needs a nightly toolchain, so this
# job is advisory: skipped with a notice when nightly+miri are absent,
# and a failure warns rather than gating (continue-on-error) because
# the sandboxed CI image cannot always provide the component.
if cargo +nightly miri --version >/dev/null 2>&1; then
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p oeb-trace --test trace \
        || echo "ci: warning: miri (oeb-trace) failed — advisory only" >&2
    MIRIFLAGS="-Zmiri-disable-isolation" \
        cargo +nightly miri test -p oeb-core --lib executor::tests::parallel_map \
        || echo "ci: warning: miri (executor) failed — advisory only" >&2
else
    echo "ci: nightly miri not installed — skipping miri job" >&2
fi

cargo fmt --check

# Smoke: the staged pipeline + parallel executor end to end (Table 4 at
# a tiny scale, four workers).
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT

# Static invariant gate (oeb-lint v2): the token rules (determinism,
# NaN-safety, panic hygiene) plus the workspace-level semantic rules
# (counter vocabulary sync, exit-code registry, delta-equivalence
# coverage, lock-order cycles, stale suppressions) — see DESIGN.md,
# "Static invariants v2". The JSON report lands next to the bench
# artifacts; --time-budget-ms is a self-timing gate — the full
# workspace pass (index + all rules) must stay under one second or the
# lint itself fails CI. For remediation guidance run it by hand:
#   cargo run --release -p oeb-lint -- check --fix-hints
cargo run --release -p oeb-lint -- check --json --time-budget-ms 1000 \
    > "$smoke_dir/LINT_report.json" \
    || { cat "$smoke_dir/LINT_report.json"; exit 1; }
cargo run --release -p oeb-bench --bin repro -- table4 \
    --scale 0.05 --seeds 1 --threads 4 --out "$smoke_dir"

# Smoke: observability. The same run traced: every JSONL record must
# match the span schema (required keys, monotone ids — trace_check),
# the metrics table must show prepare-cache hits, and the result
# artifact must be byte-identical to the untraced run (table4.txt holds
# only losses; table4.json embeds wall-clock throughput, so the
# bit-identity contract is checked on the .txt).
cargo run --release -p oeb-bench --bin repro -- table4 \
    --scale 0.05 --seeds 1 --threads 4 --out "$smoke_dir/traced" \
    --trace "$smoke_dir/trace.jsonl" --metrics 2> "$smoke_dir/metrics.txt" \
    || { cat "$smoke_dir/metrics.txt"; exit 1; }
cargo run --release -p oeb-bench --bin trace_check -- "$smoke_dir/trace.jsonl" \
    --counters "$smoke_dir/metrics.txt"
grep -Eq 'prepare\.cache\.hit +[1-9]' "$smoke_dir/metrics.txt" \
    || { echo "ci: no prepare-cache hits in --metrics output" >&2; exit 1; }
diff "$smoke_dir/table4.txt" "$smoke_dir/traced/table4.txt" \
    || { echo "ci: traced run diverged from untraced table4.txt" >&2; exit 1; }

# Smoke: attributed trace profiler. oeb-profile analyses the traced
# table4 run: the PROFILE.json schema must validate, the per-stage
# totals must equal the metrics-snapshot span aggregates exactly
# (--check-metrics), the cell-attribution and per-item latency
# instruments must have fired, and the cost model fitted from the same
# trace must parse. PROFILE.json lands next to the bench artifacts in
# the smoke dir.
cargo run --release -p oeb-bench --bin oeb-profile -- "$smoke_dir/trace.jsonl" \
    --out "$smoke_dir/PROFILE.json" --threads 4 \
    --check-metrics "$smoke_dir/metrics.txt"
for key in '"schema"' '"stages"' '"timeline"' '"cells"' '"utilization"' \
           '"lower_bound_ns"'; do
    grep -q "$key" "$smoke_dir/PROFILE.json" \
        || { echo "ci: PROFILE.json lacks $key" >&2; exit 1; }
done
grep -Eq 'profile\.cells\.attributed +[1-9]' "$smoke_dir/metrics.txt" \
    || { echo "ci: no profile.cells.attributed in --metrics output" >&2; exit 1; }
grep -Eq 'evaluate\.window\.latency_us +count=[1-9]' "$smoke_dir/metrics.txt" \
    || { echo "ci: no evaluate.window.latency_us histogram in --metrics output" >&2; exit 1; }
cargo run --release -p oeb-bench --bin oeb-profile -- cost-model \
    "$smoke_dir/trace.jsonl" --out "$smoke_dir/COST_MODEL.json"
grep -q '"classes"' "$smoke_dir/COST_MODEL.json" \
    || { echo "ci: COST_MODEL.json lacks fitted classes" >&2; exit 1; }

# Smoke: compute kernels (blocked GEMM, pruned KNN imputation) vs their
# scalar references — asserts bit-identical outputs while timing, so a
# kernel regression fails CI here rather than skewing a golden artifact.
cargo run --release -p oeb-bench --bin bench_kernels -- \
    --quick --out "$smoke_dir/BENCH_kernels.json"

# Smoke: incremental-vs-full statistics equivalence. The two engines
# must render identical stats reports below the `stats-mode:` header;
# the incremental run is traced, so its spans must validate and its
# stats.* delta counters must land in the metrics table and pass the
# counter vocabulary gate.
cargo run --release --bin oebench -- stats "Electricity Prices" --scale 0.05 \
    --stats-mode full > "$smoke_dir/stats_full.txt"
cargo run --release --bin oebench -- stats "Electricity Prices" --scale 0.05 \
    --stats-mode incremental --trace "$smoke_dir/stats_trace.jsonl" \
    --metrics > "$smoke_dir/stats_incremental.txt" 2> "$smoke_dir/stats_metrics.txt" \
    || { cat "$smoke_dir/stats_metrics.txt"; exit 1; }
diff <(tail -n +2 "$smoke_dir/stats_full.txt") \
     <(tail -n +2 "$smoke_dir/stats_incremental.txt") \
    || { echo "ci: incremental stats diverged from the full engine" >&2; exit 1; }
cargo run --release -p oeb-bench --bin trace_check -- "$smoke_dir/stats_trace.jsonl" \
    --counters "$smoke_dir/stats_metrics.txt"
grep -Eq 'stats\.delta\.absorbed +[1-9]' "$smoke_dir/stats_metrics.txt" \
    || { echo "ci: no stats.delta.absorbed in stats --metrics output" >&2; exit 1; }

# Smoke: delta-statistics benchmark (quick profile). The binary asserts
# digest equality between the full and incremental engines while
# timing, so an equivalence regression fails CI here too.
cargo run --release -p oeb-bench --bin bench_incremental -- \
    --quick --out "$smoke_dir/BENCH_incremental.json"

# Smoke: batched training kernels (quick profile). The binary asserts
# the training equivalences while timing — MLP GEMM batch vs per-sample
# SGD (bit-identical parameters), lockstep-parallel ARF vs the serial
# fused loop (equal forest digests, including at 4 oversubscribed
# workers), Hoeffding maintained-aggregate splits vs the rescanning
# reference (bit-identical tuples). Its traced pass must surface all
# three train.* counters and pass the counter vocabulary gate.
cargo run --release -p oeb-bench --bin bench_train -- \
    --quick --out "$smoke_dir/BENCH_train.json" \
    --metrics "$smoke_dir/train_metrics.txt"
cargo run --release -p oeb-bench --bin trace_check -- \
    --counters "$smoke_dir/train_metrics.txt"
for c in 'train\.mlp\.gemm_batches' 'train\.arf\.parallel_members' \
         'train\.hoeffding\.split_checks'; do
    grep -Eq "$c +[1-9]" "$smoke_dir/train_metrics.txt" \
        || { echo "ci: no $c in bench_train --metrics output" >&2; exit 1; }
done

# Smoke: staged (shared prepare + worker pool) vs the per-cell
# sequential baseline over the five-dataset sweep, plus the
# traced-vs-untraced bit-identity assertions inside the binary. Writes
# to the smoke dir — the committed BENCH_sweep.json is regenerated
# deliberately (with --reference-staged-seconds from a
# pre-instrumentation build), not clobbered by every CI run.
cargo run --release -p oeb-bench --bin bench_sweep -- \
    --scale 0.10 --seeds 3 --threads 4 --out "$smoke_dir/BENCH_sweep.json"

# Smoke: chaos-soak supervision gate. An 8-cell fault x drift grid under
# full supervision: the chaos command itself exits nonzero on any
# violated invariant (escaped panic, dropped cell, missed quarantine,
# counter mismatch, nondeterministic deadline). On top of that, the
# traced run must validate against the span schema, the metrics table
# must surface the supervise.* counters, and the JSON report must carry
# the quarantine accounting.
cargo run --release --bin oebench -- chaos --limit 8 --max-retries 2 \
    --out "$smoke_dir/chaos.json" --trace "$smoke_dir/chaos_trace.jsonl" \
    --metrics 2> "$smoke_dir/chaos_metrics.txt" \
    || { cat "$smoke_dir/chaos_metrics.txt"; exit 1; }
cargo run --release -p oeb-bench --bin trace_check -- "$smoke_dir/chaos_trace.jsonl" \
    --counters "$smoke_dir/chaos_metrics.txt"
grep -Eq 'supervise\.retries +[1-9]' "$smoke_dir/chaos_metrics.txt" \
    || { echo "ci: no supervise.retries in chaos --metrics output" >&2; exit 1; }
grep -Eq 'supervise\.quarantined +[1-9]' "$smoke_dir/chaos_metrics.txt" \
    || { echo "ci: no supervise.quarantined in chaos --metrics output" >&2; exit 1; }
grep -q '"quarantined"' "$smoke_dir/chaos.json" \
    || { echo "ci: chaos report lacks quarantine accounting" >&2; exit 1; }
grep -q '"violations": \[\]' "$smoke_dir/chaos.json" \
    || { echo "ci: chaos report lists violations" >&2; exit 1; }
