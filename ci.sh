#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings as
# errors. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
