//! Property-based tests for the drift detectors: robustness over
//! arbitrary streams (no panics, sane state), ADWIN window accounting,
//! and detector reset semantics.

use oeb_drift::{
    Adwin, BatchDriftDetector, Cdbd, ConceptDriftDetector, Ddm, Eddm, Hdddm, HddmA,
    KdqTreeDetector, KsDetector, PageHinkley, PcaCd,
};
use oeb_linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adwin_window_never_exceeds_items_inserted(values in prop::collection::vec(0.0..1.0f64, 1..500)) {
        let mut a = Adwin::new(0.002);
        for (i, &v) in values.iter().enumerate() {
            a.insert(v);
            prop_assert!(a.window_len() <= i + 1);
            prop_assert!(a.window_len() >= 1);
            // The window mean stays within the value range.
            prop_assert!(a.mean() >= -1e-9 && a.mean() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn adwin_mean_matches_recount_on_stable_stream(values in prop::collection::vec(0.4..0.6f64, 10..200)) {
        // A narrow-band stream never cuts, so the ADWIN mean must equal
        // the running arithmetic mean.
        let mut a = Adwin::new(0.0001);
        let mut sum = 0.0;
        for (i, &v) in values.iter().enumerate() {
            a.insert(v);
            sum += v;
            if a.window_len() == i + 1 {
                let expected = sum / (i + 1) as f64;
                prop_assert!((a.mean() - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn concept_detectors_never_panic_and_reset_clean(errors in prop::collection::vec(0.0..1.0f64, 1..300)) {
        let mut detectors: Vec<Box<dyn ConceptDriftDetector>> = vec![
            Box::new(Ddm::new()),
            Box::new(Eddm::new()),
            Box::new(Adwin::new(0.002)),
            Box::new(HddmA::default()),
        ];
        for det in &mut detectors {
            for &e in &errors {
                let _ = det.update(e);
            }
            det.reset();
            // After reset, the first update never reports drift.
            prop_assert!(!det.update(errors[0]).is_drift(), "{} drifted right after reset", det.name());
        }
    }

    #[test]
    fn batch_detectors_accept_arbitrary_windows(
        data in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 12), 4..10)
    ) {
        // 4-10 windows of 4 rows x 3 cols each.
        let windows: Vec<Matrix> = data
            .chunks(1)
            .map(|chunk| Matrix::from_vec(4, 3, chunk[0].clone()))
            .collect();
        let mut hdddm = Hdddm::default();
        let mut kdq = KdqTreeDetector::new(2, 10, 0.99, 7);
        let mut pcacd = PcaCd::default();
        for w in &windows {
            let _ = hdddm.update(w);
            let _ = kdq.update(w);
            let _ = pcacd.update(w);
        }
        // Reset restores the initial no-reference state: the next window
        // is absorbed as reference without drift.
        hdddm.reset();
        prop_assert!(!hdddm.update(&windows[0]).is_drift());
        kdq.reset();
        prop_assert!(!kdq.update(&windows[0]).is_drift());
        pcacd.reset();
        prop_assert!(!pcacd.update(&windows[0]).is_drift());
    }

    #[test]
    fn ks_detector_is_shift_invariant_in_decision(
        base in prop::collection::vec(0.0..1.0f64, 20..80),
        offset in -100.0..100.0f64,
    ) {
        // KS works on ranks: adding a constant to *both* windows cannot
        // change the statistic, so detections agree.
        let shifted: Vec<f64> = base.iter().map(|x| x + offset).collect();
        let mut det_a = KsDetector::new(0.05);
        let mut det_b = KsDetector::new(0.05);
        det_a.update(&base);
        det_b.update(&shifted);
        let second: Vec<f64> = base.iter().rev().map(|x| x * 0.9).collect();
        let second_shifted: Vec<f64> = second.iter().map(|x| x + offset).collect();
        prop_assert_eq!(det_a.update(&second), det_b.update(&second_shifted));
    }

    #[test]
    fn cdbd_handles_constant_batches(v in -10.0..10.0f64, n in 3usize..20) {
        let mut det = Cdbd::default();
        let batch = vec![v; 50];
        let mut drifts = 0;
        for _ in 0..n {
            if det.update(&batch).is_drift() {
                drifts += 1;
            }
        }
        prop_assert_eq!(drifts, 0, "CDBD drifted on identical constant batches");
    }

    #[test]
    fn page_hinkley_never_fires_below_delta(xs in prop::collection::vec(0.0..0.001f64, 10..200)) {
        // All observations are below the minimum-change delta, so the
        // cumulative statistic cannot reach lambda.
        let mut ph = PageHinkley::new(0.01, 1.0);
        for &x in &xs {
            prop_assert!(!ph.update(x));
        }
    }
}
