//! PCA-CD — Qahtan et al., KDD 2015: change detection for
//! multidimensional streams by projecting onto leading principal
//! components, estimating per-component densities, and monitoring a
//! divergence statistic with a Page–Hinkley test.
//!
//! The paper's pipeline uses the first two principal components (§4.3).

use crate::state::{BatchDriftDetector, DriftState};
use oeb_linalg::{kl_divergence, Histogram, Matrix, Pca};

/// Page–Hinkley cumulative-change test over a scalar statistic.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    /// Minimal magnitude of change to accumulate.
    pub delta: f64,
    /// Detection threshold on the accumulated deviation.
    pub lambda: f64,
    n: usize,
    mean: f64,
    cum: f64,
    min_cum: f64,
}

impl PageHinkley {
    /// Creates a Page–Hinkley test.
    pub fn new(delta: f64, lambda: f64) -> PageHinkley {
        PageHinkley {
            delta,
            lambda,
            n: 0,
            mean: 0.0,
            cum: 0.0,
            min_cum: 0.0,
        }
    }

    /// Feeds one observation; true when the accumulated positive deviation
    /// exceeds `lambda`.
    pub fn update(&mut self, x: f64) -> bool {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.cum += x - self.mean - self.delta;
        self.min_cum = self.min_cum.min(self.cum);
        if self.cum - self.min_cum > self.lambda {
            self.reset();
            true
        } else {
            false
        }
    }

    /// Clears accumulated state.
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cum = 0.0;
        self.min_cum = 0.0;
    }
}

/// The fitted reference: the PCA basis, per-component histogram
/// ranges, and per-component reference probabilities.
type FittedReference = (Pca, Vec<(f64, f64)>, Vec<Vec<f64>>);

/// PCA-CD batch drift detector.
#[derive(Debug, Clone)]
pub struct PcaCd {
    /// Number of leading components monitored (paper default 2).
    pub n_components: usize,
    bins: usize,
    ph: PageHinkley,
    fitted: Option<FittedReference>,
}

impl PcaCd {
    /// Creates a PCA-CD detector monitoring `n_components` components.
    pub fn new(n_components: usize, lambda: f64) -> PcaCd {
        PcaCd {
            n_components,
            bins: 16,
            ph: PageHinkley::new(0.005, lambda),
            fitted: None,
        }
    }

    /// Fits the PCA and the reference per-component histograms.
    fn fit_reference(&mut self, window: &Matrix) {
        let clean = sanitize(window);
        let pca = Pca::fit(&clean, self.n_components);
        let proj = pca.transform(&clean);
        let mut ranges = Vec::new();
        let mut probs = Vec::new();
        for c in 0..proj.cols() {
            let col = proj.col(c);
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1.0) };
            // Widen the range a little so new data stays in-range.
            let pad = (hi - lo) * 0.25;
            let (lo, hi) = (lo - pad, hi + pad);
            ranges.push((lo, hi));
            probs.push(Histogram::new(&col, self.bins, lo, hi).probabilities());
        }
        self.fitted = Some((pca, ranges, probs));
    }
}

/// Replaces non-finite cells with the column mean so PCA stays defined.
fn sanitize(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let d = out.cols();
    let mut sums = vec![0.0; d];
    let mut counts = vec![0usize; d];
    for r in 0..out.rows() {
        for (c, &x) in out.row(r).iter().enumerate() {
            if x.is_finite() {
                sums[c] += x;
                counts[c] += 1;
            }
        }
    }
    let means: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &n)| if n > 0 { s / n as f64 } else { 0.0 })
        .collect();
    for r in 0..out.rows() {
        for (c, x) in out.row_mut(r).iter_mut().enumerate() {
            if !x.is_finite() {
                *x = means[c];
            }
        }
    }
    out
}

impl Default for PcaCd {
    fn default() -> Self {
        PcaCd::new(2, 0.3)
    }
}

impl BatchDriftDetector for PcaCd {
    fn update(&mut self, window: &Matrix) -> DriftState {
        let Some((pca, ranges, ref_probs)) = self.fitted.as_ref() else {
            self.fit_reference(window);
            return DriftState::Stable;
        };
        let clean = sanitize(window);
        let proj = pca.transform(&clean);
        // Average per-component KL divergence against the reference.
        let mut div = 0.0;
        let k = proj.cols().max(1);
        for c in 0..proj.cols() {
            let col = proj.col(c);
            let (lo, hi) = ranges[c];
            let h = Histogram::new(&col, self.bins, lo, hi);
            div += kl_divergence(&ref_probs[c], &h.probabilities());
        }
        div /= k as f64;

        if self.ph.update(div) {
            // Refit on the new regime.
            self.fit_reference(window);
            DriftState::Drift
        } else {
            DriftState::Stable
        }
    }

    fn reset(&mut self) {
        self.fitted = None;
        self.ph.reset();
    }

    fn name(&self) -> &'static str {
        "PCA-CD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn window(rng: &mut StdRng, shift: f64, n: usize, d: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|j| rng.gen::<f64>() * (j + 1) as f64 + shift)
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn page_hinkley_detects_upward_shift() {
        let mut ph = PageHinkley::new(0.005, 1.0);
        for _ in 0..200 {
            assert!(!ph.update(0.1));
        }
        let mut fired = false;
        for _ in 0..200 {
            if ph.update(0.5) {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn page_hinkley_quiet_on_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ph = PageHinkley::new(0.01, 2.0);
        let mut fires = 0;
        for _ in 0..5000 {
            if ph.update(rng.gen::<f64>() * 0.1) {
                fires += 1;
            }
        }
        assert!(fires <= 1, "{fires} false alarms");
    }

    #[test]
    fn pcacd_quiet_then_fires_on_shift() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut det = PcaCd::default();
        let mut early_drifts = 0;
        for _ in 0..10 {
            if det.update(&window(&mut rng, 0.0, 300, 4)).is_drift() {
                early_drifts += 1;
            }
        }
        assert!(early_drifts <= 1, "{early_drifts} false drifts");
        let mut fired = false;
        for _ in 0..6 {
            if det.update(&window(&mut rng, 5.0, 300, 4)).is_drift() {
                fired = true;
                break;
            }
        }
        assert!(fired, "PCA-CD missed a large shift");
    }

    #[test]
    fn sanitize_fills_nan_with_column_means() {
        let m = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![3.0, 4.0]]);
        let s = sanitize(&m);
        assert!(s.is_finite());
        assert_eq!(s[(0, 1)], 4.0);
    }

    #[test]
    fn reset_refits_on_next_window() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut det = PcaCd::default();
        det.update(&window(&mut rng, 0.0, 100, 3));
        det.reset();
        assert!(det.fitted.is_none());
        det.update(&window(&mut rng, 0.0, 100, 3));
        assert!(det.fitted.is_some());
    }
}
