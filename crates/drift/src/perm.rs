//! PERM — concept drift detection through resampling, Harel et al.,
//! ICML 2014.
//!
//! The only detector in the paper's Table 8 applicable to *regression*
//! concept drift. Given a window of (x, y) pairs in temporal order, the
//! ordered split's test loss is compared against the distribution of
//! losses obtained from random permutations of the same window: if the
//! ordered loss is larger than almost every permuted loss, the concept
//! within the window has changed.
//!
//! The detector is generic over the learner through a closure that trains
//! on one slice of indices and returns the average loss on another, so it
//! works with any model and any loss.

use crate::state::DriftState;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`perm_test`].
#[derive(Debug, Clone, Copy)]
pub struct PermConfig {
    /// Number of random permutations (paper-style default 20).
    pub n_permutations: usize,
    /// Fraction of the window used for training (rest is test).
    pub train_frac: f64,
    /// Drift when the ordered loss exceeds this fraction of permuted
    /// losses (e.g. 0.95).
    pub significance: f64,
    /// RNG seed for the permutations.
    pub seed: u64,
}

impl Default for PermConfig {
    fn default() -> Self {
        PermConfig {
            n_permutations: 20,
            train_frac: 0.7,
            significance: 0.95,
            seed: 0x7065726d, // "perm"
        }
    }
}

/// Outcome of a PERM test.
#[derive(Debug, Clone)]
pub struct PermOutcome {
    /// Loss of the model trained on the ordered prefix, tested on the
    /// ordered suffix.
    pub ordered_loss: f64,
    /// Losses under each random permutation.
    pub permuted_losses: Vec<f64>,
    /// Fraction of permuted losses below the ordered loss.
    pub exceedance: f64,
    /// Resulting detector state.
    pub state: DriftState,
}

/// Runs the PERM test over a window of `n` items.
///
/// `train_eval(train_idx, test_idx)` must train a fresh model on the rows
/// at `train_idx` and return its mean loss on `test_idx`.
pub fn perm_test<F>(n: usize, config: &PermConfig, mut train_eval: F) -> PermOutcome
where
    F: FnMut(&[usize], &[usize]) -> f64,
{
    assert!(n >= 4, "PERM needs at least 4 items");
    let split = ((n as f64 * config.train_frac) as usize).clamp(1, n - 1);

    let ordered: Vec<usize> = (0..n).collect();
    let ordered_loss = train_eval(&ordered[..split], &ordered[split..]);

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut permuted_losses = Vec::with_capacity(config.n_permutations);
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..config.n_permutations {
        perm.shuffle(&mut rng);
        permuted_losses.push(train_eval(&perm[..split], &perm[split..]));
    }

    let below = permuted_losses
        .iter()
        .filter(|&&l| l < ordered_loss)
        .count();
    let exceedance = below as f64 / permuted_losses.len().max(1) as f64;
    let state = if exceedance >= config.significance {
        DriftState::Drift
    } else if exceedance >= config.significance * 0.85 {
        DriftState::Warning
    } else {
        DriftState::Stable
    };
    PermOutcome {
        ordered_loss,
        permuted_losses,
        exceedance,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_linalg::{ridge_regression, Matrix};

    /// Linear-model train/eval closure over synthetic (x, y) data.
    fn linear_train_eval<'a>(
        xs: &'a [f64],
        ys: &'a [f64],
    ) -> impl FnMut(&[usize], &[usize]) -> f64 + 'a {
        move |train, test| {
            let rows: Vec<Vec<f64>> = train.iter().map(|&i| vec![xs[i], 1.0]).collect();
            let targets: Vec<f64> = train.iter().map(|&i| ys[i]).collect();
            let w = ridge_regression(&Matrix::from_rows(&rows), &targets, 1e-6)
                .expect("regularised system is nonsingular");
            let mut loss = 0.0;
            for &i in test {
                let pred = w[0] * xs[i] + w[1];
                loss += (pred - ys[i]).powi(2);
            }
            loss / test.len().max(1) as f64
        }
    }

    #[test]
    fn no_drift_on_a_stable_concept() {
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let outcome = perm_test(n, &PermConfig::default(), linear_train_eval(&xs, &ys));
        assert_eq!(outcome.state, DriftState::Stable);
    }

    #[test]
    fn detects_concept_change_within_window() {
        // First 70% follows y = 2x, last 30% follows y = -2x + 40: a model
        // trained on the ordered prefix fails badly on the suffix, while
        // permuted splits mix both concepts into train and test.
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| if i < 140 { 2.0 * x } else { -2.0 * x + 40.0 })
            .collect();
        let outcome = perm_test(n, &PermConfig::default(), linear_train_eval(&xs, &ys));
        assert_eq!(outcome.state, DriftState::Drift);
        assert!(outcome.exceedance >= 0.95);
    }

    #[test]
    fn outcome_records_all_permutations() {
        let n = 50;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys = xs.clone();
        let cfg = PermConfig {
            n_permutations: 7,
            ..Default::default()
        };
        let outcome = perm_test(n, &cfg, linear_train_eval(&xs, &ys));
        assert_eq!(outcome.permuted_losses.len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 4 items")]
    fn tiny_window_panics() {
        let _ = perm_test(2, &PermConfig::default(), |_, _| 0.0);
    }
}
