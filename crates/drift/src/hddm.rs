//! HDDM-A — Frías-Blanco et al., TKDE 2015: drift detection via
//! Hoeffding's inequality on the difference between a cumulative average
//! and the minimum cumulative average seen so far. A 1-D streaming
//! data-drift detector (the paper's Table 8 lists HDDM as a 1-D numeric
//! data-drift method).

use crate::state::{ConceptDriftDetector, DriftState};

/// HDDM with the A-test (averages). Input values are expected in `[0, 1]`;
/// callers feeding raw data should normalise first (the statistics
/// pipeline squashes each column through a tanh before streaming it in).
#[derive(Debug, Clone)]
pub struct HddmA {
    /// Confidence for drift, e.g. 0.001.
    drift_confidence: f64,
    /// Confidence for warning, e.g. 0.005.
    warning_confidence: f64,
    n: usize,
    sum: f64,
    /// Cut point statistics: the minimum (mean + bound) prefix.
    n_min: usize,
    sum_min: f64,
    bound_min: f64,
}

impl HddmA {
    /// Creates a detector with the paper-standard confidences.
    pub fn new(drift_confidence: f64, warning_confidence: f64) -> HddmA {
        assert!(drift_confidence < warning_confidence);
        HddmA {
            drift_confidence,
            warning_confidence,
            n: 0,
            sum: 0.0,
            n_min: 0,
            sum_min: 0.0,
            bound_min: f64::INFINITY,
        }
    }

    fn hoeffding_bound(n: f64, confidence: f64) -> f64 {
        ((1.0 / (2.0 * n)) * (1.0 / confidence).ln()).sqrt()
    }
}

impl Default for HddmA {
    fn default() -> Self {
        HddmA::new(0.001, 0.005)
    }
}

impl ConceptDriftDetector for HddmA {
    fn update(&mut self, value: f64) -> DriftState {
        let value = value.clamp(0.0, 1.0);
        self.n += 1;
        self.sum += value;

        let n = self.n as f64;
        let mean = self.sum / n;
        let bound = Self::hoeffding_bound(n, self.drift_confidence);

        // Track the prefix with the smallest upper bound on its mean.
        if self.n_min == 0 || mean + bound < self.sum_min / self.n_min as f64 + self.bound_min {
            self.n_min = self.n;
            self.sum_min = self.sum;
            self.bound_min = bound;
        }

        if self.n_min == self.n || self.n - self.n_min < 5 {
            return DriftState::Stable;
        }

        // Compare the post-minimum segment mean against the prefix mean.
        let n_rest = (self.n - self.n_min) as f64;
        let mean_min = self.sum_min / self.n_min as f64;
        let mean_rest = (self.sum - self.sum_min) / n_rest;
        let m = 1.0 / (1.0 / self.n_min as f64 + 1.0 / n_rest);

        let eps_drift = ((1.0 / (2.0 * m)) * (1.0 / self.drift_confidence).ln()).sqrt();
        let eps_warn = ((1.0 / (2.0 * m)) * (1.0 / self.warning_confidence).ln()).sqrt();
        let diff = (mean_rest - mean_min).abs();

        if diff > eps_drift {
            let state = DriftState::Drift;
            self.reset();
            state
        } else if diff > eps_warn {
            DriftState::Warning
        } else {
            DriftState::Stable
        }
    }

    fn reset(&mut self) {
        *self = HddmA::new(self.drift_confidence, self.warning_confidence);
    }

    fn name(&self) -> &'static str {
        "HDDM-A"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quiet_on_stationary_bernoulli() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut det = HddmA::default();
        let mut drifts = 0;
        for _ in 0..5000 {
            let v = if rng.gen::<f64>() < 0.3 { 1.0 } else { 0.0 };
            if det.update(v).is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts <= 1, "{drifts} false drifts");
    }

    #[test]
    fn detects_mean_shift() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut det = HddmA::default();
        for _ in 0..2000 {
            let v = if rng.gen::<f64>() < 0.2 { 1.0 } else { 0.0 };
            det.update(v);
        }
        let mut fired = false;
        for _ in 0..2000 {
            let v = if rng.gen::<f64>() < 0.7 { 1.0 } else { 0.0 };
            if det.update(v).is_drift() {
                fired = true;
                break;
            }
        }
        assert!(fired, "HDDM-A missed a 0.2 -> 0.7 shift");
    }

    #[test]
    fn detects_continuous_mean_shift() {
        let mut det = HddmA::default();
        for i in 0..1000 {
            det.update(0.3 + 0.01 * ((i % 7) as f64 - 3.0) / 3.0);
        }
        let mut fired = false;
        for i in 0..1000 {
            if det
                .update(0.8 + 0.01 * ((i % 7) as f64 - 3.0) / 3.0)
                .is_drift()
            {
                fired = true;
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut det = HddmA::default();
        for _ in 0..100 {
            det.update(0.5);
        }
        det.reset();
        assert_eq!(det.n, 0);
    }
}
