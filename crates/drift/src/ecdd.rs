//! ECDD — EWMA charts for concept drift detection, Ross, Adams, Tasoulis
//! & Hand, Pattern Recognition Letters 2012.
//!
//! One of the 16 detectors surveyed in the paper's Table 8: an
//! exponentially-weighted moving average of the Bernoulli error stream
//! is compared against control limits derived from the estimated
//! pre-change error rate. Warning at `L_w` sigma, drift at `L_d` sigma.

use crate::state::{ConceptDriftDetector, DriftState};

/// ECDD detector over a 0/1 error stream.
#[derive(Debug, Clone)]
pub struct Ecdd {
    /// EWMA smoothing weight (the paper's recommended 0.2).
    pub lambda: f64,
    /// Drift control-limit multiplier.
    pub drift_l: f64,
    /// Warning control-limit multiplier (must be below `drift_l`).
    pub warning_l: f64,
    n: usize,
    /// Running estimate of the pre-change error rate p0.
    p_hat: f64,
    /// The EWMA statistic.
    z: f64,
    /// Minimum observations before the chart can signal.
    min_samples: usize,
}

impl Ecdd {
    /// Creates an ECDD chart with the given control limits.
    pub fn new(lambda: f64, drift_l: f64, warning_l: f64) -> Ecdd {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        assert!(warning_l < drift_l, "warning limit must precede drift");
        Ecdd {
            lambda,
            drift_l,
            warning_l,
            n: 0,
            p_hat: 0.0,
            z: 0.0,
            min_samples: 30,
        }
    }
}

impl Default for Ecdd {
    fn default() -> Self {
        // L values in the ballpark of the paper's ARL_0 = 400 tuning.
        Ecdd::new(0.2, 3.5, 3.0)
    }
}

impl ConceptDriftDetector for Ecdd {
    fn update(&mut self, error: f64) -> DriftState {
        let x = error.clamp(0.0, 1.0);
        self.n += 1;
        let n = self.n as f64;
        // Incremental estimate of p0 and the EWMA statistic.
        self.p_hat += (x - self.p_hat) / n;
        self.z = (1.0 - self.lambda) * self.z + self.lambda * x;

        if self.n < self.min_samples {
            return DriftState::Stable;
        }
        // Variance of the EWMA of Bernoulli(p0) observations at time t:
        // sigma_z^2 = p(1-p) * lambda/(2-lambda) * (1 - (1-lambda)^(2t)).
        let p = self.p_hat;
        let lam = self.lambda;
        let var = p * (1.0 - p) * (lam / (2.0 - lam)) * (1.0 - (1.0 - lam).powi(2 * self.n as i32));
        let sigma = var.max(0.0).sqrt();
        if sigma <= 0.0 {
            return DriftState::Stable;
        }
        if self.z > p + self.drift_l * sigma {
            let state = DriftState::Drift;
            self.reset();
            state
        } else if self.z > p + self.warning_l * sigma {
            DriftState::Warning
        } else {
            DriftState::Stable
        }
    }

    fn reset(&mut self) {
        *self = Ecdd::new(self.lambda, self.drift_l, self.warning_l);
    }

    fn name(&self) -> &'static str {
        "ECDD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bernoulli(rng: &mut StdRng, p: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| if rng.gen::<f64>() < p { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn quiet_on_constant_error_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = Ecdd::default();
        let mut drifts = 0;
        for e in bernoulli(&mut rng, 0.2, 5000) {
            if det.update(e).is_drift() {
                drifts += 1;
            }
        }
        // ARL_0-style tolerance: a few false alarms over 5000 items.
        assert!(drifts <= 3, "{drifts} false alarms");
    }

    #[test]
    fn fires_quickly_on_error_jump() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = Ecdd::default();
        for e in bernoulli(&mut rng, 0.1, 1000) {
            det.update(e);
        }
        let mut detected_at = None;
        for (i, e) in bernoulli(&mut rng, 0.6, 500).into_iter().enumerate() {
            if det.update(e).is_drift() {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("ECDD missed a 6x error jump");
        assert!(at < 100, "detection too slow: {at} items");
    }

    #[test]
    fn warning_zone_precedes_drift() {
        // A mild error-rate increase crosses the warning zone before the
        // drift limit (an abrupt 0 -> 1 flip can jump straight to drift).
        // The EWMA can hop the narrow warning band between two updates,
        // so the seed picks a stream where an update lands inside it.
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = Ecdd::default();
        for e in bernoulli(&mut rng, 0.05, 1000) {
            det.update(e);
        }
        let mut saw_warning = false;
        let mut saw_drift = false;
        for e in bernoulli(&mut rng, 0.35, 2000) {
            match det.update(e) {
                DriftState::Warning => saw_warning = true,
                DriftState::Drift => {
                    saw_drift = true;
                    break;
                }
                DriftState::Stable => {}
            }
        }
        assert!(saw_drift, "no drift on a 7x error increase");
        assert!(saw_warning, "no warning before drift");
    }

    #[test]
    fn reset_clears_the_chart() {
        let mut det = Ecdd::default();
        for _ in 0..100 {
            det.update(1.0);
        }
        det.reset();
        assert_eq!(det.n, 0);
        assert_eq!(det.z, 0.0);
    }

    #[test]
    #[should_panic(expected = "warning limit must precede drift")]
    fn bad_limits_panic() {
        let _ = Ecdd::new(0.2, 2.0, 3.0);
    }
}
