//! ADWIN (ADaptive WINdowing) — Bifet & Gavaldà, SDM 2007.
//!
//! Maintains a variable-length window over a real-valued stream and drops
//! the oldest items whenever two sub-windows exhibit statistically
//! distinct means. Used both as a 1-D data-drift detector and, fed with an
//! error stream, as the paper's "ADWIN accuracy" concept-drift detector.
//!
//! This implementation uses the standard exponential-histogram bucket
//! compression, so memory is `O(M log(n/M))` for window length `n`.

use crate::state::{ConceptDriftDetector, DriftState};

/// A bucket row: up to `max_buckets` buckets each summarising `2^row`
/// items by (sum, count-implicit).
#[derive(Debug, Clone, Default)]
struct BucketRow {
    /// Sums of each bucket in this row (all hold `2^row` items).
    sums: Vec<f64>,
    /// Sums of squares for variance tracking.
    sq_sums: Vec<f64>,
}

/// ADWIN detector over a real-valued stream.
#[derive(Debug, Clone)]
pub struct Adwin {
    /// Confidence parameter; smaller = more conservative. Default 0.002.
    delta: f64,
    /// Maximum buckets per exponential row before two merge.
    max_buckets: usize,
    rows: Vec<BucketRow>,
    /// Total items in the window.
    total: usize,
    /// Total sum over the window.
    sum: f64,
    /// Check for cuts only every `clock` items (standard optimisation).
    clock: usize,
    since_check: usize,
}

impl Adwin {
    /// Creates an ADWIN detector with confidence `delta` (typical 0.002).
    pub fn new(delta: f64) -> Adwin {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Adwin {
            delta,
            max_buckets: 5,
            rows: vec![BucketRow::default()],
            total: 0,
            sum: 0.0,
            clock: 8,
            since_check: 0,
        }
    }

    /// Current window length.
    pub fn window_len(&self) -> usize {
        self.total
    }

    /// Current window mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Inserts a value; returns `true` when the window was cut (drift).
    pub fn insert(&mut self, value: f64) -> bool {
        // New item enters row 0 as a singleton bucket.
        self.rows[0].sums.insert(0, value); // oeb-lint: allow(panic-in-library) -- row 0 exists from construction
        self.rows[0].sq_sums.insert(0, value * value); // oeb-lint: allow(panic-in-library) -- row 0 exists from construction
        self.total += 1;
        self.sum += value;
        self.compress();

        self.since_check += 1;
        if self.since_check < self.clock {
            return false;
        }
        self.since_check = 0;
        self.detect_cut()
    }

    /// Merges overflowing buckets upward (two `2^r` buckets -> one
    /// `2^{r+1}` bucket).
    fn compress(&mut self) {
        let mut row = 0;
        while row < self.rows.len() {
            if self.rows[row].sums.len() > self.max_buckets {
                if row + 1 == self.rows.len() {
                    self.rows.push(BucketRow::default());
                }
                // Merge the two oldest buckets of this row.
                let s1 = self.rows[row].sums.pop().expect("len > max_buckets"); // oeb-lint: allow(panic-in-library) -- pop guarded by the len check above
                let s2 = self.rows[row].sums.pop().expect("len > max_buckets"); // oeb-lint: allow(panic-in-library) -- pop guarded by the len check above
                let q1 = self.rows[row].sq_sums.pop().expect("len > max_buckets"); // oeb-lint: allow(panic-in-library) -- sq_sums moves in lockstep with sums
                let q2 = self.rows[row].sq_sums.pop().expect("len > max_buckets"); // oeb-lint: allow(panic-in-library) -- sq_sums moves in lockstep with sums
                self.rows[row + 1].sums.insert(0, s1 + s2);
                self.rows[row + 1].sq_sums.insert(0, q1 + q2);
                row += 1;
            } else {
                row += 1;
            }
        }
    }

    /// Scans cut points oldest-first; drops tail buckets while a
    /// statistically significant mean difference exists.
    fn detect_cut(&mut self) -> bool {
        if self.total < 10 {
            return false;
        }
        let mut cut_happened = false;
        loop {
            let mut found = false;
            // Walk buckets from oldest (deepest row, last position) to
            // newest, accumulating the "old" side.
            let mut n0 = 0f64;
            let mut s0 = 0f64;
            let total_n = self.total as f64;
            let total_s = self.sum;

            'outer: for row in (0..self.rows.len()).rev() {
                let size = (1usize << row) as f64;
                for b in (0..self.rows[row].sums.len()).rev() {
                    n0 += size;
                    s0 += self.rows[row].sums[b];
                    let n1 = total_n - n0;
                    if n1 < 1.0 || n0 < 1.0 {
                        continue;
                    }
                    let mu0 = s0 / n0;
                    let mu1 = (total_s - s0) / n1;
                    if self.cut_test(n0, n1, mu0, mu1) {
                        // Drop the oldest bucket and retry.
                        self.drop_oldest_bucket();
                        found = true;
                        cut_happened = true;
                        break 'outer;
                    }
                }
            }
            if !found {
                break;
            }
        }
        cut_happened
    }

    /// The ADWIN epsilon-cut condition with variance correction.
    fn cut_test(&self, n0: f64, n1: f64, mu0: f64, mu1: f64) -> bool {
        let n = self.total as f64;
        let variance = self.variance();
        let m = 1.0 / (1.0 / n0 + 1.0 / n1);
        let delta_prime = self.delta / n.ln().max(1.0);
        let eps = (2.0 / m * variance * (2.0 / delta_prime).ln()).sqrt()
            + 2.0 / (3.0 * m) * (2.0 / delta_prime).ln();
        (mu0 - mu1).abs() > eps
    }

    fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let sq_sum: f64 = self.rows.iter().flat_map(|r| &r.sq_sums).sum();
        (sq_sum / self.total as f64 - mean * mean).max(0.0)
    }

    fn drop_oldest_bucket(&mut self) {
        for row in (0..self.rows.len()).rev() {
            if let Some(s) = self.rows[row].sums.pop() {
                self.rows[row].sq_sums.pop();
                self.sum -= s;
                self.total -= 1usize << row;
                return;
            }
        }
    }
}

impl ConceptDriftDetector for Adwin {
    fn update(&mut self, error: f64) -> DriftState {
        if self.insert(error) {
            DriftState::Drift
        } else {
            DriftState::Stable
        }
    }

    fn reset(&mut self) {
        *self = Adwin::new(self.delta);
    }

    fn name(&self) -> &'static str {
        "ADWIN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_stream_keeps_growing_window() {
        let mut a = Adwin::new(0.002);
        let mut drifted = false;
        for i in 0..2000 {
            let v = if i % 2 == 0 { 0.4 } else { 0.6 };
            drifted |= a.insert(v);
        }
        assert!(!drifted, "false positive on a stable stream");
        assert!(a.window_len() > 1000);
        assert!((a.mean() - 0.5).abs() < 0.05);
    }

    #[test]
    fn abrupt_mean_shift_is_detected_and_window_shrinks() {
        let mut a = Adwin::new(0.002);
        for _ in 0..1000 {
            a.insert(0.1);
        }
        let mut detected = false;
        for _ in 0..400 {
            detected |= a.insert(0.9);
        }
        assert!(detected, "missed an abrupt shift");
        // Window should have dropped most of the old regime.
        assert!(a.window_len() < 800, "window = {}", a.window_len());
        assert!(a.mean() > 0.6);
    }

    #[test]
    fn small_shift_needs_more_data_than_large_shift() {
        let detect_after = |shift: f64| -> usize {
            let mut a = Adwin::new(0.002);
            for _ in 0..1000 {
                a.insert(0.3);
            }
            for i in 0..4000 {
                if a.insert(0.3 + shift) {
                    return i;
                }
            }
            4000
        };
        let big = detect_after(0.5);
        let small = detect_after(0.12);
        assert!(
            big < small,
            "large shift detected at {big}, small at {small}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut a = Adwin::new(0.002);
        for _ in 0..100 {
            a.insert(1.0);
        }
        a.reset();
        assert_eq!(a.window_len(), 0);
        assert_eq!(a.mean(), 0.0);
    }

    #[test]
    fn bucket_compression_bounds_memory() {
        let mut a = Adwin::new(0.002);
        for _ in 0..100_000 {
            a.insert(0.5);
        }
        let buckets: usize = a.rows.iter().map(|r| r.sums.len()).sum();
        assert!(buckets < 150, "buckets = {buckets}");
        assert_eq!(a.window_len(), 100_000);
    }
}
