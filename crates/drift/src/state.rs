//! Shared detector state types.

/// The tri-state output drift detectors report after each update,
/// matching the warning/drift levels that DDM-family detectors expose and
/// that the paper's statistics pipeline records ("drift and warning
/// percentages", §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftState {
    /// No evidence of drift.
    Stable,
    /// Early-warning zone: drift suspected but not confirmed.
    Warning,
    /// Drift confirmed.
    Drift,
}

impl DriftState {
    /// True for [`DriftState::Drift`].
    pub fn is_drift(&self) -> bool {
        matches!(self, DriftState::Drift)
    }

    /// True for [`DriftState::Warning`] or [`DriftState::Drift`].
    pub fn is_warning_or_worse(&self) -> bool {
        !matches!(self, DriftState::Stable)
    }
}

/// A streaming concept-drift detector fed with a per-item error signal
/// (0/1 misclassification indicator, or a bounded regression loss).
pub trait ConceptDriftDetector {
    /// Feeds one error observation; returns the detector state.
    fn update(&mut self, error: f64) -> DriftState;

    /// Clears all internal state.
    fn reset(&mut self);

    /// Detector name for reports.
    fn name(&self) -> &'static str;
}

/// A batch data-drift detector fed with successive windows of
/// (already encoded and imputed) feature matrices.
pub trait BatchDriftDetector {
    /// Feeds the next window; returns the detector state for this window.
    fn update(&mut self, window: &oeb_linalg::Matrix) -> DriftState;

    /// Clears all internal state.
    fn reset(&mut self);

    /// Detector name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_predicates() {
        assert!(DriftState::Drift.is_drift());
        assert!(!DriftState::Warning.is_drift());
        assert!(DriftState::Warning.is_warning_or_worse());
        assert!(DriftState::Drift.is_warning_or_worse());
        assert!(!DriftState::Stable.is_warning_or_worse());
    }
}
