//! HDDDM — Hellinger Distance Drift Detection Method, Ditzler & Polikar,
//! CIDUE 2011.
//!
//! A multi-dimensional batch detector: each incoming window is compared to
//! a growing baseline via the average per-feature Hellinger distance
//! between histograms. The change in distance between consecutive windows
//! is tested against an adaptive threshold (mean + gamma * std of the
//! historical changes). On drift the baseline resets to the new window.

use crate::state::{BatchDriftDetector, DriftState};
use oeb_linalg::{hellinger, Histogram, Matrix};

/// Histogram resolution used for the per-feature Hellinger distances
/// (shared with the delta variant in [`crate::delta`] so both sides bin
/// identically).
pub(crate) const BINS: usize = 16;

/// HDDDM detector.
#[derive(Debug, Clone)]
pub struct Hdddm {
    /// Threshold multiplier for drift (original paper: gamma in [0.5, 2]).
    pub gamma: f64,
    /// Threshold multiplier for the warning zone (must be < gamma).
    pub warn_gamma: f64,
    baseline: Option<Matrix>,
    prev_distance: Option<f64>,
    /// Historical |epsilon| changes since the last reset.
    diffs: Vec<f64>,
}

impl Hdddm {
    /// Creates an HDDDM detector with the given drift multiplier.
    pub fn new(gamma: f64) -> Hdddm {
        Hdddm {
            gamma,
            warn_gamma: gamma * 0.5,
            baseline: None,
            prev_distance: None,
            diffs: Vec::new(),
        }
    }

    /// Average per-feature Hellinger distance between two matrices.
    fn distance(a: &Matrix, b: &Matrix) -> f64 {
        let d = a.cols().min(b.cols());
        if d == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for c in 0..d {
            let ca = a.col(c);
            let cb = b.col(c);
            // Shared range so the histograms are comparable.
            let all: Vec<f64> = ca
                .iter()
                .chain(cb.iter())
                .copied()
                .filter(|x| x.is_finite())
                .collect();
            if all.is_empty() {
                continue;
            }
            let lo = all.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let hi = if hi > lo { hi } else { lo + 1.0 };
            let ha = Histogram::new(&ca, BINS, lo, hi);
            let hb = Histogram::new(&cb, BINS, lo, hi);
            total += hellinger(&ha.probabilities(), &hb.probabilities());
        }
        total / d as f64
    }

    fn append_baseline(&mut self, window: &Matrix) {
        match &mut self.baseline {
            None => self.baseline = Some(window.clone()),
            Some(base) => {
                let mut rows: Vec<Vec<f64>> =
                    (0..base.rows()).map(|r| base.row(r).to_vec()).collect();
                rows.extend((0..window.rows()).map(|r| window.row(r).to_vec()));
                *base = Matrix::from_rows(&rows);
            }
        }
    }
}

impl Default for Hdddm {
    fn default() -> Self {
        Hdddm::new(1.5)
    }
}

impl BatchDriftDetector for Hdddm {
    fn update(&mut self, window: &Matrix) -> DriftState {
        let Some(baseline) = &self.baseline else {
            self.baseline = Some(window.clone());
            return DriftState::Stable;
        };
        let dist = Self::distance(baseline, window);
        let state = match self.prev_distance {
            None => DriftState::Stable,
            Some(prev) => {
                let eps = (dist - prev).abs();
                if self.diffs.len() >= 2 {
                    let mean = oeb_linalg::mean(&self.diffs);
                    // Floor the deviation so a run of near-identical
                    // distances cannot make the threshold collapse.
                    let std = oeb_linalg::std_dev(&self.diffs).max(0.25 * mean + 1e-4);
                    if eps > mean + self.gamma * std {
                        DriftState::Drift
                    } else if eps > mean + self.warn_gamma * std {
                        DriftState::Warning
                    } else {
                        DriftState::Stable
                    }
                } else {
                    DriftState::Stable
                }
            }
        };
        if state.is_drift() {
            // Reset the baseline to the drifted window.
            self.baseline = Some(window.clone());
            self.prev_distance = None;
            self.diffs.clear();
        } else {
            if let Some(prev) = self.prev_distance {
                self.diffs.push((dist - prev).abs());
            }
            self.prev_distance = Some(dist);
            self.append_baseline(window);
        }
        state
    }

    fn reset(&mut self) {
        self.baseline = None;
        self.prev_distance = None;
        self.diffs.clear();
    }

    fn name(&self) -> &'static str {
        "HDDDM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn window(rng: &mut StdRng, shift: f64, n: usize, d: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen::<f64>() + shift).collect())
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn quiet_on_stationary_windows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = Hdddm::default();
        let mut drifts = 0;
        for _ in 0..25 {
            if det.update(&window(&mut rng, 0.0, 200, 4)).is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts <= 2, "{drifts} false drifts");
    }

    #[test]
    fn fires_on_abrupt_shift() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = Hdddm::default();
        for _ in 0..10 {
            det.update(&window(&mut rng, 0.0, 200, 4));
        }
        let mut fired = false;
        for _ in 0..3 {
            if det.update(&window(&mut rng, 3.0, 200, 4)).is_drift() {
                fired = true;
                break;
            }
        }
        assert!(fired, "HDDDM missed an abrupt shift");
    }

    #[test]
    fn baseline_resets_after_drift() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = Hdddm::default();
        for _ in 0..10 {
            det.update(&window(&mut rng, 0.0, 200, 4));
        }
        // Force the drift.
        while !det.update(&window(&mut rng, 3.0, 200, 4)).is_drift() {}
        // The new regime becomes the baseline: staying there is stable.
        let mut post_drifts = 0;
        for _ in 0..10 {
            if det.update(&window(&mut rng, 3.0, 200, 4)).is_drift() {
                post_drifts += 1;
            }
        }
        assert!(
            post_drifts <= 1,
            "{post_drifts} drifts after baseline reset"
        );
    }

    #[test]
    fn distance_is_zero_for_identical_windows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert!(Hdddm::distance(&m, &m) < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut det = Hdddm::default();
        det.update(&window(&mut rng, 0.0, 50, 2));
        det.reset();
        assert!(det.baseline.is_none());
    }
}
