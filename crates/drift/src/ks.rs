//! Kolmogorov–Smirnov batch drift detector.
//!
//! A 1-D two-sample KS test between the current window and a reference
//! window, with drift declared at `p < alpha` (the paper uses
//! `p = 0.05`). On drift the reference slides to the current window, so
//! the detector tracks regime changes rather than cumulative divergence.

use crate::state::DriftState;
use oeb_linalg::{ks_p_value, ks_statistic};

/// Per-column KS drift detector.
#[derive(Debug, Clone)]
pub struct KsDetector {
    /// Significance level for drift (paper default 0.05).
    pub alpha: f64,
    reference: Option<Vec<f64>>,
}

impl KsDetector {
    /// Creates a KS detector at significance `alpha`.
    pub fn new(alpha: f64) -> KsDetector {
        assert!(alpha > 0.0 && alpha < 1.0);
        KsDetector {
            alpha,
            reference: None,
        }
    }

    /// Feeds the next window of one column (non-finite values are
    /// ignored). The first window becomes the reference.
    pub fn update(&mut self, column: &[f64]) -> DriftState {
        let clean: Vec<f64> = column.iter().copied().filter(|x| x.is_finite()).collect();
        match &self.reference {
            None => {
                self.reference = Some(clean);
                DriftState::Stable
            }
            Some(reference) => {
                if reference.is_empty() || clean.is_empty() {
                    self.reference = Some(clean);
                    return DriftState::Stable;
                }
                let d = ks_statistic(reference, &clean);
                let p = ks_p_value(d, reference.len(), clean.len());
                if p < self.alpha {
                    self.reference = Some(clean);
                    DriftState::Drift
                } else {
                    DriftState::Stable
                }
            }
        }
    }

    /// Clears the reference.
    pub fn reset(&mut self) {
        self.reference = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform_window(rng: &mut StdRng, lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n).map(|_| lo + rng.gen::<f64>() * (hi - lo)).collect()
    }

    #[test]
    fn stable_on_identical_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = KsDetector::new(0.01);
        let mut drifts = 0;
        for _ in 0..30 {
            let w = uniform_window(&mut rng, 0.0, 1.0, 300);
            if det.update(&w).is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts <= 1, "{drifts} false drifts");
    }

    #[test]
    fn detects_shifted_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = KsDetector::new(0.05);
        det.update(&uniform_window(&mut rng, 0.0, 1.0, 500));
        let state = det.update(&uniform_window(&mut rng, 0.5, 1.5, 500));
        assert!(state.is_drift());
    }

    #[test]
    fn reference_slides_after_drift() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = KsDetector::new(0.05);
        det.update(&uniform_window(&mut rng, 0.0, 1.0, 500));
        assert!(det
            .update(&uniform_window(&mut rng, 2.0, 3.0, 500))
            .is_drift());
        // The new regime is now the reference: no further drift.
        assert!(!det
            .update(&uniform_window(&mut rng, 2.0, 3.0, 500))
            .is_drift());
    }

    #[test]
    fn nan_values_are_ignored() {
        let mut det = KsDetector::new(0.05);
        let mut w: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        w[10] = f64::NAN;
        det.update(&w);
        let w2: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        assert!(!det.update(&w2).is_drift());
    }

    #[test]
    fn empty_windows_are_tolerated() {
        let mut det = KsDetector::new(0.05);
        assert_eq!(det.update(&[]), DriftState::Stable);
        assert_eq!(det.update(&[1.0, 2.0]), DriftState::Stable);
    }
}
