//! CDBD — Confidence Distribution Batch Detection, Lindstrom, Mac Namee &
//! Delany, Evolving Systems 2013.
//!
//! A 1-D batch detector originally applied to classifier confidence
//! scores: the KL divergence between each incoming batch's score
//! distribution and the reference batch is compared to an adaptive
//! threshold (mean + k * std of past divergences).

use crate::state::DriftState;
use oeb_linalg::{kl_divergence, Histogram};

/// CDBD detector over a stream of 1-D batches.
#[derive(Debug, Clone)]
pub struct Cdbd {
    /// Threshold multiplier (drift at mean + k*std of past divergences).
    pub k: f64,
    bins: usize,
    reference: Option<Vec<f64>>,
    divergences: Vec<f64>,
}

impl Cdbd {
    /// Creates a CDBD detector with threshold multiplier `k`.
    pub fn new(k: f64) -> Cdbd {
        Cdbd {
            k,
            bins: 16,
            reference: None,
            divergences: Vec::new(),
        }
    }
}

impl Default for Cdbd {
    fn default() -> Self {
        Cdbd::new(2.0)
    }
}

impl Cdbd {
    /// Feeds the next batch of one column; the first batch becomes the
    /// reference.
    pub fn update(&mut self, batch: &[f64]) -> DriftState {
        let clean: Vec<f64> = batch.iter().copied().filter(|x| x.is_finite()).collect();
        let Some(reference) = &self.reference else {
            self.reference = Some(clean);
            return DriftState::Stable;
        };
        if reference.is_empty() || clean.is_empty() {
            return DriftState::Stable;
        }
        // Histograms over the combined range.
        let lo = reference
            .iter()
            .chain(clean.iter())
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi = reference
            .iter()
            .chain(clean.iter())
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let h_ref = Histogram::new(reference, self.bins, lo, hi);
        let h_new = Histogram::new(&clean, self.bins, lo, hi);
        let div = kl_divergence(&h_ref.probabilities(), &h_new.probabilities());

        let state = if self.divergences.len() >= 2 {
            let mean = oeb_linalg::mean(&self.divergences);
            // Floor the deviation so near-identical history does not make
            // the detector hypersensitive to sampling noise.
            let std = oeb_linalg::std_dev(&self.divergences).max(0.25 * mean + 1e-3);
            if div > mean + self.k * std {
                DriftState::Drift
            } else if div > mean + 0.5 * self.k * std {
                DriftState::Warning
            } else {
                DriftState::Stable
            }
        } else {
            DriftState::Stable
        };

        if state.is_drift() {
            // Reset: the drifted batch becomes the new reference.
            self.reference = Some(clean);
            self.divergences.clear();
        } else {
            self.divergences.push(div);
        }
        state
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.reference = None;
        self.divergences.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn batch(rng: &mut StdRng, shift: f64, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen::<f64>() + shift).collect()
    }

    #[test]
    fn quiet_on_stationary_batches() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut det = Cdbd::default();
        let mut drifts = 0;
        for _ in 0..25 {
            if det.update(&batch(&mut rng, 0.0, 300)).is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts <= 2, "{drifts} false drifts");
    }

    #[test]
    fn fires_on_shifted_batch() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = Cdbd::default();
        for _ in 0..8 {
            det.update(&batch(&mut rng, 0.0, 300));
        }
        let mut fired = false;
        for _ in 0..3 {
            if det.update(&batch(&mut rng, 2.0, 300)).is_drift() {
                fired = true;
                break;
            }
        }
        assert!(fired, "CDBD missed a large shift");
    }

    #[test]
    fn resets_reference_after_drift() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = Cdbd::default();
        for _ in 0..8 {
            det.update(&batch(&mut rng, 0.0, 300));
        }
        while !det.update(&batch(&mut rng, 2.0, 300)).is_drift() {}
        let mut post = 0;
        for _ in 0..10 {
            if det.update(&batch(&mut rng, 2.0, 300)).is_drift() {
                post += 1;
            }
        }
        assert!(post <= 1, "{post} drifts after reset");
    }

    #[test]
    fn tolerates_empty_and_nan_batches() {
        let mut det = Cdbd::default();
        assert_eq!(det.update(&[]), DriftState::Stable);
        assert_eq!(det.update(&[f64::NAN, 1.0]), DriftState::Stable);
        assert_eq!(det.update(&[1.0, 2.0]), DriftState::Stable);
    }
}
