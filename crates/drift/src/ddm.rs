//! DDM (Drift Detection Method) — Gama et al., SBIA 2004 — and
//! EDDM (Early Drift Detection Method) — Baena-García et al., 2006.
//!
//! Both monitor a model's error stream via statistical process control:
//! DDM tracks the error rate's mean + deviation against its historical
//! minimum; EDDM tracks the *distance between consecutive errors*, making
//! it more sensitive to gradual drifts.

use crate::state::{ConceptDriftDetector, DriftState};

/// DDM: drift when `p + s > p_min + 3 s_min`, warning at `2 s_min`.
#[derive(Debug, Clone)]
pub struct Ddm {
    n: usize,
    p: f64,
    p_min: f64,
    s_min: f64,
    /// Minimum observations before the detector may fire.
    min_samples: usize,
}

impl Default for Ddm {
    fn default() -> Self {
        Ddm::new()
    }
}

impl Ddm {
    /// Creates a DDM detector with the standard 30-sample warm-up.
    pub fn new() -> Ddm {
        Ddm {
            n: 0,
            p: 1.0,
            p_min: f64::INFINITY,
            s_min: f64::INFINITY,
            min_samples: 30,
        }
    }
}

impl ConceptDriftDetector for Ddm {
    fn update(&mut self, error: f64) -> DriftState {
        let error = error.clamp(0.0, 1.0);
        self.n += 1;
        // Incremental mean of the (possibly fractional) error indicator.
        self.p += (error - self.p) / self.n as f64;
        let s = (self.p * (1.0 - self.p) / self.n as f64).max(0.0).sqrt();

        if self.n < self.min_samples {
            return DriftState::Stable;
        }
        if self.p + s < self.p_min + self.s_min {
            self.p_min = self.p;
            self.s_min = s;
        }
        let level = self.p + s;
        if level > self.p_min + 3.0 * self.s_min {
            let state = DriftState::Drift;
            self.reset();
            state
        } else if level > self.p_min + 2.0 * self.s_min {
            DriftState::Warning
        } else {
            DriftState::Stable
        }
    }

    fn reset(&mut self) {
        *self = Ddm::new();
    }

    fn name(&self) -> &'static str {
        "DDM"
    }
}

/// EDDM: monitors the mean distance between consecutive errors. Drift when
/// `(p' + 2 s') / (p'_max + 2 s'_max) < 0.90`, warning below `0.95`.
#[derive(Debug, Clone)]
pub struct Eddm {
    n_items: usize,
    n_errors: usize,
    last_error_at: Option<usize>,
    /// Running mean of inter-error distance.
    mean_dist: f64,
    /// Running second moment for the distance.
    var_acc: f64,
    max_level: f64,
    /// Errors required before the detector may fire (standard: 30).
    min_errors: usize,
}

impl Default for Eddm {
    fn default() -> Self {
        Eddm::new()
    }
}

impl Eddm {
    /// Creates an EDDM detector with the standard thresholds.
    pub fn new() -> Eddm {
        Eddm {
            n_items: 0,
            n_errors: 0,
            last_error_at: None,
            mean_dist: 0.0,
            var_acc: 0.0,
            max_level: 0.0,
            min_errors: 30,
        }
    }
}

impl ConceptDriftDetector for Eddm {
    fn update(&mut self, error: f64) -> DriftState {
        self.n_items += 1;
        if error < 0.5 {
            return DriftState::Stable;
        }
        // An error occurred: update the inter-error distance statistics
        // (Welford).
        if let Some(prev) = self.last_error_at {
            let dist = (self.n_items - prev) as f64;
            self.n_errors += 1;
            let delta = dist - self.mean_dist;
            self.mean_dist += delta / self.n_errors as f64;
            self.var_acc += delta * (dist - self.mean_dist);
        }
        self.last_error_at = Some(self.n_items);

        if self.n_errors < self.min_errors {
            return DriftState::Stable;
        }
        let std = (self.var_acc / self.n_errors as f64).max(0.0).sqrt();
        let level = self.mean_dist + 2.0 * std;
        if level > self.max_level {
            self.max_level = level;
            return DriftState::Stable;
        }
        let ratio = level / self.max_level;
        if ratio < 0.90 {
            let state = DriftState::Drift;
            self.reset();
            state
        } else if ratio < 0.95 {
            DriftState::Warning
        } else {
            DriftState::Stable
        }
    }

    fn reset(&mut self) {
        *self = Eddm::new();
    }

    fn name(&self) -> &'static str {
        "EDDM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn error_stream(rng: &mut StdRng, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| if rng.gen::<f64>() < rate { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn ddm_quiet_on_constant_error_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ddm = Ddm::new();
        let mut drifts = 0;
        for e in error_stream(&mut rng, 0.2, 5000) {
            if ddm.update(e).is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts <= 1, "{drifts} false drifts");
    }

    #[test]
    fn ddm_fires_on_error_rate_jump() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ddm = Ddm::new();
        // DDM can fire spuriously very early (p_min ~ 0 right after the
        // warm-up); tolerate at most one such event on the stable stream.
        let mut stable_drifts = 0;
        for e in error_stream(&mut rng, 0.1, 1000) {
            if ddm.update(e).is_drift() {
                stable_drifts += 1;
            }
        }
        assert!(stable_drifts <= 1, "{stable_drifts} drifts while stable");
        let mut fired = false;
        for e in error_stream(&mut rng, 0.6, 500) {
            if ddm.update(e).is_drift() {
                fired = true;
                break;
            }
        }
        assert!(fired, "DDM missed a 6x error-rate jump");
    }

    #[test]
    fn ddm_warning_precedes_drift() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ddm = Ddm::new();
        for e in error_stream(&mut rng, 0.1, 1000) {
            ddm.update(e);
        }
        let mut saw_warning_before_drift = false;
        let mut warned = false;
        for e in error_stream(&mut rng, 0.5, 1000) {
            match ddm.update(e) {
                DriftState::Warning => warned = true,
                DriftState::Drift => {
                    saw_warning_before_drift = warned;
                    break;
                }
                DriftState::Stable => {}
            }
        }
        assert!(saw_warning_before_drift);
    }

    #[test]
    fn eddm_fires_when_errors_cluster() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut eddm = Eddm::new();
        // Sparse errors first (large inter-error distances).
        for e in error_stream(&mut rng, 0.05, 3000) {
            eddm.update(e);
        }
        // Then dense errors (distances collapse).
        let mut fired = false;
        for e in error_stream(&mut rng, 0.7, 1500) {
            if eddm.update(e).is_drift() {
                fired = true;
                break;
            }
        }
        assert!(fired, "EDDM missed clustering errors");
    }

    #[test]
    fn eddm_quiet_on_stationary_errors() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut eddm = Eddm::new();
        let mut drifts = 0;
        for e in error_stream(&mut rng, 0.3, 5000) {
            if eddm.update(e).is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts <= 1, "{drifts} false drifts");
    }

    #[test]
    fn detectors_reset_cleanly() {
        let mut ddm = Ddm::new();
        ddm.update(1.0);
        ddm.reset();
        assert_eq!(ddm.n, 0);
        let mut eddm = Eddm::new();
        eddm.update(1.0);
        eddm.reset();
        assert_eq!(eddm.n_items, 0);
    }
}
