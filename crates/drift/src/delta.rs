//! Delta (incremental) variants of the batch drift detectors.
//!
//! The batch detectors ([`KsDetector`](crate::KsDetector),
//! [`Cdbd`](crate::Cdbd), [`Hdddm`](crate::Hdddm)) re-sort, re-bin, or
//! re-concatenate their reference data on every window. The variants
//! here consume windows as maintained [`EcdfMultiset`]s — the caller
//! slides one multiset per column across the stream with
//! `O(changed · log u)` absorb/retract work — and derive the identical
//! decisions from the counts.
//!
//! ## Exactness contract
//!
//! Each delta detector emits a **bit-identical** [`DriftState`] sequence
//! to its batch counterpart fed the same windows (the equivalence tests
//! pin this on messy seeded streams):
//!
//! * KS: [`ks_between`] reproduces `ks_statistic` bit for bit, and the
//!   reference-sliding rules (first window, empty sides, `p < alpha`)
//!   are copied verbatim from [`KsDetector::update`](crate::KsDetector).
//! * CDBD: combined-range KL between 16-bin histograms; the multiset
//!   histogram matches `Histogram::new` bitwise, and the adaptive
//!   threshold (mean + k·std with the deviation floor) runs over the
//!   same divergence history.
//! * HDDDM: mean per-feature Hellinger distance against a growing
//!   baseline. The baseline lives as per-column multisets, so the
//!   append step is `O(support · log u)` instead of the batch path's
//!   full matrix rebuild — the asymptotic win of this module.

use crate::hdddm::BINS;
use crate::state::DriftState;
use oeb_linalg::{hellinger, kl_divergence, ks_between, ks_p_value, EcdfMultiset};

/// Per-column KS drift detector over maintained multisets.
///
/// Bit-identical decision sequence to [`crate::KsDetector`].
#[derive(Debug, Clone)]
pub struct KsDeltaDetector {
    /// Significance level for drift (paper default 0.05).
    pub alpha: f64,
    reference: Option<EcdfMultiset>,
}

impl KsDeltaDetector {
    /// Creates a KS delta detector at significance `alpha`.
    pub fn new(alpha: f64) -> KsDeltaDetector {
        assert!(alpha > 0.0 && alpha < 1.0);
        KsDeltaDetector {
            alpha,
            reference: None,
        }
    }

    /// Feeds the next window of one column as a multiset (non-finite
    /// values never enter a multiset, mirroring the batch `is_finite`
    /// filter). The first window becomes the reference.
    pub fn update(&mut self, window: &EcdfMultiset) -> DriftState {
        match &self.reference {
            None => {
                self.reference = Some(window.clone());
                DriftState::Stable
            }
            Some(reference) => {
                if reference.is_empty() || window.is_empty() {
                    self.reference = Some(window.clone());
                    return DriftState::Stable;
                }
                let d = ks_between(reference, window);
                let p = ks_p_value(d, reference.len(), window.len());
                if p < self.alpha {
                    self.reference = Some(window.clone());
                    DriftState::Drift
                } else {
                    DriftState::Stable
                }
            }
        }
    }

    /// Clears the reference.
    pub fn reset(&mut self) {
        self.reference = None;
    }
}

/// Shared-range bounds of two multisets — the
/// `fold(f64::INFINITY, f64::min)` / max chain of the batch detectors
/// collapsed onto the maintained min/max. Returns `None` when both
/// sides are empty.
fn combined_range(a: &EcdfMultiset, b: &EcdfMultiset) -> Option<(f64, f64)> {
    let lo = match (a.min(), b.min()) {
        (Some(x), Some(y)) => x.min(y),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => return None,
    };
    let hi = match (a.max(), b.max()) {
        (Some(x), Some(y)) => x.max(y),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => return None,
    };
    Some((lo, hi))
}

/// CDBD over maintained multisets — bit-identical decision sequence to
/// [`crate::Cdbd`].
#[derive(Debug, Clone)]
pub struct CdbdDelta {
    /// Threshold multiplier (drift at mean + k*std of past divergences).
    pub k: f64,
    bins: usize,
    reference: Option<EcdfMultiset>,
    divergences: Vec<f64>,
}

impl CdbdDelta {
    /// Creates a CDBD delta detector with threshold multiplier `k`.
    pub fn new(k: f64) -> CdbdDelta {
        CdbdDelta {
            k,
            bins: 16,
            reference: None,
            divergences: Vec::new(),
        }
    }

    /// Feeds the next batch of one column as a multiset; the first batch
    /// becomes the reference.
    pub fn update(&mut self, batch: &EcdfMultiset) -> DriftState {
        let Some(reference) = &self.reference else {
            self.reference = Some(batch.clone());
            return DriftState::Stable;
        };
        if reference.is_empty() || batch.is_empty() {
            // Batch semantics: an empty side is skipped without touching
            // the reference or the divergence history.
            return DriftState::Stable;
        }
        let Some((lo, hi)) = combined_range(reference, batch) else {
            return DriftState::Stable;
        };
        let hi = if hi > lo { hi } else { lo + 1.0 };
        let h_ref = reference.histogram(self.bins, lo, hi);
        let h_new = batch.histogram(self.bins, lo, hi);
        let div = kl_divergence(&h_ref.probabilities(), &h_new.probabilities());

        let state = if self.divergences.len() >= 2 {
            let mean = oeb_linalg::mean(&self.divergences);
            let std = oeb_linalg::std_dev(&self.divergences).max(0.25 * mean + 1e-3);
            if div > mean + self.k * std {
                DriftState::Drift
            } else if div > mean + 0.5 * self.k * std {
                DriftState::Warning
            } else {
                DriftState::Stable
            }
        } else {
            DriftState::Stable
        };

        if state.is_drift() {
            self.reference = Some(batch.clone());
            self.divergences.clear();
        } else {
            self.divergences.push(div);
        }
        state
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.reference = None;
        self.divergences.clear();
    }
}

impl Default for CdbdDelta {
    fn default() -> Self {
        CdbdDelta::new(2.0)
    }
}

/// HDDDM over per-column maintained multisets — bit-identical decision
/// sequence to [`crate::Hdddm`], with the baseline held as multisets so
/// appending a stable window costs `O(d · support · log u)` instead of
/// re-materialising the whole baseline matrix.
#[derive(Debug, Clone)]
pub struct HdddmDelta {
    /// Threshold multiplier for drift (original paper: gamma in [0.5, 2]).
    pub gamma: f64,
    /// Threshold multiplier for the warning zone (must be < gamma).
    pub warn_gamma: f64,
    baseline: Option<Vec<EcdfMultiset>>,
    prev_distance: Option<f64>,
    diffs: Vec<f64>,
}

impl HdddmDelta {
    /// Creates an HDDDM delta detector with the given drift multiplier.
    pub fn new(gamma: f64) -> HdddmDelta {
        HdddmDelta {
            gamma,
            warn_gamma: gamma * 0.5,
            baseline: None,
            prev_distance: None,
            diffs: Vec::new(),
        }
    }

    /// Average per-feature Hellinger distance between two column sets.
    fn distance(a: &[EcdfMultiset], b: &[EcdfMultiset]) -> f64 {
        let d = a.len().min(b.len());
        if d == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for c in 0..d {
            let Some((lo, hi)) = combined_range(&a[c], &b[c]) else {
                continue;
            };
            let hi = if hi > lo { hi } else { lo + 1.0 };
            let ha = a[c].histogram(BINS, lo, hi);
            let hb = b[c].histogram(BINS, lo, hi);
            total += hellinger(&ha.probabilities(), &hb.probabilities());
        }
        total / d as f64
    }

    /// Feeds the next window as one multiset per column.
    pub fn update(&mut self, window: &[EcdfMultiset]) -> DriftState {
        let Some(baseline) = &self.baseline else {
            self.baseline = Some(window.to_vec());
            return DriftState::Stable;
        };
        let dist = Self::distance(baseline, window);
        let state = match self.prev_distance {
            None => DriftState::Stable,
            Some(prev) => {
                let eps = (dist - prev).abs();
                if self.diffs.len() >= 2 {
                    let mean = oeb_linalg::mean(&self.diffs);
                    let std = oeb_linalg::std_dev(&self.diffs).max(0.25 * mean + 1e-4);
                    if eps > mean + self.gamma * std {
                        DriftState::Drift
                    } else if eps > mean + self.warn_gamma * std {
                        DriftState::Warning
                    } else {
                        DriftState::Stable
                    }
                } else {
                    DriftState::Stable
                }
            }
        };
        if state.is_drift() {
            self.baseline = Some(window.to_vec());
            self.prev_distance = None;
            self.diffs.clear();
        } else {
            if let Some(prev) = self.prev_distance {
                self.diffs.push((dist - prev).abs());
            }
            self.prev_distance = Some(dist);
            if let Some(base) = &mut self.baseline {
                for (bc, wc) in base.iter_mut().zip(window) {
                    bc.absorb_all(wc);
                }
            }
        }
        state
    }

    /// Clears all state.
    pub fn reset(&mut self) {
        self.baseline = None;
        self.prev_distance = None;
        self.diffs.clear();
    }
}

impl Default for HdddmDelta {
    fn default() -> Self {
        HdddmDelta::new(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::BatchDriftDetector;
    use crate::{Cdbd, Hdddm, KsDetector};
    use oeb_linalg::{EcdfUniverse, Matrix};
    use std::sync::Arc;

    /// Deterministic LCG stream with NaN/inf/±0.0 pollution and a mean
    /// shift per regime block.
    fn messy_stream(n: usize, shift: f64, seed: &mut u64) -> Vec<f64> {
        (0..n)
            .map(|k| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match *seed % 17 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => -0.0,
                    3 => (k % 3) as f64 + shift,
                    _ => ((*seed >> 11) as f64 / (1u64 << 53) as f64) + shift,
                }
            })
            .collect()
    }

    fn shifting_windows(n_windows: usize, rows: usize, seed: &mut u64) -> Vec<Vec<f64>> {
        (0..n_windows)
            .map(|w| {
                // Regime shifts at windows 7 and 14.
                let shift = match w {
                    0..=6 => 0.0,
                    7..=13 => 2.5,
                    _ => -1.5,
                };
                messy_stream(rows, shift, seed)
            })
            .collect()
    }

    fn universe_of(windows: &[Vec<f64>]) -> Arc<EcdfUniverse> {
        Arc::new(EcdfUniverse::from_values(windows.iter().flatten().copied()))
    }

    fn multiset_of(universe: &Arc<EcdfUniverse>, xs: &[f64]) -> EcdfMultiset {
        let mut ms = EcdfMultiset::new(Arc::clone(universe));
        for &x in xs {
            ms.insert(x);
        }
        ms
    }

    #[test]
    fn ks_delta_matches_batch_state_sequence() {
        let mut seed = 41u64;
        let windows = shifting_windows(21, 120, &mut seed);
        let universe = universe_of(&windows);
        let mut batch = KsDetector::new(0.05);
        let mut delta = KsDeltaDetector::new(0.05);
        let mut drifts = 0;
        for w in &windows {
            let expect = batch.update(w);
            let got = delta.update(&multiset_of(&universe, w));
            assert_eq!(got, expect);
            if got.is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts >= 1, "stream never drifted; test is vacuous");
    }

    #[test]
    fn ks_delta_empty_window_slides_reference() {
        let universe = Arc::new(EcdfUniverse::from_values([1.0, 2.0, 3.0]));
        let mut batch = KsDetector::new(0.05);
        let mut delta = KsDeltaDetector::new(0.05);
        let empty: Vec<f64> = vec![f64::NAN];
        let full = vec![1.0, 2.0, 3.0];
        for w in [&empty, &full, &empty, &full] {
            assert_eq!(delta.update(&multiset_of(&universe, w)), batch.update(w));
        }
    }

    #[test]
    fn cdbd_delta_matches_batch_state_sequence() {
        let mut seed = 43u64;
        let windows = shifting_windows(21, 150, &mut seed);
        let universe = universe_of(&windows);
        let mut batch = Cdbd::default();
        let mut delta = CdbdDelta::default();
        let mut drifts = 0;
        for w in &windows {
            let expect = batch.update(w);
            let got = delta.update(&multiset_of(&universe, w));
            assert_eq!(got, expect);
            if got.is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts >= 1, "stream never drifted; test is vacuous");
    }

    #[test]
    fn cdbd_delta_keeps_reference_on_empty_batch() {
        let universe = Arc::new(EcdfUniverse::from_values([1.0, 2.0]));
        let mut batch = Cdbd::default();
        let mut delta = CdbdDelta::default();
        for w in [
            vec![1.0, 2.0],
            vec![f64::NAN],
            vec![2.0, 2.0],
            vec![1.0, 1.0],
        ] {
            assert_eq!(delta.update(&multiset_of(&universe, &w)), batch.update(&w));
        }
    }

    #[test]
    // Indexing by (column, window) keeps the transpose explicit.
    #[allow(clippy::needless_range_loop)]
    fn hdddm_delta_matches_batch_state_sequence() {
        let mut seed = 47u64;
        let d = 3;
        // One messy shifted stream per column, re-cut into windows.
        let per_col: Vec<Vec<Vec<f64>>> = (0..d)
            .map(|_| shifting_windows(21, 90, &mut seed))
            .collect();
        let universes: Vec<Arc<EcdfUniverse>> = per_col.iter().map(|w| universe_of(w)).collect();
        let mut batch = Hdddm::default();
        let mut delta = HdddmDelta::default();
        let mut drifts = 0;
        for w in 0..21 {
            let rows: Vec<Vec<f64>> = (0..90)
                .map(|r| (0..d).map(|c| per_col[c][w][r]).collect())
                .collect();
            let expect = batch.update(&Matrix::from_rows(&rows));
            let cols: Vec<EcdfMultiset> = (0..d)
                .map(|c| multiset_of(&universes[c], &per_col[c][w]))
                .collect();
            let got = delta.update(&cols);
            assert_eq!(got, expect, "window {w}");
            if got.is_drift() {
                drifts += 1;
            }
        }
        assert!(drifts >= 1, "stream never drifted; test is vacuous");
    }

    #[test]
    fn resets_clear_state() {
        let universe = Arc::new(EcdfUniverse::from_values([1.0, 2.0]));
        let ms = multiset_of(&universe, &[1.0, 2.0]);
        let mut ks = KsDeltaDetector::new(0.05);
        ks.update(&ms);
        ks.reset();
        assert!(ks.reference.is_none());
        let mut cdbd = CdbdDelta::default();
        cdbd.update(&ms);
        cdbd.reset();
        assert!(cdbd.reference.is_none());
        let mut hd = HdddmDelta::default();
        hd.update(std::slice::from_ref(&ms));
        hd.reset();
        assert!(hd.baseline.is_none());
    }
}
