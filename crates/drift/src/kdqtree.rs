//! kdq-tree drift detection — Dasu et al., Interface 2006.
//!
//! Builds a kdq-tree partition (a k-d tree with cyclic split dimensions
//! and midpoint splits, stopping at a minimum cell count) over a reference
//! window, then measures the KL divergence between the reference and the
//! current window's leaf-occupancy distributions. The drift threshold is
//! calibrated by bootstrap: resample pairs from the pooled data and take a
//! high quantile of the resulting divergences.

use crate::state::{BatchDriftDetector, DriftState};
use oeb_linalg::{kl_divergence, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One node of the kdq-tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Leaf id used to index occupancy vectors.
        id: usize,
    },
    Split {
        dim: usize,
        at: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// The fitted partition.
#[derive(Debug, Clone)]
struct KdqPartition {
    root: Node,
    n_leaves: usize,
}

impl KdqPartition {
    /// Builds the partition over `data` with cyclic dimension splits at
    /// bounding-box midpoints, stopping at `min_count` points or depth 12.
    fn build(data: &Matrix, min_count: usize) -> KdqPartition {
        let idx: Vec<usize> = (0..data.rows()).collect();
        let d = data.cols();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for r in 0..data.rows() {
            for (c, &x) in data.row(r).iter().enumerate() {
                if x.is_finite() {
                    lo[c] = lo[c].min(x);
                    hi[c] = hi[c].max(x);
                }
            }
        }
        let mut n_leaves = 0;
        let root = Self::split(data, &idx, 0, &lo, &hi, min_count, 12, &mut n_leaves);
        KdqPartition { root, n_leaves }
    }

    #[allow(clippy::too_many_arguments)]
    fn split(
        data: &Matrix,
        idx: &[usize],
        depth: usize,
        lo: &[f64],
        hi: &[f64],
        min_count: usize,
        max_depth: usize,
        n_leaves: &mut usize,
    ) -> Node {
        let d = data.cols();
        if idx.len() <= min_count || depth >= max_depth || d == 0 {
            let id = *n_leaves;
            *n_leaves += 1;
            return Node::Leaf { id };
        }
        let dim = depth % d;
        if !(hi[dim] - lo[dim]).is_finite() || hi[dim] - lo[dim] < 1e-12 {
            let id = *n_leaves;
            *n_leaves += 1;
            return Node::Leaf { id };
        }
        let at = (lo[dim] + hi[dim]) / 2.0;
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&r| data[(r, dim)].is_finite() && data[(r, dim)] <= at);
        if left_idx.is_empty() || right_idx.is_empty() {
            let id = *n_leaves;
            *n_leaves += 1;
            return Node::Leaf { id };
        }
        let mut hi_left = hi.to_vec();
        hi_left[dim] = at;
        let mut lo_right = lo.to_vec();
        lo_right[dim] = at;
        Node::Split {
            dim,
            at,
            left: Box::new(Self::split(
                data,
                &left_idx,
                depth + 1,
                lo,
                &hi_left,
                min_count,
                max_depth,
                n_leaves,
            )),
            right: Box::new(Self::split(
                data,
                &right_idx,
                depth + 1,
                &lo_right,
                hi,
                min_count,
                max_depth,
                n_leaves,
            )),
        }
    }

    /// Leaf id of a point.
    fn leaf_of(&self, row: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { id } => return *id,
                Node::Split {
                    dim,
                    at,
                    left,
                    right,
                } => {
                    node = if row[*dim].is_finite() && row[*dim] <= *at {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Leaf-occupancy counts for a matrix.
    fn occupancy(&self, data: &Matrix) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_leaves];
        for r in 0..data.rows() {
            counts[self.leaf_of(data.row(r))] += 1.0;
        }
        counts
    }
}

/// kdq-tree batch drift detector.
#[derive(Debug, Clone)]
pub struct KdqTreeDetector {
    /// Minimum points per leaf.
    pub min_leaf: usize,
    /// Bootstrap resamples used to calibrate the drift threshold.
    pub bootstrap: usize,
    /// Quantile of the bootstrap divergence distribution (e.g. 0.99).
    pub quantile: f64,
    seed: u64,
    reference: Option<Matrix>,
}

impl KdqTreeDetector {
    /// Creates a detector with the given leaf size and bootstrap settings.
    pub fn new(min_leaf: usize, bootstrap: usize, quantile: f64, seed: u64) -> KdqTreeDetector {
        KdqTreeDetector {
            min_leaf,
            bootstrap,
            quantile,
            seed,
            reference: None,
        }
    }
}

impl Default for KdqTreeDetector {
    fn default() -> Self {
        // 0x6b6471 = ASCII "kdq".
        KdqTreeDetector::new(32, 40, 0.99, 0x6b_64_71)
    }
}

impl BatchDriftDetector for KdqTreeDetector {
    fn update(&mut self, window: &Matrix) -> DriftState {
        let Some(reference) = self.reference.take() else {
            self.reference = Some(window.clone());
            return DriftState::Stable;
        };
        // Partition on the reference; measure KL(ref || window).
        let partition = KdqPartition::build(&reference, self.min_leaf);
        let p_ref = partition.occupancy(&reference);
        let p_new = partition.occupancy(window);
        let observed = kl_divergence(&p_ref, &p_new);

        // Bootstrap: pool both windows, resample two pseudo-windows of the
        // original sizes, and record their divergence.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pooled: Vec<Vec<f64>> = (0..reference.rows())
            .map(|r| reference.row(r).to_vec())
            .chain((0..window.rows()).map(|r| window.row(r).to_vec()))
            .collect();
        let n_ref = reference.rows();
        let n_new = window.rows();
        let mut divergences = Vec::with_capacity(self.bootstrap);
        for _ in 0..self.bootstrap {
            let a: Vec<Vec<f64>> = (0..n_ref)
                .map(|_| pooled[rng.gen_range(0..pooled.len())].clone())
                .collect();
            let b: Vec<Vec<f64>> = (0..n_new)
                .map(|_| pooled[rng.gen_range(0..pooled.len())].clone())
                .collect();
            let ma = Matrix::from_rows(&a);
            let mb = Matrix::from_rows(&b);
            divergences.push(kl_divergence(
                &partition.occupancy(&ma),
                &partition.occupancy(&mb),
            ));
        }
        let threshold = oeb_linalg::quantile(&divergences, self.quantile);
        let warn_threshold = oeb_linalg::quantile(&divergences, self.quantile * 0.95);

        let state = if observed > threshold {
            DriftState::Drift
        } else if observed > warn_threshold {
            DriftState::Warning
        } else {
            DriftState::Stable
        };
        // Slide the reference to the current window.
        self.reference = Some(window.clone());
        state
    }

    fn reset(&mut self) {
        self.reference = None;
    }

    fn name(&self) -> &'static str {
        "kdq-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_window(rng: &mut StdRng, mean: f64, n: usize, d: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        let u1: f64 = rng.gen::<f64>().max(1e-12);
                        let u2: f64 = rng.gen();
                        mean + (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                    })
                    .collect()
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn partition_occupancy_sums_to_row_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = gaussian_window(&mut rng, 0.0, 500, 3);
        let p = KdqPartition::build(&w, 32);
        let occ = p.occupancy(&w);
        assert!((occ.iter().sum::<f64>() - 500.0).abs() < 1e-9);
        assert!(p.n_leaves > 1);
    }

    #[test]
    fn quiet_on_same_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut det = KdqTreeDetector::new(32, 40, 0.99, 99);
        let mut drifts = 0;
        for _ in 0..12 {
            if det
                .update(&gaussian_window(&mut rng, 0.0, 400, 3))
                .is_drift()
            {
                drifts += 1;
            }
        }
        assert!(drifts <= 1, "{drifts} false drifts");
    }

    #[test]
    fn detects_mean_shift() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut det = KdqTreeDetector::new(32, 40, 0.99, 7);
        det.update(&gaussian_window(&mut rng, 0.0, 400, 3));
        let state = det.update(&gaussian_window(&mut rng, 2.5, 400, 3));
        assert!(state.is_drift());
    }

    #[test]
    fn constant_data_does_not_panic() {
        let mut det = KdqTreeDetector::default();
        let w = Matrix::from_rows(&vec![vec![1.0, 1.0]; 100]);
        det.update(&w);
        let s = det.update(&w);
        assert!(!s.is_drift());
    }
}
