//! # oeb-drift
//!
//! The drift-detector suite of the OEBench reproduction (§4.3 and
//! Appendix A.2 of the paper), implemented from the original papers:
//!
//! * **Data drift** (distribution of X): [`ks::KsDetector`] (1-D KS test),
//!   [`hdddm::Hdddm`] (multi-D Hellinger), [`kdqtree::KdqTreeDetector`]
//!   (multi-D KL over a kdq-tree partition), [`cdbd::Cdbd`] (1-D
//!   confidence-distribution divergence), [`pcacd::PcaCd`] (multi-D PCA +
//!   Page–Hinkley), [`adwin::Adwin`] (1-D streaming adaptive window),
//!   [`hddm::HddmA`] (1-D streaming Hoeffding bounds).
//! * **Concept drift** (the X→Y mapping): [`ddm::Ddm`], [`ddm::Eddm`],
//!   ADWIN on the accuracy stream (again [`adwin::Adwin`]), [`ecdd::Ecdd`]
//!   (EWMA charts), and
//!   [`perm::perm_test`] — the only one applicable to regression.

pub mod adwin;
pub mod cdbd;
pub mod ddm;
pub mod delta;
pub mod ecdd;
pub mod hdddm;
pub mod hddm;
pub mod kdqtree;
pub mod ks;
pub mod pcacd;
pub mod perm;
pub mod state;

pub use adwin::Adwin;
pub use cdbd::Cdbd;
pub use ddm::{Ddm, Eddm};
pub use delta::{CdbdDelta, HdddmDelta, KsDeltaDetector};
pub use ecdd::Ecdd;
pub use hdddm::Hdddm;
pub use hddm::HddmA;
pub use kdqtree::KdqTreeDetector;
pub use ks::KsDetector;
pub use pcacd::{PageHinkley, PcaCd};
pub use perm::{perm_test, PermConfig, PermOutcome};
pub use state::{BatchDriftDetector, ConceptDriftDetector, DriftState};
