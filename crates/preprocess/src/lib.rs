//! # oeb-preprocess
//!
//! The preprocessing stage of the OEBench pipeline (§4.3 of the paper):
//! one-hot encoding of categorical fields, first-window standardisation,
//! and the four missing-value imputers compared in §6.6 (KNN, regression,
//! mean, zero).

pub mod delta;
pub mod encode;
pub mod impute;
pub mod scale;

pub use delta::ScalerDelta;
pub use encode::OneHotEncoder;
pub use impute::{Imputer, KnnImputer, MeanImputer, RegressionImputer, ZeroImputer};
pub use scale::{StandardScaler, TargetScaler};
