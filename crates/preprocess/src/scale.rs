//! Feature scaling. The paper normalises every dataset dimension with the
//! mean and variance of the *first window only* (§6.1), simulating the
//! real-world constraint that only the statistics of the first few samples
//! are available at deployment time.

use oeb_linalg::Matrix;

/// Standard (z-score) scaler fitted on a reference matrix.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    /// Per-column means.
    pub means: Vec<f64>,
    /// Per-column standard deviations (zero-variance columns scale by 1).
    pub stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means/stds on the reference data, ignoring NaN cells.
    pub fn fit(reference: &Matrix) -> StandardScaler {
        let d = reference.cols();
        let mut means = vec![0.0; d];
        let mut counts = vec![0usize; d];
        for r in 0..reference.rows() {
            for (c, &x) in reference.row(r).iter().enumerate() {
                if x.is_finite() {
                    means[c] += x;
                    counts[c] += 1;
                }
            }
        }
        for c in 0..d {
            if counts[c] > 0 {
                means[c] /= counts[c] as f64;
            }
        }
        let mut vars = vec![0.0; d];
        for r in 0..reference.rows() {
            for (c, &x) in reference.row(r).iter().enumerate() {
                if x.is_finite() {
                    let dlt = x - means[c];
                    vars[c] += dlt * dlt;
                }
            }
        }
        let stds = vars
            .iter()
            .zip(&counts)
            .map(|(&v, &n)| {
                if n == 0 {
                    1.0
                } else {
                    let s = (v / n as f64).sqrt();
                    if s > 1e-12 {
                        s
                    } else {
                        1.0
                    }
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Scales a matrix in place: `(x - mean) / std` per column. NaN cells
    /// stay NaN.
    pub fn transform(&self, data: &mut Matrix) {
        assert_eq!(data.cols(), self.means.len(), "scaler dimension mismatch");
        for r in 0..data.rows() {
            for (c, x) in data.row_mut(r).iter_mut().enumerate() {
                if x.is_finite() {
                    *x = (*x - self.means[c]) / self.stds[c];
                }
            }
        }
    }

    /// Scales a single target value using column `c` statistics.
    pub fn transform_value(&self, c: usize, x: f64) -> f64 {
        if x.is_finite() {
            (x - self.means[c]) / self.stds[c]
        } else {
            x
        }
    }

    /// Inverse of [`StandardScaler::transform_value`].
    pub fn inverse_value(&self, c: usize, z: f64) -> f64 {
        z * self.stds[c] + self.means[c]
    }
}

/// A scalar z-score scaler for regression targets, fitted on the first
/// window's targets.
#[derive(Debug, Clone, Copy)]
pub struct TargetScaler {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation (1 when degenerate).
    pub std: f64,
}

impl TargetScaler {
    /// Fits on the finite values of `targets`.
    pub fn fit(targets: &[f64]) -> TargetScaler {
        let finite: Vec<f64> = targets.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            return TargetScaler {
                mean: 0.0,
                std: 1.0,
            };
        }
        let mean = oeb_linalg::mean(&finite);
        let std = oeb_linalg::std_dev(&finite);
        TargetScaler {
            mean,
            std: if std > 1e-12 { std } else { 1.0 },
        }
    }

    /// Scales one value.
    pub fn transform(&self, x: f64) -> f64 {
        (x - self.mean) / self.std
    }

    /// Inverse transform.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_zero_mean_unit_variance() {
        let data = Matrix::from_rows(&[vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]]);
        let scaler = StandardScaler::fit(&data);
        let mut scaled = data.clone();
        scaler.transform(&mut scaled);
        for m in scaled.col_means() {
            assert!(m.abs() < 1e-12);
        }
        for s in scaled.col_stds() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nan_aware_fit_and_transform() {
        let data = Matrix::from_rows(&[vec![1.0], vec![f64::NAN], vec![3.0]]);
        let scaler = StandardScaler::fit(&data);
        assert_eq!(scaler.means[0], 2.0);
        let mut scaled = data.clone();
        scaler.transform(&mut scaled);
        assert!(scaled[(1, 0)].is_nan());
        assert!(scaled[(0, 0)].is_finite());
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let data = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let scaler = StandardScaler::fit(&data);
        let mut scaled = data.clone();
        scaler.transform(&mut scaled);
        assert!(scaled.is_finite());
        assert_eq!(scaled[(0, 0)], 0.0);
    }

    #[test]
    fn value_roundtrip() {
        let data = Matrix::from_rows(&[vec![10.0], vec![20.0], vec![30.0]]);
        let scaler = StandardScaler::fit(&data);
        let z = scaler.transform_value(0, 25.0);
        assert!((scaler.inverse_value(0, z) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn target_scaler_roundtrip() {
        let t = TargetScaler::fit(&[5.0, 10.0, 15.0, f64::NAN]);
        assert_eq!(t.mean, 10.0);
        let z = t.transform(12.0);
        assert!((t.inverse(z) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_target_scaler_is_identity() {
        let t = TargetScaler::fit(&[]);
        assert_eq!(t.transform(3.0), 3.0);
    }
}
