//! One-hot encoding of tables into dense numeric matrices (§4.3 step 3 of
//! the paper: categorical features are one-hot encoded before any
//! statistics or learning).

use oeb_linalg::Matrix;
use oeb_tabular::{Column, FieldKind, Table};

/// A fitted one-hot encoder over a specific set of table columns.
///
/// Numeric fields pass through as one output column; categorical fields
/// expand to one column per dictionary label. A missing cell produces NaN
/// in every output column it maps to, so downstream imputers see it.
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    /// Source column indices in the table.
    source_cols: Vec<usize>,
    /// Output width of each source column.
    widths: Vec<usize>,
    /// Output column names, e.g. `temp` or `city=Beijing`.
    names: Vec<String>,
}

impl OneHotEncoder {
    /// Builds an encoder for the given columns of a table's schema.
    pub fn fit(table: &Table, cols: &[usize]) -> OneHotEncoder {
        let mut widths = Vec::with_capacity(cols.len());
        let mut names = Vec::new();
        for &c in cols {
            let field = table.schema().field(c);
            match &field.kind {
                FieldKind::Numeric => {
                    widths.push(1);
                    names.push(field.name.clone());
                }
                FieldKind::Categorical { labels } => {
                    widths.push(labels.len());
                    for l in labels {
                        names.push(format!("{}={}", field.name, l));
                    }
                }
            }
        }
        OneHotEncoder {
            source_cols: cols.to_vec(),
            widths,
            names,
        }
    }

    /// Total encoded width.
    pub fn width(&self) -> usize {
        self.widths.iter().sum()
    }

    /// Output column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Encodes the rows in `range` of `table` into an `len x width` matrix.
    ///
    /// # Panics
    /// Panics if the table does not match the schema the encoder was fitted
    /// on (column kind or categorical arity changes).
    pub fn encode(&self, table: &Table, range: std::ops::Range<usize>) -> Matrix {
        let n = range.len();
        let mut out = Matrix::zeros(n, self.width());
        for (out_r, r) in range.enumerate() {
            let row = out.row_mut(out_r);
            let mut offset = 0;
            for (slot, &c) in self.source_cols.iter().enumerate() {
                let w = self.widths[slot];
                match table.column(c) {
                    Column::Numeric(v) => {
                        assert_eq!(w, 1, "numeric column width changed since fit");
                        row[offset] = v[r];
                    }
                    Column::Categorical(v) => match v[r] {
                        None => {
                            for x in &mut row[offset..offset + w] {
                                *x = f64::NAN;
                            }
                        }
                        Some(idx) => {
                            assert!(
                                (idx as usize) < w,
                                "category index {idx} out of range for width {w}"
                            );
                            row[offset + idx as usize] = 1.0;
                        }
                    },
                }
                offset += w;
            }
        }
        out
    }

    /// Encodes the whole table.
    pub fn encode_all(&self, table: &Table) -> Matrix {
        self.encode(table, 0..table.n_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_tabular::{Field, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::numeric("x"),
            Field::categorical("c", &["a", "b", "z"]),
        ]);
        Table::new(
            schema,
            vec![
                Column::Numeric(vec![1.0, 2.0, f64::NAN]),
                Column::Categorical(vec![Some(1), None, Some(2)]),
            ],
        )
    }

    #[test]
    fn width_and_names() {
        let t = table();
        let enc = OneHotEncoder::fit(&t, &[0, 1]);
        assert_eq!(enc.width(), 4);
        assert_eq!(enc.names(), &["x", "c=a", "c=b", "c=z"]);
    }

    #[test]
    fn encodes_categories_as_indicators() {
        let t = table();
        let enc = OneHotEncoder::fit(&t, &[0, 1]);
        let m = enc.encode_all(&t);
        assert_eq!(m.row(0), &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.row(2)[3], 1.0);
    }

    #[test]
    fn missing_cells_become_nan() {
        let t = table();
        let enc = OneHotEncoder::fit(&t, &[0, 1]);
        let m = enc.encode_all(&t);
        // Missing numeric x at row 2.
        assert!(m.row(2)[0].is_nan());
        // Missing categorical c at row 1 -> NaN across its block.
        assert!(m.row(1)[1].is_nan() && m.row(1)[2].is_nan() && m.row(1)[3].is_nan());
    }

    #[test]
    fn subset_of_columns() {
        let t = table();
        let enc = OneHotEncoder::fit(&t, &[1]);
        assert_eq!(enc.width(), 3);
        let m = enc.encode(&t, 0..2);
        assert_eq!(m.shape(), (2, 3));
    }
}
