//! Missing-value imputers (§4.3 step 4 and §6.6 of the paper).
//!
//! The paper's pipeline defaults to a KNN imputer with `k = 2`; §6.6
//! additionally compares KNN at `k ∈ {2, 5, 10, 20}`, a regression imputer,
//! mean filling, and zero filling. All four are implemented behind one
//! trait so the Figure 14 experiment can sweep them uniformly.

use oeb_linalg::{ridge_regression, Matrix};

/// Fills NaN cells of `data`, using `reference` as the source of knowledge
/// (for the "oracle vs normal" distinction of Figure 5: oracle passes the
/// whole dataset as reference, normal passes only the data seen so far).
///
/// Contract: after `impute`, `data` contains no NaN, and every originally
/// observed cell is unchanged.
pub trait Imputer: Send + Sync {
    /// Fills missing cells of `data` in place.
    fn impute(&self, data: &mut Matrix, reference: &Matrix);

    /// Short identifier used in experiment reports.
    fn name(&self) -> String;
}

/// Fills missing cells with zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroImputer;

impl Imputer for ZeroImputer {
    fn impute(&self, data: &mut Matrix, _reference: &Matrix) {
        for x in data.as_mut_slice() {
            if !x.is_finite() {
                *x = 0.0;
            }
        }
    }

    fn name(&self) -> String {
        "zero".into()
    }
}

/// Fills missing cells with the column mean of the reference (falls back to
/// 0 when the reference column is entirely missing).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanImputer;

/// NaN-aware column means with 0.0 fallback for all-missing columns.
fn nan_col_means(m: &Matrix) -> Vec<f64> {
    let d = m.cols();
    let mut sums = vec![0.0; d];
    let mut counts = vec![0usize; d];
    for r in 0..m.rows() {
        for (c, &x) in m.row(r).iter().enumerate() {
            if x.is_finite() {
                sums[c] += x;
                counts[c] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &n)| if n > 0 { s / n as f64 } else { 0.0 })
        .collect()
}

impl Imputer for MeanImputer {
    fn impute(&self, data: &mut Matrix, reference: &Matrix) {
        let means = nan_col_means(reference);
        for r in 0..data.rows() {
            for (c, x) in data.row_mut(r).iter_mut().enumerate() {
                if !x.is_finite() {
                    *x = means[c];
                }
            }
        }
    }

    fn name(&self) -> String {
        "mean".into()
    }
}

/// K-nearest-neighbour imputer with NaN-aware Euclidean distances, matching
/// scikit-learn's `KNNImputer` semantics: distances are computed over the
/// co-observed coordinates and rescaled by the fraction observed; a missing
/// cell is filled with the mean of that column over the `k` nearest
/// reference rows that observe it.
#[derive(Debug, Clone, Copy)]
pub struct KnnImputer {
    /// Number of neighbours (the paper defaults to 2).
    pub k: usize,
}

impl Default for KnnImputer {
    fn default() -> Self {
        KnnImputer { k: 2 }
    }
}

/// NaN-aware squared distance: mean squared difference over co-observed
/// dimensions, scaled by the total dimension count. `None` when the rows
/// share no observed dimension.
fn nan_sq_dist(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    let mut seen = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            let d = x - y;
            sum += d * d;
            seen += 1;
        }
    }
    if seen == 0 {
        None
    } else {
        Some(sum * a.len() as f64 / seen as f64)
    }
}

impl Imputer for KnnImputer {
    fn impute(&self, data: &mut Matrix, reference: &Matrix) {
        // A zero k would silently impute nothing; treat it as k = 1
        // rather than panicking mid-stream (the harness additionally
        // rejects k = 0 at configuration time).
        let k = self.k.max(1);
        let fallback = nan_col_means(reference);
        let n_ref = reference.rows();
        for r in 0..data.rows() {
            let missing: Vec<usize> = data
                .row(r)
                .iter()
                .enumerate()
                .filter(|(_, x)| !x.is_finite())
                .map(|(c, _)| c)
                .collect();
            if missing.is_empty() {
                continue;
            }
            // Rank reference rows by NaN-aware distance to this row.
            let mut neighbours: Vec<(f64, usize)> = Vec::with_capacity(n_ref);
            for j in 0..n_ref {
                if let Some(d) = nan_sq_dist(data.row(r), reference.row(j)) {
                    neighbours.push((d, j));
                }
            }
            neighbours.sort_by(|a, b| a.0.total_cmp(&b.0));
            for &c in &missing {
                // Mean of column c over the k nearest rows observing it.
                let mut sum = 0.0;
                let mut count = 0usize;
                for &(_, j) in &neighbours {
                    let v = reference[(j, c)];
                    if v.is_finite() {
                        sum += v;
                        count += 1;
                        if count == k {
                            break;
                        }
                    }
                }
                data[(r, c)] = if count > 0 {
                    sum / count as f64
                } else {
                    fallback[c]
                };
            }
        }
    }

    fn name(&self) -> String {
        format!("knn(k={})", self.k)
    }
}

/// Regression imputer: for each incomplete column, fits a ridge regression
/// from the other columns (mean-filled) on the reference rows observing the
/// column, then predicts the missing cells. Falls back to the column mean
/// when too few training rows exist.
#[derive(Debug, Clone, Copy)]
pub struct RegressionImputer {
    /// Ridge regularisation strength.
    pub lambda: f64,
}

impl Default for RegressionImputer {
    fn default() -> Self {
        RegressionImputer { lambda: 1e-3 }
    }
}

impl Imputer for RegressionImputer {
    fn impute(&self, data: &mut Matrix, reference: &Matrix) {
        let d = data.cols();
        let means = nan_col_means(reference);

        // Mean-filled copy of the reference used as the predictor source.
        let mut filled_ref = reference.clone();
        MeanImputer.impute(&mut filled_ref, reference);

        for target in 0..d {
            let has_missing = (0..data.rows()).any(|r| !data[(r, target)].is_finite());
            if !has_missing {
                continue;
            }
            // Training rows: reference rows where the target is observed.
            let train_rows: Vec<usize> = (0..reference.rows())
                .filter(|&r| reference[(r, target)].is_finite())
                .collect();
            let predictors: Vec<usize> = (0..d).filter(|&c| c != target).collect();

            let weights = if train_rows.len() >= 3 && !predictors.is_empty() {
                // Design matrix with intercept column.
                let rows: Vec<Vec<f64>> = train_rows
                    .iter()
                    .map(|&r| {
                        let mut v: Vec<f64> =
                            predictors.iter().map(|&c| filled_ref[(r, c)]).collect();
                        v.push(1.0);
                        v
                    })
                    .collect();
                let y: Vec<f64> = train_rows.iter().map(|&r| reference[(r, target)]).collect();
                ridge_regression(&Matrix::from_rows(&rows), &y, self.lambda)
            } else {
                None
            };

            for r in 0..data.rows() {
                if data[(r, target)].is_finite() {
                    continue;
                }
                data[(r, target)] = match &weights {
                    Some(w) => {
                        let mut pred = w[predictors.len()]; // intercept
                        for (slot, &c) in predictors.iter().enumerate() {
                            let x = data[(r, c)];
                            let x = if x.is_finite() { x } else { means[c] };
                            pred += w[slot] * x;
                        }
                        if pred.is_finite() {
                            pred
                        } else {
                            means[target]
                        }
                    }
                    None => means[target],
                };
            }
        }
    }

    fn name(&self) -> String {
        "regression".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_holes() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, f64::NAN],
            vec![f64::NAN, 30.0],
            vec![4.0, 40.0],
        ])
    }

    fn assert_complete_and_preserving(imp: &dyn Imputer) {
        let original = with_holes();
        let mut data = original.clone();
        let reference = original.clone();
        imp.impute(&mut data, &reference);
        assert!(data.is_finite(), "{} left NaNs", imp.name());
        for r in 0..original.rows() {
            for c in 0..original.cols() {
                if original[(r, c)].is_finite() {
                    assert_eq!(
                        data[(r, c)],
                        original[(r, c)],
                        "{} modified observed cell",
                        imp.name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_imputers_complete_and_preserve() {
        assert_complete_and_preserving(&ZeroImputer);
        assert_complete_and_preserving(&MeanImputer);
        assert_complete_and_preserving(&KnnImputer { k: 2 });
        assert_complete_and_preserving(&RegressionImputer::default());
    }

    #[test]
    fn zero_fills_zero() {
        let mut data = with_holes();
        let r = data.clone();
        ZeroImputer.impute(&mut data, &r);
        assert_eq!(data[(1, 1)], 0.0);
    }

    #[test]
    fn mean_fills_reference_column_mean() {
        let mut data = with_holes();
        let r = data.clone();
        MeanImputer.impute(&mut data, &r);
        // Column 1 observed values: 10, 30, 40 -> mean 80/3.
        assert!((data[(1, 1)] - 80.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn knn_uses_nearest_rows() {
        // Reference: rows clustered at x=0 (y=0) and x=100 (y=100).
        let reference = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![100.0, 100.0],
            vec![101.0, 100.0],
        ]);
        let mut data = Matrix::from_rows(&[vec![0.5, f64::NAN], vec![100.5, f64::NAN]]);
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        assert_eq!(data[(0, 1)], 0.0);
        assert_eq!(data[(1, 1)], 100.0);
    }

    #[test]
    fn knn_falls_back_to_mean_when_neighbours_missing() {
        let reference = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![2.0, f64::NAN]]);
        let mut data = Matrix::from_rows(&[vec![1.5, f64::NAN]]);
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        // Column 1 never observed -> fallback 0.
        assert_eq!(data[(0, 1)], 0.0);
    }

    #[test]
    fn regression_imputer_learns_linear_structure() {
        // y = 2x exactly; hole in y should be predicted near 2 * x.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let reference = Matrix::from_rows(&rows);
        let mut data = Matrix::from_rows(&[vec![7.5, f64::NAN]]);
        RegressionImputer::default().impute(&mut data, &reference);
        assert!(
            (data[(0, 1)] - 15.0).abs() < 0.5,
            "predicted {}",
            data[(0, 1)]
        );
    }

    #[test]
    fn zero_k_does_not_panic() {
        // Regression: k = 0 used to assert; now it behaves as k = 1.
        let mut data = with_holes();
        let r = data.clone();
        KnnImputer { k: 0 }.impute(&mut data, &r);
        assert!(data.is_finite());
    }

    #[test]
    fn all_missing_column_falls_back_without_panic() {
        // Regression: a column that no row (data or reference) observes
        // must complete via the column-mean fallback (0.0), not panic.
        let reference = Matrix::from_rows(&[
            vec![1.0, f64::NAN, 5.0],
            vec![2.0, f64::NAN, 6.0],
            vec![3.0, f64::NAN, 7.0],
        ]);
        let mut data = Matrix::from_rows(&[vec![1.5, f64::NAN, f64::NAN]]);
        for imp in [
            &KnnImputer { k: 2 } as &dyn Imputer,
            &MeanImputer,
            &RegressionImputer::default(),
            &ZeroImputer,
        ] {
            let mut d = data.clone();
            imp.impute(&mut d, &reference);
            assert!(d.is_finite(), "{} left NaNs", imp.name());
            assert_eq!(d[(0, 1)], 0.0, "{} fallback is not 0", imp.name());
        }
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        assert!(
            (data[(0, 2)] - 5.5).abs() < 1e-9,
            "observed column not knn-filled"
        );
    }

    #[test]
    fn zero_variance_column_imputes_the_constant() {
        // Regression: constant (zero-variance) columns used to be a
        // divide-by-zero hazard downstream; the imputers themselves must
        // fill with the constant.
        let reference = Matrix::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0], vec![7.0, 3.0]]);
        let mut data = Matrix::from_rows(&[vec![f64::NAN, 2.5]]);
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        assert_eq!(data[(0, 0)], 7.0);
    }

    #[test]
    fn imputer_names_are_stable() {
        assert_eq!(KnnImputer { k: 5 }.name(), "knn(k=5)");
        assert_eq!(MeanImputer.name(), "mean");
        assert_eq!(ZeroImputer.name(), "zero");
        assert_eq!(RegressionImputer::default().name(), "regression");
    }
}
