//! Missing-value imputers (§4.3 step 4 and §6.6 of the paper).
//!
//! The paper's pipeline defaults to a KNN imputer with `k = 2`; §6.6
//! additionally compares KNN at `k ∈ {2, 5, 10, 20}`, a regression imputer,
//! mean filling, and zero filling. All four are implemented behind one
//! trait so the Figure 14 experiment can sweep them uniformly.

use oeb_linalg::{ridge_regression, Matrix};
use oeb_tabular::FiniteMask;
use oeb_trace::Counter;

// Candidate-abandonment accounting for the pruned KNN path: how many
// donor candidates were cut short by the partial-distance bound vs
// scanned to completion. Data-dependent only, so schedule-invariant.
static KNN_CANDIDATES_PRUNED: Counter = Counter::new("knn.candidates.pruned");
static KNN_CANDIDATES_SCANNED: Counter = Counter::new("knn.candidates.scanned");

/// Fills NaN cells of `data`, using `reference` as the source of knowledge
/// (for the "oracle vs normal" distinction of Figure 5: oracle passes the
/// whole dataset as reference, normal passes only the data seen so far).
///
/// Contract: after `impute`, `data` contains no NaN, and every originally
/// observed cell is unchanged.
pub trait Imputer: Send + Sync {
    /// Fills missing cells of `data` in place.
    fn impute(&self, data: &mut Matrix, reference: &Matrix);

    /// Short identifier used in experiment reports.
    fn name(&self) -> String;
}

/// Fills missing cells with zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroImputer;

impl Imputer for ZeroImputer {
    fn impute(&self, data: &mut Matrix, _reference: &Matrix) {
        for x in data.as_mut_slice() {
            if !x.is_finite() {
                *x = 0.0;
            }
        }
    }

    fn name(&self) -> String {
        "zero".into()
    }
}

/// Fills missing cells with the column mean of the reference (falls back to
/// 0 when the reference column is entirely missing).
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanImputer;

/// NaN-aware column means with 0.0 fallback for all-missing columns.
fn nan_col_means(m: &Matrix) -> Vec<f64> {
    let d = m.cols();
    let mut sums = vec![0.0; d];
    let mut counts = vec![0usize; d];
    for r in 0..m.rows() {
        for (c, &x) in m.row(r).iter().enumerate() {
            if x.is_finite() {
                sums[c] += x;
                counts[c] += 1;
            }
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &n)| if n > 0 { s / n as f64 } else { 0.0 })
        .collect()
}

impl Imputer for MeanImputer {
    fn impute(&self, data: &mut Matrix, reference: &Matrix) {
        let means = nan_col_means(reference);
        for r in 0..data.rows() {
            for (c, x) in data.row_mut(r).iter_mut().enumerate() {
                if !x.is_finite() {
                    *x = means[c];
                }
            }
        }
    }

    fn name(&self) -> String {
        "mean".into()
    }
}

/// K-nearest-neighbour imputer with NaN-aware Euclidean distances, matching
/// scikit-learn's `KNNImputer` semantics: distances are computed over the
/// co-observed coordinates and rescaled by the fraction observed; a missing
/// cell is filled with the mean of that column over the `k` nearest
/// reference rows that observe it.
#[derive(Debug, Clone, Copy)]
pub struct KnnImputer {
    /// Number of neighbours (the paper defaults to 2).
    pub k: usize,
}

impl Default for KnnImputer {
    fn default() -> Self {
        KnnImputer { k: 2 }
    }
}

/// NaN-aware squared distance: mean squared difference over co-observed
/// dimensions, scaled by the total dimension count. `None` when the rows
/// share no observed dimension.
fn nan_sq_dist(a: &[f64], b: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    let mut seen = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            let d = x - y;
            sum += d * d;
            seen += 1;
        }
    }
    if seen == 0 {
        None
    } else {
        Some(sum * a.len() as f64 / seen as f64)
    }
}

impl Imputer for KnnImputer {
    fn impute(&self, data: &mut Matrix, reference: &Matrix) {
        // A zero k would silently impute nothing; treat it as k = 1
        // rather than panicking mid-stream (the harness additionally
        // rejects k = 0 at configuration time).
        let k = self.k.max(1);
        if data.cols() == reference.cols() {
            knn_impute_pruned(k, data, reference);
        } else {
            // Mismatched widths only arise in adversarial tests; the
            // reference path reproduces the historical truncating-zip
            // semantics there.
            knn_impute_reference(k, data, reference);
        }
    }

    fn name(&self) -> String {
        format!("knn(k={})", self.k)
    }
}

/// The pre-kernel brute-force KNN imputation: rank *every* reference row by
/// NaN-aware distance, then per missing column take the first `k` ranked
/// rows observing it. Retained verbatim as the semantic reference — the
/// pruned path must match it bit for bit (asserted by tests and the kernel
/// benchmark).
pub fn knn_impute_reference(k: usize, data: &mut Matrix, reference: &Matrix) {
    let k = k.max(1);
    let fallback = nan_col_means(reference);
    let n_ref = reference.rows();
    for r in 0..data.rows() {
        let missing: Vec<usize> = data
            .row(r)
            .iter()
            .enumerate()
            .filter(|(_, x)| !x.is_finite())
            .map(|(c, _)| c)
            .collect();
        if missing.is_empty() {
            continue;
        }
        // Rank reference rows by NaN-aware distance to this row.
        let mut neighbours: Vec<(f64, usize)> = Vec::with_capacity(n_ref);
        for j in 0..n_ref {
            if let Some(d) = nan_sq_dist(data.row(r), reference.row(j)) {
                neighbours.push((d, j));
            }
        }
        neighbours.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &c in &missing {
            // Mean of column c over the k nearest rows observing it.
            let mut sum = 0.0;
            let mut count = 0usize;
            for &(_, j) in &neighbours {
                let v = reference[(j, c)];
                if v.is_finite() {
                    sum += v;
                    count += 1;
                    if count == k {
                        break;
                    }
                }
            }
            data[(r, c)] = if count > 0 {
                sum / count as f64
            } else {
                fallback[c]
            };
        }
    }
}

/// Pruned KNN imputation, bit-identical to [`knn_impute_reference`].
///
/// Instead of ranking every reference row, each missing column keeps a
/// bounded list of its `k` best donors ordered by `(distance, row)`. A
/// candidate row is abandoned mid-distance once its running lower bound
/// `partial_sum * d / co_observed` meets the *loosest* donor-list bound it
/// could still improve — valid because the partial sum is nondecreasing
/// and the exact co-observed count is known up front from the finiteness
/// bitmasks, so the running value only ever grows toward the final
/// distance.
///
/// Equivalence with the reference path rests on two invariants:
/// * the reference's stable sort orders ties by ascending row index, and
///   candidates arrive here in ascending row order, so a tie never
///   displaces an incumbent (`dist >= bound` rejects, strictly-better
///   inserts after all equal distances);
/// * rows observing no missing column are skipped outright — the
///   reference ranks them but never consumes them.
fn knn_impute_pruned(k: usize, data: &mut Matrix, reference: &Matrix) {
    let fallback = nan_col_means(reference);
    let n_ref = reference.rows();
    let d = data.cols();
    let dmask = FiniteMask::from_row_major(data.as_slice(), data.rows(), d);
    let rmask = FiniteMask::from_row_major(reference.as_slice(), n_ref, d);

    let mut missing: Vec<usize> = Vec::new();
    // One bounded donor list per missing column, pooled across rows.
    let mut lists: Vec<Vec<(f64, usize)>> = Vec::new();
    for r in 0..data.rows() {
        dmask.missing_in_row(r, &mut missing);
        if missing.is_empty() {
            continue;
        }
        while lists.len() < missing.len() {
            lists.push(Vec::with_capacity(k + 1));
        }
        for list in lists[..missing.len()].iter_mut() {
            list.clear();
        }
        let rw = dmask.row_words(r);
        let drow = data.row(r);
        for j in 0..n_ref {
            // tau: the loosest bound this candidate could still improve
            // (max over the missing columns it observes). Full lists
            // admit only strictly closer donors, so tau starts at 0.
            let mut relevant = false;
            let mut tau = 0.0f64;
            for (slot, &c) in missing.iter().enumerate() {
                if rmask.get(j, c) {
                    relevant = true;
                    let bound = if lists[slot].len() < k {
                        f64::INFINITY
                    } else {
                        lists[slot][k - 1].0
                    };
                    if bound > tau {
                        tau = bound;
                    }
                }
            }
            if !relevant {
                continue;
            }
            let jw = rmask.row_words(j);
            let seen: usize = rw
                .iter()
                .zip(jw)
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum();
            if seen == 0 {
                continue;
            }
            let scale = d as f64 / seen as f64;
            let jrow = reference.row(j);
            // Partial distance over co-observed columns (ascending, the
            // reference accumulation order), abandoning once the lower
            // bound reaches tau.
            let mut sum = 0.0;
            let mut abandoned = false;
            for (wi, (x, y)) in rw.iter().zip(jw).enumerate() {
                let mut wbits = x & y;
                if wbits == 0 {
                    continue;
                }
                while wbits != 0 {
                    let c = wi * 64 + wbits.trailing_zeros() as usize;
                    let diff = drow[c] - jrow[c];
                    sum += diff * diff;
                    wbits &= wbits - 1;
                }
                // An infinite tau admits any distance (even an overflowed
                // infinite one, which the reference path also keeps).
                if tau.is_finite() && sum * scale >= tau {
                    abandoned = true;
                    break;
                }
            }
            if abandoned {
                KNN_CANDIDATES_PRUNED.incr();
                continue;
            }
            KNN_CANDIDATES_SCANNED.incr();
            let dist = sum * scale;
            for (slot, &c) in missing.iter().enumerate() {
                if !rmask.get(j, c) {
                    continue;
                }
                let list = &mut lists[slot];
                if list.len() == k {
                    // Ties keep the earlier row (the stable sort's order):
                    // only a strictly closer donor displaces the k-th.
                    if dist >= list[k - 1].0 {
                        continue;
                    }
                    list.pop();
                }
                // Insert after all equal distances: this row index is the
                // largest seen so far, so (dist, j) sorts after ties.
                let pos = list.partition_point(|&(ld, _)| ld <= dist);
                list.insert(pos, (dist, j));
            }
        }
        for (slot, &c) in missing.iter().enumerate() {
            let list = &lists[slot];
            data[(r, c)] = if list.is_empty() {
                fallback[c]
            } else {
                // Donor means accumulate in ascending (distance, row)
                // order, exactly as the reference consumes its sort.
                let mut sum = 0.0;
                for &(_, j) in list {
                    sum += reference[(j, c)];
                }
                sum / list.len() as f64
            };
        }
    }
}

/// Regression imputer: for each incomplete column, fits a ridge regression
/// from the other columns (mean-filled) on the reference rows observing the
/// column, then predicts the missing cells. Falls back to the column mean
/// when too few training rows exist.
#[derive(Debug, Clone, Copy)]
pub struct RegressionImputer {
    /// Ridge regularisation strength.
    pub lambda: f64,
}

impl Default for RegressionImputer {
    fn default() -> Self {
        RegressionImputer { lambda: 1e-3 }
    }
}

impl Imputer for RegressionImputer {
    fn impute(&self, data: &mut Matrix, reference: &Matrix) {
        let d = data.cols();
        let means = nan_col_means(reference);

        // Mean-filled copy of the reference used as the predictor source.
        let mut filled_ref = reference.clone();
        MeanImputer.impute(&mut filled_ref, reference);

        for target in 0..d {
            let has_missing = (0..data.rows()).any(|r| !data[(r, target)].is_finite());
            if !has_missing {
                continue;
            }
            // Training rows: reference rows where the target is observed.
            let train_rows: Vec<usize> = (0..reference.rows())
                .filter(|&r| reference[(r, target)].is_finite())
                .collect();
            let predictors: Vec<usize> = (0..d).filter(|&c| c != target).collect();

            let weights = if train_rows.len() >= 3 && !predictors.is_empty() {
                // Design matrix with intercept column.
                let rows: Vec<Vec<f64>> = train_rows
                    .iter()
                    .map(|&r| {
                        let mut v: Vec<f64> =
                            predictors.iter().map(|&c| filled_ref[(r, c)]).collect();
                        v.push(1.0);
                        v
                    })
                    .collect();
                let y: Vec<f64> = train_rows.iter().map(|&r| reference[(r, target)]).collect();
                ridge_regression(&Matrix::from_rows(&rows), &y, self.lambda)
            } else {
                None
            };

            for r in 0..data.rows() {
                if data[(r, target)].is_finite() {
                    continue;
                }
                data[(r, target)] = match &weights {
                    Some(w) => {
                        let mut pred = w[predictors.len()]; // intercept
                        for (slot, &c) in predictors.iter().enumerate() {
                            let x = data[(r, c)];
                            let x = if x.is_finite() { x } else { means[c] };
                            pred += w[slot] * x;
                        }
                        if pred.is_finite() {
                            pred
                        } else {
                            means[target]
                        }
                    }
                    None => means[target],
                };
            }
        }
    }

    fn name(&self) -> String {
        "regression".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_holes() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, f64::NAN],
            vec![f64::NAN, 30.0],
            vec![4.0, 40.0],
        ])
    }

    fn assert_complete_and_preserving(imp: &dyn Imputer) {
        let original = with_holes();
        let mut data = original.clone();
        let reference = original.clone();
        imp.impute(&mut data, &reference);
        assert!(data.is_finite(), "{} left NaNs", imp.name());
        for r in 0..original.rows() {
            for c in 0..original.cols() {
                if original[(r, c)].is_finite() {
                    assert_eq!(
                        data[(r, c)],
                        original[(r, c)],
                        "{} modified observed cell",
                        imp.name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_imputers_complete_and_preserve() {
        assert_complete_and_preserving(&ZeroImputer);
        assert_complete_and_preserving(&MeanImputer);
        assert_complete_and_preserving(&KnnImputer { k: 2 });
        assert_complete_and_preserving(&RegressionImputer::default());
    }

    #[test]
    fn zero_fills_zero() {
        let mut data = with_holes();
        let r = data.clone();
        ZeroImputer.impute(&mut data, &r);
        assert_eq!(data[(1, 1)], 0.0);
    }

    #[test]
    fn mean_fills_reference_column_mean() {
        let mut data = with_holes();
        let r = data.clone();
        MeanImputer.impute(&mut data, &r);
        // Column 1 observed values: 10, 30, 40 -> mean 80/3.
        assert!((data[(1, 1)] - 80.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn knn_uses_nearest_rows() {
        // Reference: rows clustered at x=0 (y=0) and x=100 (y=100).
        let reference = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![100.0, 100.0],
            vec![101.0, 100.0],
        ]);
        let mut data = Matrix::from_rows(&[vec![0.5, f64::NAN], vec![100.5, f64::NAN]]);
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        assert_eq!(data[(0, 1)], 0.0);
        assert_eq!(data[(1, 1)], 100.0);
    }

    #[test]
    fn knn_falls_back_to_mean_when_neighbours_missing() {
        let reference = Matrix::from_rows(&[vec![1.0, f64::NAN], vec![2.0, f64::NAN]]);
        let mut data = Matrix::from_rows(&[vec![1.5, f64::NAN]]);
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        // Column 1 never observed -> fallback 0.
        assert_eq!(data[(0, 1)], 0.0);
    }

    #[test]
    fn regression_imputer_learns_linear_structure() {
        // y = 2x exactly; hole in y should be predicted near 2 * x.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let reference = Matrix::from_rows(&rows);
        let mut data = Matrix::from_rows(&[vec![7.5, f64::NAN]]);
        RegressionImputer::default().impute(&mut data, &reference);
        assert!(
            (data[(0, 1)] - 15.0).abs() < 0.5,
            "predicted {}",
            data[(0, 1)]
        );
    }

    #[test]
    fn zero_k_does_not_panic() {
        // Regression: k = 0 used to assert; now it behaves as k = 1.
        let mut data = with_holes();
        let r = data.clone();
        KnnImputer { k: 0 }.impute(&mut data, &r);
        assert!(data.is_finite());
    }

    #[test]
    fn all_missing_column_falls_back_without_panic() {
        // Regression: a column that no row (data or reference) observes
        // must complete via the column-mean fallback (0.0), not panic.
        let reference = Matrix::from_rows(&[
            vec![1.0, f64::NAN, 5.0],
            vec![2.0, f64::NAN, 6.0],
            vec![3.0, f64::NAN, 7.0],
        ]);
        let mut data = Matrix::from_rows(&[vec![1.5, f64::NAN, f64::NAN]]);
        for imp in [
            &KnnImputer { k: 2 } as &dyn Imputer,
            &MeanImputer,
            &RegressionImputer::default(),
            &ZeroImputer,
        ] {
            let mut d = data.clone();
            imp.impute(&mut d, &reference);
            assert!(d.is_finite(), "{} left NaNs", imp.name());
            assert_eq!(d[(0, 1)], 0.0, "{} fallback is not 0", imp.name());
        }
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        assert!(
            (data[(0, 2)] - 5.5).abs() < 1e-9,
            "observed column not knn-filled"
        );
    }

    #[test]
    fn zero_variance_column_imputes_the_constant() {
        // Regression: constant (zero-variance) columns used to be a
        // divide-by-zero hazard downstream; the imputers themselves must
        // fill with the constant.
        let reference = Matrix::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0], vec![7.0, 3.0]]);
        let mut data = Matrix::from_rows(&[vec![f64::NAN, 2.5]]);
        KnnImputer { k: 2 }.impute(&mut data, &reference);
        assert_eq!(data[(0, 0)], 7.0);
    }

    #[test]
    fn nan_sq_dist_all_missing_pair_is_none() {
        // No co-observed dimension at all: the distance is undefined and
        // the row must be excluded from the neighbour ranking entirely.
        let a = [f64::NAN, f64::NAN, f64::NAN];
        let b = [f64::NAN, f64::NAN, f64::NAN];
        assert_eq!(nan_sq_dist(&a, &b), None);
        // Disjoint observation patterns are equally undefined.
        let a = [1.0, f64::NAN, 2.0];
        let b = [f64::NAN, 5.0, f64::NAN];
        assert_eq!(nan_sq_dist(&a, &b), None);
    }

    #[test]
    fn nan_sq_dist_single_shared_column_scales_by_dimension() {
        // Only column 2 is co-observed: distance is (4-1)^2 rescaled by
        // d / seen = 3 / 1.
        let a = [1.0, f64::NAN, 4.0];
        let b = [f64::NAN, 2.0, 1.0];
        let d = nan_sq_dist(&a, &b).expect("one shared column");
        assert_eq!(d.to_bits(), (9.0f64 * 3.0).to_bits());
    }

    #[test]
    fn nan_sq_dist_fully_observed_matches_plain_distance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [0.0, 1.0, 5.0, 4.5];
        let plain: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let d = nan_sq_dist(&a, &b).expect("fully observed");
        assert!((d - plain).abs() < 1e-12);
    }

    /// Deterministic pseudo-random matrix with a controllable missing rate.
    fn holey_matrix(rows: usize, cols: usize, missing_pct: u64, seed: &mut u64) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (*seed >> 33) % 100 < missing_pct {
                data.push(f64::NAN);
            } else {
                data.push(((*seed >> 20) % 2000) as f64 / 100.0 - 10.0);
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn pruned_knn_is_bit_identical_to_reference() {
        // The pruning-threshold equivalence regression: across dense,
        // sparse, tied, wide, and nearly-all-missing regimes, the pruned
        // path must reproduce the unpruned reference bit for bit.
        let mut seed = 0x5EED;
        for (rows, cols, missing_pct, k) in [
            (12, 5, 30, 2),
            (25, 9, 10, 2),
            (25, 9, 60, 5),
            (40, 3, 45, 3),
            (8, 70, 25, 2), // multi-word mask rows
            (15, 6, 90, 4), // mostly missing: fallback-heavy
            (20, 4, 0, 2),  // nothing missing in the reference
        ] {
            let reference = holey_matrix(rows, cols, missing_pct, &mut seed);
            let data = holey_matrix(6, cols, 50, &mut seed);
            let mut pruned = data.clone();
            let mut brute = data.clone();
            KnnImputer { k }.impute(&mut pruned, &reference);
            knn_impute_reference(k, &mut brute, &reference);
            for (a, b) in pruned.as_slice().iter().zip(brute.as_slice()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "pruned != reference for {rows}x{cols} missing={missing_pct}% k={k}"
                );
            }
        }
    }

    #[test]
    fn pruned_knn_handles_duplicate_reference_rows() {
        // Exact distance ties: the stable sort keeps ascending row order,
        // and the bounded lists must pick the same winners.
        let reference = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![1.0, 20.0],
            vec![1.0, 30.0],
            vec![1.0, 40.0],
        ]);
        let mut pruned = Matrix::from_rows(&[vec![1.0, f64::NAN]]);
        let mut brute = pruned.clone();
        KnnImputer { k: 2 }.impute(&mut pruned, &reference);
        knn_impute_reference(2, &mut brute, &reference);
        // First two tied rows win: mean(10, 20).
        assert_eq!(pruned[(0, 1)].to_bits(), 15.0f64.to_bits());
        assert_eq!(pruned[(0, 1)].to_bits(), brute[(0, 1)].to_bits());
    }

    #[test]
    fn imputer_names_are_stable() {
        assert_eq!(KnnImputer { k: 5 }.name(), "knn(k=5)");
        assert_eq!(MeanImputer.name(), "mean");
        assert_eq!(ZeroImputer.name(), "zero");
        assert_eq!(RegressionImputer::default().name(), "regression");
    }
}
