//! Incremental standard-scaler moments via shifted sums.
//!
//! [`StandardScaler::fit`] makes two full passes over the reference
//! matrix. [`ScalerDelta`] maintains per-column sufficient statistics
//! (`n`, `Σ(x−K)`, `Σ(x−K)²` for a fixed per-column anchor `K`) under
//! [`DeltaStat`] absorb/retract, and [`snapshot`](DeltaStat::snapshot)
//! assembles a scaler in `O(d)`.
//!
//! ## Exactness contract
//!
//! Unlike the counting statistics, floating-point summation cannot be
//! reassociated bit-exactly: the maintained moments agree with a fresh
//! two-pass fit to within a small relative epsilon (**1e-9** on the
//! means and stds; the unit tests pin this on messy streams). The
//! anchor `K` — frozen at the first finite value a column absorbs —
//! keeps the summed terms near zero so cancellation stays benign, and
//! retraction subtracts the *identical* terms `x−K` and `(x−K)²` that
//! absorption added. The degenerate rules are copied from the batch
//! fit: an unobserved column scales as mean 0, std 1; a near-constant
//! column (std ≤ 1e-12) scales by 1.

use crate::scale::StandardScaler;
use oeb_tabular::DeltaStat;

/// Maintained per-column moments yielding [`StandardScaler`]s.
#[derive(Debug, Clone)]
pub struct ScalerDelta {
    /// Per-column anchor, frozen at the first finite absorbed value.
    shift: Vec<Option<f64>>,
    count: Vec<usize>,
    /// `Σ(x − shift)` over the finite absorbed cells.
    sum: Vec<f64>,
    /// `Σ(x − shift)²` over the finite absorbed cells.
    sum_sq: Vec<f64>,
}

impl ScalerDelta {
    /// An empty accumulator over `n_cols` columns.
    pub fn new(n_cols: usize) -> ScalerDelta {
        ScalerDelta {
            shift: vec![None; n_cols],
            count: vec![0; n_cols],
            sum: vec![0.0; n_cols],
            sum_sq: vec![0.0; n_cols],
        }
    }

    /// Finite cells currently absorbed into column `c`.
    pub fn count_of(&self, c: usize) -> usize {
        self.count[c]
    }
}

impl DeltaStat for ScalerDelta {
    type Output = StandardScaler;

    fn absorb(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.count.len(), "row width mismatch");
        for (c, &x) in row.iter().enumerate() {
            if !x.is_finite() {
                continue;
            }
            let k = *self.shift[c].get_or_insert(x);
            let t = x - k;
            self.count[c] += 1;
            self.sum[c] += t;
            self.sum_sq[c] += t * t;
        }
    }

    fn retract(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.count.len(), "row width mismatch");
        for (c, &x) in row.iter().enumerate() {
            if !x.is_finite() {
                continue;
            }
            assert!(self.count[c] > 0, "retracting from an empty column");
            // A finite retraction implies a prior finite absorb, so the
            // anchor is set; the fallback only quiets the Option.
            let k = self.shift[c].unwrap_or(x);
            let t = x - k;
            self.count[c] -= 1;
            self.sum[c] -= t;
            self.sum_sq[c] -= t * t;
        }
    }

    fn snapshot(&self) -> StandardScaler {
        let d = self.count.len();
        let mut means = vec![0.0; d];
        let mut stds = vec![1.0; d];
        for c in 0..d {
            let n = self.count[c];
            if n == 0 {
                continue;
            }
            let n_f = n as f64;
            let shifted_mean = self.sum[c] / n_f;
            means[c] = self.shift[c].unwrap_or(0.0) + shifted_mean;
            // König–Huygens on the shifted terms; clamp the FP-negative
            // residue of near-constant columns before the sqrt.
            let var = (self.sum_sq[c] / n_f - shifted_mean * shifted_mean).max(0.0);
            let s = var.sqrt();
            if s > 1e-12 {
                stds[c] = s;
            }
        }
        StandardScaler { means, stds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_linalg::Matrix;

    const REL_EPS: f64 = 1e-9;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= REL_EPS * (1.0 + a.abs().max(b.abs()))
    }

    fn messy_rows(n: usize, d: usize, scale: f64, seed: &mut u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        *seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        match *seed % 11 {
                            0 => f64::NAN,
                            1 => f64::NEG_INFINITY,
                            2 => -0.0,
                            _ => (((*seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5) * scale,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_matches_batch(delta: &ScalerDelta, rows: &[Vec<f64>]) {
        let batch = StandardScaler::fit(&Matrix::from_rows(rows));
        let snap = delta.snapshot();
        for c in 0..batch.means.len() {
            assert!(
                close(snap.means[c], batch.means[c]),
                "mean[{c}] {} vs {}",
                snap.means[c],
                batch.means[c]
            );
            assert!(
                close(snap.stds[c], batch.stds[c]),
                "std[{c}] {} vs {}",
                snap.stds[c],
                batch.stds[c]
            );
        }
    }

    #[test]
    fn snapshot_matches_batch_fit_within_epsilon() {
        let mut seed = 101u64;
        // Large offsets stress the anchored cancellation.
        for scale in [1.0, 1e3, 1e7] {
            let rows = messy_rows(200, 5, scale, &mut seed);
            let mut delta = ScalerDelta::new(5);
            for r in &rows {
                delta.absorb(r);
            }
            assert_matches_batch(&delta, &rows);
        }
    }

    #[test]
    fn slide_matches_fresh_fit_within_epsilon() {
        let mut seed = 103u64;
        let rows = messy_rows(150, 4, 100.0, &mut seed);
        let mut delta = ScalerDelta::new(4);
        for r in &rows[0..50] {
            delta.absorb(r);
        }
        for k in 0..100 {
            delta.retract(&rows[k]);
            delta.absorb(&rows[k + 50]);
            assert_matches_batch(&delta, &rows[k + 1..k + 51]);
        }
    }

    #[test]
    fn unobserved_column_is_identity() {
        let mut delta = ScalerDelta::new(2);
        delta.absorb(&[3.0, f64::NAN]);
        delta.absorb(&[5.0, f64::NAN]);
        let s = delta.snapshot();
        assert_eq!(s.means[1], 0.0);
        assert_eq!(s.stds[1], 1.0);
        assert!(close(s.means[0], 4.0));
    }

    #[test]
    fn constant_column_scales_by_one() {
        let mut delta = ScalerDelta::new(1);
        for _ in 0..10 {
            delta.absorb(&[7.5]);
        }
        let s = delta.snapshot();
        assert!(close(s.means[0], 7.5));
        assert_eq!(s.stds[0], 1.0);
    }

    #[test]
    fn retract_all_returns_to_identity() {
        let mut seed = 107u64;
        let rows = messy_rows(60, 3, 10.0, &mut seed);
        let mut delta = ScalerDelta::new(3);
        for r in &rows {
            delta.absorb(r);
        }
        for r in &rows {
            delta.retract(r);
        }
        let s = delta.snapshot();
        for c in 0..3 {
            assert_eq!(delta.count_of(c), 0);
            assert_eq!(s.means[c], 0.0);
            assert_eq!(s.stds[c], 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "retracting from an empty column")]
    fn retracting_unseen_cells_panics() {
        let mut delta = ScalerDelta::new(1);
        delta.retract(&[1.0]);
    }
}
