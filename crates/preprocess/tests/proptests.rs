//! Property-based tests for preprocessing: the imputer contract (no NaN
//! left, observed cells untouched), one-hot structure, and scaler
//! invertibility — over arbitrary hole patterns.

use oeb_linalg::Matrix;
use oeb_preprocess::{
    Imputer, KnnImputer, MeanImputer, OneHotEncoder, RegressionImputer, StandardScaler,
    TargetScaler, ZeroImputer,
};
use oeb_tabular::{Column, Field, Schema, Table};
use proptest::prelude::*;

/// A matrix with random holes; at least one cell per column observed.
fn holey_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..20, 1usize..5).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(
            prop_oneof![
                4 => (-100.0..100.0f64).prop_map(Some),
                1 => Just(None)
            ],
            rows * cols,
        )
        .prop_map(move |cells| {
            let mut data: Vec<f64> = cells.into_iter().map(|c| c.unwrap_or(f64::NAN)).collect();
            // Guarantee one observed cell per column so means exist.
            for cell in data.iter_mut().take(cols) {
                *cell = 1.0;
            }
            Matrix::from_vec(rows, cols, data)
        })
    })
}

fn imputers() -> Vec<Box<dyn Imputer>> {
    vec![
        Box::new(ZeroImputer),
        Box::new(MeanImputer),
        Box::new(KnnImputer { k: 2 }),
        Box::new(KnnImputer { k: 5 }),
        Box::new(RegressionImputer::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn imputers_complete_and_preserve(m in holey_matrix()) {
        for imp in imputers() {
            let mut data = m.clone();
            imp.impute(&mut data, &m);
            prop_assert!(data.is_finite(), "{} left non-finite cells", imp.name());
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    if m[(r, c)].is_finite() {
                        prop_assert_eq!(data[(r, c)], m[(r, c)], "{} changed an observed cell", imp.name());
                    }
                }
            }
        }
    }

    #[test]
    fn mean_imputed_values_are_within_column_range(m in holey_matrix()) {
        let mut data = m.clone();
        MeanImputer.impute(&mut data, &m);
        for c in 0..m.cols() {
            let observed: Vec<f64> = m.col(c).into_iter().filter(|x| x.is_finite()).collect();
            let lo = observed.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = observed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for r in 0..m.rows() {
                if !m[(r, c)].is_finite() {
                    prop_assert!(data[(r, c)] >= lo - 1e-9 && data[(r, c)] <= hi + 1e-9);
                }
            }
        }
    }

    #[test]
    fn knn_imputed_values_are_within_column_range(m in holey_matrix()) {
        // KNN fills with means of observed neighbours, so values stay in
        // the observed range of the column.
        let mut data = m.clone();
        KnnImputer { k: 3 }.impute(&mut data, &m);
        for c in 0..m.cols() {
            let observed: Vec<f64> = m.col(c).into_iter().filter(|x| x.is_finite()).collect();
            let lo = observed.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = observed.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for r in 0..m.rows() {
                if !m[(r, c)].is_finite() {
                    prop_assert!(data[(r, c)] >= lo - 1e-9 && data[(r, c)] <= hi + 1e-9);
                }
            }
        }
    }

    #[test]
    fn scaler_is_invertible_on_finite_cells(m in holey_matrix()) {
        let scaler = StandardScaler::fit(&m);
        let mut scaled = m.clone();
        scaler.transform(&mut scaled);
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if m[(r, c)].is_finite() {
                    let back = scaler.inverse_value(c, scaled[(r, c)]);
                    prop_assert!((back - m[(r, c)]).abs() < 1e-6 * (1.0 + m[(r, c)].abs()));
                } else {
                    prop_assert!(scaled[(r, c)].is_nan());
                }
            }
        }
    }

    #[test]
    fn target_scaler_roundtrip(xs in prop::collection::vec(-1e4..1e4f64, 1..40)) {
        let t = TargetScaler::fit(&xs);
        for &x in &xs {
            let back = t.inverse(t.transform(x));
            prop_assert!((back - x).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn onehot_rows_have_unit_category_mass(
        cells in prop::collection::vec(prop_oneof![4 => (0u32..4).prop_map(Some), 1 => Just(None)], 1..30)
    ) {
        let n = cells.len();
        let schema = Schema::new(vec![Field::categorical("c", &["a", "b", "c", "d"])]);
        let table = Table::new(schema, vec![Column::Categorical(cells.clone())]);
        let enc = OneHotEncoder::fit(&table, &[0]);
        let m = enc.encode_all(&table);
        prop_assert_eq!(m.shape(), (n, 4));
        for (r, cell) in cells.iter().enumerate() {
            match cell {
                Some(idx) => {
                    let sum: f64 = m.row(r).iter().sum();
                    prop_assert_eq!(sum, 1.0);
                    prop_assert_eq!(m[(r, *idx as usize)], 1.0);
                }
                None => {
                    prop_assert!(m.row(r).iter().all(|x| x.is_nan()));
                }
            }
        }
    }
}
