//! Behavioural tests for the observability layer. All instruments share
//! process-global state, so everything runs inside one `#[test]` body with
//! explicit `reset()` fences between scenarios.

use std::sync::Arc;

use oeb_trace::{
    current_cell_ctx, drain_events, enable, enabled, metrics_to_json, render_metrics_table,
    render_trace_event, render_trace_footer, reset, set_thread_slot, snapshot, CellCtx, Counter,
    Gauge, Histogram, SpanDef, Stopwatch, TraceEvent,
};

static HITS: Counter = Counter::new("t.cache.hit");
static DEPTH: Gauge = Gauge::new("t.queue.depth");
static SIZES: Histogram = Histogram::new("t.sizes", &[10, 100, 1000]);
static PHASE: SpanDef = SpanDef::new("t.phase");
static WORKER: SpanDef = SpanDef::new("t.worker");
static EXEC_CLAIMS: Counter = Counter::new("executor.t.claims");

#[test]
fn end_to_end() {
    disabled_path_records_nothing();
    counters_gauges_histograms();
    histogram_quantiles_are_bucket_bounds();
    spans_merge_in_slot_order();
    cell_ctx_attaches_to_events();
    stopwatch_measures_with_tracing_off_and_on();
    span_totals_accumulate_nanoseconds();
    trace_lines_follow_schema_v2();
    json_and_table_are_stable();
    deterministic_counter_filter();
}

fn disabled_path_records_nothing() {
    assert!(!enabled(), "recording must start disabled");
    HITS.incr();
    DEPTH.set(7);
    SIZES.record(5);
    {
        let _g = PHASE.start();
    }
    {
        let _ctx = CellCtx {
            dataset: "d".into(),
            learner: "l".into(),
            seed: 0,
            rows: 1,
        }
        .install();
        assert!(
            current_cell_ctx().is_none(),
            "disabled install must be inert"
        );
    }
    let snap = snapshot();
    // The dropped-events counter is always surfaced; nothing else records.
    assert_eq!(
        snap.counters,
        [("trace.events.dropped".to_string(), 0u64)].into()
    );
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.spans.is_empty());
    assert!(drain_events().is_empty());
}

fn counters_gauges_histograms() {
    enable();
    reset();
    HITS.add(3);
    HITS.incr();
    DEPTH.set(9);
    DEPTH.set(4);
    SIZES.record(5);
    SIZES.record(50);
    SIZES.record(5000);
    let snap = snapshot();
    assert_eq!(snap.counters["t.cache.hit"], 4);
    let g = snap.gauges["t.queue.depth"];
    assert_eq!((g.last, g.max), (4, 9));
    let h = &snap.histograms["t.sizes"];
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 5055);
    assert_eq!(h.buckets, vec![(10, 1), (100, 1), (1000, 0), (u64::MAX, 1)]);
    reset();
    assert_eq!(snapshot().counters["t.cache.hit"], 0);
}

/// Spawn workers with explicit slots; whatever order their buffers flush,
/// the drained stream is ordered by slot and ids are assignable monotone.
fn spans_merge_in_slot_order() {
    enable();
    reset();
    std::thread::scope(|scope| {
        for w in 0..4u32 {
            scope.spawn(move || {
                set_thread_slot(w + 1);
                for _ in 0..3 {
                    let _g = WORKER.start();
                }
            });
        }
    });
    {
        let _g = PHASE.start();
    }
    let events = drain_events();
    assert_eq!(events.len(), 13);
    let slots: Vec<u32> = events.iter().map(|e| e.slot).collect();
    let mut sorted = slots.clone();
    sorted.sort_unstable();
    assert_eq!(slots, sorted, "events must come out slot-ordered");
    for pair in events.windows(2) {
        if pair[0].slot == pair[1].slot {
            assert!(pair[0].seq < pair[1].seq, "per-slot order must be stable");
        }
    }
    let snap = snapshot();
    assert_eq!(snap.spans["t.worker"].count, 12);
    assert_eq!(snap.spans["t.phase"].count, 1);
    assert!(drain_events().is_empty(), "drain consumes");
}

/// p50/p95/p99 come deterministically from the cumulative bucket counts:
/// each quantile reports the inclusive upper bound of the bucket that
/// reaches the rank.
fn histogram_quantiles_are_bucket_bounds() {
    enable();
    reset();
    // 10 samples: 6 in the ≤10 bucket, 3 in ≤100, 1 in overflow.
    for _ in 0..6 {
        SIZES.record(4);
    }
    for _ in 0..3 {
        SIZES.record(60);
    }
    SIZES.record(9999);
    let h = snapshot().histograms["t.sizes"].clone();
    assert_eq!(h.p50(), 10, "rank 5 of 10 lands in the first bucket");
    assert_eq!(h.p95(), u64::MAX, "rank 10 of 10 lands in overflow");
    assert_eq!(h.quantile(0.90), 100, "rank 9 of 10 lands in the second");
    assert_eq!(h.p99(), u64::MAX);
    let empty = oeb_trace::HistogramSnapshot {
        count: 0,
        sum: 0,
        buckets: vec![(10, 0), (u64::MAX, 0)],
    };
    assert_eq!(empty.p50(), 0, "empty histogram quantiles are 0");
}

/// Spans recorded under an installed `CellCtx` carry it into the drained
/// stream; installs nest and restore; uncontextualised spans carry none.
fn cell_ctx_attaches_to_events() {
    enable();
    reset();
    let outer = CellCtx {
        dataset: "Electricity Prices".into(),
        learner: "arf".into(),
        seed: 42,
        rows: 1000,
    };
    let inner = CellCtx {
        dataset: "Tetouan".into(),
        learner: "mlp".into(),
        seed: 7,
        rows: 500,
    };
    {
        let _outer = outer.clone().install();
        {
            let _g = PHASE.start();
        }
        {
            let _inner = inner.clone().install();
            let _g = WORKER.start();
        }
        assert_eq!(
            current_cell_ctx().as_deref(),
            Some(&outer),
            "inner install must restore the outer context on drop"
        );
    }
    assert!(current_cell_ctx().is_none());
    {
        let _g = PHASE.start();
    }
    let events = drain_events();
    assert_eq!(events.len(), 3);
    let by_name = |n: &str| {
        events
            .iter()
            .filter(|e| e.name == n)
            .collect::<Vec<&TraceEvent>>()
    };
    let phases = by_name("t.phase");
    assert_eq!(phases[0].ctx.as_deref(), Some(&outer));
    assert_eq!(phases[1].ctx, None, "context must not leak past its guard");
    assert_eq!(by_name("t.worker")[0].ctx.as_deref(), Some(&inner));
}

fn stopwatch_measures_with_tracing_off_and_on() {
    oeb_trace::disable();
    reset();
    let sw = Stopwatch::start();
    let secs = sw.stop(&PHASE);
    assert!(secs >= 0.0, "stopwatch must measure even when disabled");
    assert!(drain_events().is_empty());
    enable();
    let sw = Stopwatch::start();
    let secs = sw.stop(&PHASE);
    assert!(secs >= 0.0);
    let events = drain_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "t.phase");
}

/// Span aggregates accumulate exact nanoseconds; the microsecond view is
/// derived once, so summed children can never exceed a parent by rounding.
fn span_totals_accumulate_nanoseconds() {
    enable();
    reset();
    for _ in 0..50 {
        let _g = PHASE.start();
    }
    let snap = snapshot();
    let s = snap.spans["t.phase"];
    assert_eq!(s.count, 50);
    assert_eq!(s.total_us(), s.total_ns / 1_000);
    let events = drain_events();
    let summed_ns: u64 = events.iter().map(|e| e.dur_ns).sum();
    assert_eq!(
        summed_ns, s.total_ns,
        "event nanoseconds must sum exactly to the span aggregate"
    );
    for e in &events {
        assert_eq!(e.dur_us(), e.dur_ns / 1_000);
        assert_eq!(e.start_us(), e.start_ns / 1_000);
    }
}

/// The serialized line format: v1 keys preserved, exact ns fields added,
/// ctx fields present iff attributed, and the footer carries schema,
/// event count and dropped count.
fn trace_lines_follow_schema_v2() {
    let plain = TraceEvent {
        name: "t.phase",
        slot: 1,
        seq: 0,
        start_ns: 1_234_567,
        dur_ns: 9_876,
        ctx: None,
    };
    assert_eq!(
        render_trace_event(0, &plain),
        "{\"type\":\"span\",\"id\":0,\"slot\":1,\"seq\":0,\"name\":\"t.phase\",\
         \"start_us\":1234,\"dur_us\":9,\"start_ns\":1234567,\"dur_ns\":9876}"
    );
    let attributed = TraceEvent {
        ctx: Some(Arc::new(CellCtx {
            dataset: "d\"x".into(),
            learner: "arf".into(),
            seed: 3,
            rows: 120,
        })),
        ..plain
    };
    assert_eq!(
        render_trace_event(5, &attributed),
        "{\"type\":\"span\",\"id\":5,\"slot\":1,\"seq\":0,\"name\":\"t.phase\",\
         \"start_us\":1234,\"dur_us\":9,\"start_ns\":1234567,\"dur_ns\":9876,\
         \"dataset\":\"d\\\"x\",\"learner\":\"arf\",\"cell_seed\":3,\"rows\":120}"
    );
    assert_eq!(
        render_trace_footer(13, 0),
        "{\"type\":\"footer\",\"schema\":2,\"events\":13,\"dropped\":0}"
    );
}

fn json_and_table_are_stable() {
    enable();
    reset();
    HITS.add(2);
    SIZES.record(1);
    let a = metrics_to_json(&snapshot());
    let b = metrics_to_json(&snapshot());
    assert_eq!(a, b);
    assert!(a.starts_with('{') && a.ends_with('}'));
    assert!(a.contains("\"t.cache.hit\":2"));
    let table = render_metrics_table(&snapshot());
    assert!(table.contains("t.cache.hit"));
    assert!(table.contains("counters"));
}

fn deterministic_counter_filter() {
    enable();
    reset();
    HITS.incr();
    EXEC_CLAIMS.add(5);
    let det = snapshot().deterministic_counters();
    assert!(det.contains_key("t.cache.hit"));
    assert!(!det.contains_key("executor.t.claims"));
}
