//! Behavioural tests for the observability layer. All instruments share
//! process-global state, so everything runs inside one `#[test]` body with
//! explicit `reset()` fences between scenarios.

use oeb_trace::{
    drain_events, enable, enabled, metrics_to_json, render_metrics_table, reset, set_thread_slot,
    snapshot, Counter, Gauge, Histogram, SpanDef, Stopwatch,
};

static HITS: Counter = Counter::new("t.cache.hit");
static DEPTH: Gauge = Gauge::new("t.queue.depth");
static SIZES: Histogram = Histogram::new("t.sizes", &[10, 100, 1000]);
static PHASE: SpanDef = SpanDef::new("t.phase");
static WORKER: SpanDef = SpanDef::new("t.worker");
static EXEC_CLAIMS: Counter = Counter::new("executor.t.claims");

#[test]
fn end_to_end() {
    disabled_path_records_nothing();
    counters_gauges_histograms();
    spans_merge_in_slot_order();
    stopwatch_measures_with_tracing_off_and_on();
    json_and_table_are_stable();
    deterministic_counter_filter();
}

fn disabled_path_records_nothing() {
    assert!(!enabled(), "recording must start disabled");
    HITS.incr();
    DEPTH.set(7);
    SIZES.record(5);
    {
        let _g = PHASE.start();
    }
    let snap = snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.spans.is_empty());
    assert!(drain_events().is_empty());
}

fn counters_gauges_histograms() {
    enable();
    reset();
    HITS.add(3);
    HITS.incr();
    DEPTH.set(9);
    DEPTH.set(4);
    SIZES.record(5);
    SIZES.record(50);
    SIZES.record(5000);
    let snap = snapshot();
    assert_eq!(snap.counters["t.cache.hit"], 4);
    let g = snap.gauges["t.queue.depth"];
    assert_eq!((g.last, g.max), (4, 9));
    let h = &snap.histograms["t.sizes"];
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 5055);
    assert_eq!(h.buckets, vec![(10, 1), (100, 1), (1000, 0), (u64::MAX, 1)]);
    reset();
    assert_eq!(snapshot().counters["t.cache.hit"], 0);
}

/// Spawn workers with explicit slots; whatever order their buffers flush,
/// the drained stream is ordered by slot and ids are assignable monotone.
fn spans_merge_in_slot_order() {
    enable();
    reset();
    std::thread::scope(|scope| {
        for w in 0..4u32 {
            scope.spawn(move || {
                set_thread_slot(w + 1);
                for _ in 0..3 {
                    let _g = WORKER.start();
                }
            });
        }
    });
    {
        let _g = PHASE.start();
    }
    let events = drain_events();
    assert_eq!(events.len(), 13);
    let slots: Vec<u32> = events.iter().map(|e| e.slot).collect();
    let mut sorted = slots.clone();
    sorted.sort_unstable();
    assert_eq!(slots, sorted, "events must come out slot-ordered");
    for pair in events.windows(2) {
        if pair[0].slot == pair[1].slot {
            assert!(pair[0].seq < pair[1].seq, "per-slot order must be stable");
        }
    }
    let snap = snapshot();
    assert_eq!(snap.spans["t.worker"].count, 12);
    assert_eq!(snap.spans["t.phase"].count, 1);
    assert!(drain_events().is_empty(), "drain consumes");
}

fn stopwatch_measures_with_tracing_off_and_on() {
    oeb_trace::disable();
    reset();
    let sw = Stopwatch::start();
    let secs = sw.stop(&PHASE);
    assert!(secs >= 0.0, "stopwatch must measure even when disabled");
    assert!(drain_events().is_empty());
    enable();
    let sw = Stopwatch::start();
    let secs = sw.stop(&PHASE);
    assert!(secs >= 0.0);
    let events = drain_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].name, "t.phase");
}

fn json_and_table_are_stable() {
    enable();
    reset();
    HITS.add(2);
    SIZES.record(1);
    let a = metrics_to_json(&snapshot());
    let b = metrics_to_json(&snapshot());
    assert_eq!(a, b);
    assert!(a.starts_with('{') && a.ends_with('}'));
    assert!(a.contains("\"t.cache.hit\":2"));
    let table = render_metrics_table(&snapshot());
    assert!(table.contains("t.cache.hit"));
    assert!(table.contains("counters"));
}

fn deterministic_counter_filter() {
    enable();
    reset();
    HITS.incr();
    EXEC_CLAIMS.add(5);
    let det = snapshot().deterministic_counters();
    assert!(det.contains_key("t.cache.hit"));
    assert!(!det.contains_key("executor.t.claims"));
}
