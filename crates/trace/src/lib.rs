//! Deterministic, dependency-free observability for the OEBench workspace.
//!
//! The pipeline's load-bearing invariant is that *results never depend on
//! wall-clock time or scheduling*: an N-thread run is bit-identical to a
//! sequential one. Instrumentation must not be allowed to erode that, so
//! this crate draws a hard line:
//!
//! - **Wall-clock readings live here and nowhere else.** The `raw-instant`
//!   lint rule forbids `Instant::now`/`SystemTime::now` outside this crate;
//!   code that needs a duration (even one that is itself a reported paper
//!   metric, like training time) goes through [`Stopwatch`].
//! - **Zero cost when disabled.** Every recording entry point checks one
//!   relaxed atomic flag and returns; the disabled path performs no clock
//!   read, no allocation, and takes no lock. Results are bit-identical with
//!   tracing on, off, or compiled out.
//! - **Deterministic export ordering.** Metric snapshots are keyed by
//!   `BTreeMap`; span buffers are thread-local and tagged with the owning
//!   worker's *slot* (the same slot indices the executor uses for result
//!   collection), then merged by `(slot, start, seq)` with a stable sort —
//!   so the trace stream's ordering does not depend on which thread
//!   happened to flush first.
//!
//! Metric handles are `static` items with interior atomics; they register
//! themselves into a global registry on first touch, so defining one is
//! free and dead instruments never appear in a snapshot.
//!
//! ```
//! static CACHE_HITS: oeb_trace::Counter = oeb_trace::Counter::new("demo.cache.hit");
//! static IMPUTE: oeb_trace::SpanDef = oeb_trace::SpanDef::new("demo.impute");
//!
//! oeb_trace::enable();
//! {
//!     let _span = IMPUTE.start(); // RAII: records duration on drop
//!     CACHE_HITS.incr();
//! }
//! let snap = oeb_trace::snapshot();
//! assert_eq!(snap.counters["demo.cache.hit"], 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Lock a mutex, recovering the guard if a panicking holder poisoned it.
/// All state behind these locks is valid under torn updates (counters and
/// event buffers), so continuing is always safe and keeps this crate free
/// of panics.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
    spans: Vec<&'static SpanDef>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
    spans: Vec::new(),
});

/// Process-relative time origin for span start offsets. Fixed at the first
/// `enable()` (or first span if somehow recorded earlier) so offsets in one
/// trace file share one origin.
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

fn epoch_micros(at: Instant) -> u64 {
    let mut guard = lock(&EPOCH);
    let epoch = guard.get_or_insert(at);
    at.saturating_duration_since(*epoch).as_micros() as u64
}

/// Is recording currently on? One relaxed load — this is the whole cost of
/// every instrument on the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Fixes the trace epoch on first call.
pub fn enable() {
    lock(&EPOCH).get_or_insert_with(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Already-recorded values remain until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram
// ---------------------------------------------------------------------------

/// Monotone event counter. Schedule-invariant for all instruments in the
/// workspace except the `executor.*` family (see DESIGN.md "Observability"
/// for the determinism contract).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).counters.push(self);
    }
}

/// Last-written + high-water-mark gauge (e.g. executor queue depth).
pub struct Gauge {
    name: &'static str,
    last: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            last: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).gauges.push(self);
    }
}

/// Upper bound on bucket count (`bounds` entries plus one overflow bucket).
/// Fixed so the storage can live inline in a `static` with no allocation.
pub const MAX_BUCKETS: usize = 12;

/// Fixed-bucket histogram over `u64` samples (typically microseconds or
/// element counts). `bounds` are inclusive upper edges in ascending order;
/// samples above the last bound land in the overflow bucket. Bounds beyond
/// [`MAX_BUCKETS`]` - 1` are ignored rather than panicking.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        Histogram {
            name,
            bounds,
            buckets: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    fn used_bounds(&self) -> &'static [u64] {
        let n = self.bounds.len().min(MAX_BUCKETS - 1);
        &self.bounds[..n]
    }

    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        let bounds = self.used_bounds();
        let mut idx = bounds.len(); // overflow bucket
        for (i, b) in bounds.iter().enumerate() {
            if v <= *b {
                idx = i;
                break;
            }
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).histograms.push(self);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A named span site. `start()` returns an RAII guard that records the
/// duration on drop; per-definition count/total aggregates feed the metrics
/// snapshot (per-stage time shares) while the individual events feed the
/// `--trace` JSON-lines stream.
pub struct SpanDef {
    name: &'static str,
    count: AtomicU64,
    total_us: AtomicU64,
    registered: AtomicBool,
}

impl SpanDef {
    pub const fn new(name: &'static str) -> Self {
        SpanDef {
            name,
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Begin a span. Disabled path: one atomic load, no clock read, no
    /// allocation — the guard is inert.
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        SpanGuard(Some(ActiveSpan {
            def: self,
            start: Instant::now(),
        }))
    }

    fn record_from(&'static self, start: Instant) {
        let dur_us = start.elapsed().as_micros() as u64;
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(dur_us, Ordering::Relaxed);
        push_event(self.name, epoch_micros(start), dur_us);
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).spans.push(self);
    }
}

struct ActiveSpan {
    def: &'static SpanDef,
    start: Instant,
}

/// RAII guard from [`SpanDef::start`]. Records on drop if recording is
/// still enabled.
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            if enabled() {
                active.def.record_from(active.start);
            }
        }
    }
}

/// The one sanctioned way to measure a duration whose *value* must flow
/// into results (training/test seconds are themselves reported paper
/// metrics). Always reads the clock — the measured number is identical
/// whether tracing is on or off — and additionally records a span event
/// when recording is enabled.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    #[inline]
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stop, returning elapsed seconds; records a span under `def` when
    /// recording is enabled.
    pub fn stop(self, def: &'static SpanDef) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if enabled() {
            def.record_from(self.start);
        }
        secs
    }
}

// ---------------------------------------------------------------------------
// Per-thread event buffers (slot-ordered, like executor result collection)
// ---------------------------------------------------------------------------

/// Per-thread event cap; beyond it events are counted as dropped rather
/// than growing without bound. 2^18 events ≈ 10 MB per thread worst case.
const MAX_THREAD_EVENTS: usize = 1 << 18;

static DROPPED: AtomicU64 = AtomicU64::new(0);

#[derive(Clone)]
struct Event {
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    seq: u32,
}

struct ThreadBuf {
    slot: u32,
    seq: u32,
    events: Vec<Event>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            lock(&CHUNKS).push((self.slot, std::mem::take(&mut self.events)));
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            slot: 0,
            seq: 0,
            events: Vec::new(),
        })
    };
}

/// Flushed per-thread buffers awaiting export, tagged with their slot.
static CHUNKS: Mutex<Vec<(u32, Vec<Event>)>> = Mutex::new(Vec::new());

/// Tag the current thread's events with a slot index. The executor assigns
/// slot `w + 1` to worker `w` (the spawning thread keeps slot 0), mirroring
/// its slot-ordered result collection so the merged trace ordering is
/// independent of thread scheduling.
pub fn set_thread_slot(slot: u32) {
    let _ = BUF.try_with(|b| b.borrow_mut().slot = slot);
}

fn push_event(name: &'static str, start_us: u64, dur_us: u64) {
    // try_with: events arriving during thread teardown are dropped rather
    // than panicking on a destroyed TLS key.
    let pushed = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        if b.events.len() >= MAX_THREAD_EVENTS {
            return false;
        }
        let seq = b.seq;
        b.seq = b.seq.wrapping_add(1);
        b.events.push(Event {
            name,
            start_us,
            dur_us,
            seq,
        });
        true
    });
    if pushed != Ok(true) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Move the calling thread's buffered events into the global chunk list.
/// Worker threads flush automatically on exit (TLS drop); the exporting
/// thread calls this for itself.
pub fn flush_thread() {
    let _ = BUF.try_with(|b| b.borrow_mut().flush());
}

// ---------------------------------------------------------------------------
// Export: trace stream
// ---------------------------------------------------------------------------

/// One exported span event, in final deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub slot: u32,
    pub seq: u32,
    pub start_us: u64,
    pub dur_us: u64,
}

/// Drain all recorded span events in deterministic order: stable-sorted by
/// `(slot, start_us, seq)`, so the stream's shape does not depend on which
/// thread's buffer reached the chunk list first. Consumes the events.
pub fn drain_events() -> Vec<TraceEvent> {
    flush_thread();
    let chunks = std::mem::take(&mut *lock(&CHUNKS));
    let mut events: Vec<(u32, Event)> = Vec::new();
    for (slot, chunk) in chunks {
        for ev in chunk {
            events.push((slot, ev));
        }
    }
    events.sort_by_key(|(slot, ev)| (*slot, ev.start_us, ev.seq));
    events
        .into_iter()
        .map(|(slot, ev)| TraceEvent {
            name: ev.name,
            slot,
            seq: ev.seq,
            start_us: ev.start_us,
            dur_us: ev.dur_us,
        })
        .collect()
}

/// Number of events discarded because a per-thread buffer hit its cap.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Write the drained span stream as JSON lines. Each record carries
/// `type`, a monotone `id` assigned after the deterministic merge, the
/// owning `slot`, per-thread `seq`, the span `name`, and epoch-relative
/// `start_us` / `dur_us`.
pub fn write_trace_file(path: &Path) -> std::io::Result<()> {
    let events = drain_events();
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    for (id, ev) in events.iter().enumerate() {
        writeln!(
            out,
            "{{\"type\":\"span\",\"id\":{id},\"slot\":{},\"seq\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            ev.slot,
            ev.seq,
            json_escape(ev.name),
            ev.start_us,
            ev.dur_us,
        )?;
    }
    out.flush()
}

// ---------------------------------------------------------------------------
// Export: metrics snapshot
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    pub last: u64,
    pub max: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(inclusive upper bound, count)`; the final entry is the overflow
    /// bucket with bound `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub count: u64,
    pub total_us: u64,
}

/// Point-in-time view of every registered instrument, keyed by name in
/// `BTreeMap`s so iteration (and therefore any rendering) is ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: BTreeMap<String, SpanSnapshot>,
}

pub fn snapshot() -> MetricsSnapshot {
    let reg = lock(&REGISTRY);
    let mut snap = MetricsSnapshot::default();
    for c in &reg.counters {
        snap.counters.insert(c.name.to_string(), c.get());
    }
    for g in &reg.gauges {
        snap.gauges.insert(
            g.name.to_string(),
            GaugeSnapshot {
                last: g.last.load(Ordering::Relaxed),
                max: g.max.load(Ordering::Relaxed),
            },
        );
    }
    for h in &reg.histograms {
        let bounds = h.used_bounds();
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        for (i, b) in bounds.iter().enumerate() {
            buckets.push((*b, h.buckets[i].load(Ordering::Relaxed)));
        }
        buckets.push((u64::MAX, h.buckets[bounds.len()].load(Ordering::Relaxed)));
        snap.histograms.insert(
            h.name.to_string(),
            HistogramSnapshot {
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                buckets,
            },
        );
    }
    for s in &reg.spans {
        snap.spans.insert(
            s.name.to_string(),
            SpanSnapshot {
                count: s.count.load(Ordering::Relaxed),
                total_us: s.total_us.load(Ordering::Relaxed),
            },
        );
    }
    let dropped = dropped_events();
    if dropped > 0 {
        snap.counters
            .insert("trace.events.dropped".to_string(), dropped);
    }
    snap
}

impl MetricsSnapshot {
    /// Counters under the schedule-invariant contract: everything except
    /// the `executor.*` family, whose values legitimately depend on which
    /// worker claimed which task, and the `supervise.wall.*` family,
    /// which counts wall-clock watchdog events (machine noise by
    /// definition). Tests assert these are identical across thread
    /// counts.
    pub fn deterministic_counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(name, _)| {
                !name.starts_with("executor.") && !name.starts_with("supervise.wall.")
            })
            .map(|(name, v)| (name.clone(), *v))
            .collect()
    }
}

/// Render the snapshot as an aligned human-readable table (the `--metrics`
/// output). Ordering follows the `BTreeMap` keys, so it is stable.
pub fn render_metrics_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut section = |title: &str, rows: &[(String, String)]| {
        if rows.is_empty() {
            return;
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        out.push_str(title);
        out.push('\n');
        for (k, v) in rows {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
    };
    let counter_rows: Vec<(String, String)> = snap
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect();
    section("counters", &counter_rows);
    let gauge_rows: Vec<(String, String)> = snap
        .gauges
        .iter()
        .map(|(k, g)| (k.clone(), format!("last={} max={}", g.last, g.max)))
        .collect();
    section("gauges", &gauge_rows);
    let span_rows: Vec<(String, String)> = snap
        .spans
        .iter()
        .map(|(k, s)| {
            let mean = s.total_us.checked_div(s.count).unwrap_or(0);
            (
                k.clone(),
                format!("count={} total_us={} mean_us={mean}", s.count, s.total_us),
            )
        })
        .collect();
    section("spans", &span_rows);
    let hist_rows: Vec<(String, String)> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| {
                    if *b == u64::MAX {
                        format!("inf:{c}")
                    } else {
                        format!("{b}:{c}")
                    }
                })
                .collect();
            (
                k.clone(),
                format!("count={} sum={} [{}]", h.count, h.sum, buckets.join(" ")),
            )
        })
        .collect();
    section("histograms", &hist_rows);
    out
}

/// Serialise the snapshot as a single JSON object (hand-rolled: this crate
/// stays dependency-free). Key order is the `BTreeMap` order, so the bytes
/// are stable for identical snapshots.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    push_entries(
        &mut out,
        snap.counters.iter().map(|(k, v)| (k, v.to_string())),
    );
    out.push_str("},\"gauges\":{");
    push_entries(
        &mut out,
        snap.gauges
            .iter()
            .map(|(k, g)| (k, format!("{{\"last\":{},\"max\":{}}}", g.last, g.max))),
    );
    out.push_str("},\"spans\":{");
    push_entries(
        &mut out,
        snap.spans.iter().map(|(k, s)| {
            (
                k,
                format!("{{\"count\":{},\"total_us\":{}}}", s.count, s.total_us),
            )
        }),
    );
    out.push_str("},\"histograms\":{");
    push_entries(
        &mut out,
        snap.histograms.iter().map(|(k, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| {
                    let bound = if *b == u64::MAX {
                        "null".to_string()
                    } else {
                        b.to_string()
                    };
                    format!("[{bound},{c}]")
                })
                .collect();
            (
                k,
                format!(
                    "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    buckets.join(",")
                ),
            )
        }),
    );
    out.push_str("}}");
    out
}

fn push_entries<'a, I>(out: &mut String, entries: I)
where
    I: Iterator<Item = (&'a String, String)>,
{
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":");
        out.push_str(&v);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reset (tests and benchmarks)
// ---------------------------------------------------------------------------

/// Zero every registered instrument, discard buffered events, and restart
/// the epoch. Leaves the enabled flag as-is. Buffers owned by *live* other
/// threads are not reachable and are left alone; in practice worker threads
/// are scoped and have exited by the time anything resets.
pub fn reset() {
    {
        let reg = lock(&REGISTRY);
        for c in &reg.counters {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in &reg.gauges {
            g.last.store(0, Ordering::Relaxed);
            g.max.store(0, Ordering::Relaxed);
        }
        for h in &reg.histograms {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
        for s in &reg.spans {
            s.count.store(0, Ordering::Relaxed);
            s.total_us.store(0, Ordering::Relaxed);
        }
    }
    lock(&CHUNKS).clear();
    DROPPED.store(0, Ordering::Relaxed);
    let _ = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        b.events.clear();
        b.seq = 0;
    });
    *lock(&EPOCH) = Some(Instant::now());
}
