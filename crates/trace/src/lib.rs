//! Deterministic, dependency-free observability for the OEBench workspace.
//!
//! The pipeline's load-bearing invariant is that *results never depend on
//! wall-clock time or scheduling*: an N-thread run is bit-identical to a
//! sequential one. Instrumentation must not be allowed to erode that, so
//! this crate draws a hard line:
//!
//! - **Wall-clock readings live here and nowhere else.** The `raw-instant`
//!   lint rule forbids `Instant::now`/`SystemTime::now` outside this crate;
//!   code that needs a duration (even one that is itself a reported paper
//!   metric, like training time) goes through [`Stopwatch`].
//! - **Zero cost when disabled.** Every recording entry point checks one
//!   relaxed atomic flag and returns; the disabled path performs no clock
//!   read, no allocation, and takes no lock. Results are bit-identical with
//!   tracing on, off, or compiled out.
//! - **Deterministic export ordering.** Metric snapshots are keyed by
//!   `BTreeMap`; span buffers are thread-local and tagged with the owning
//!   worker's *slot* (the same slot indices the executor uses for result
//!   collection), then merged by `(slot, start, seq)` with a stable sort —
//!   so the trace stream's ordering does not depend on which thread
//!   happened to flush first.
//!
//! Metric handles are `static` items with interior atomics; they register
//! themselves into a global registry on first touch, so defining one is
//! free and dead instruments never appear in a snapshot.
//!
//! ```
//! static CACHE_HITS: oeb_trace::Counter = oeb_trace::Counter::new("demo.cache.hit");
//! static IMPUTE: oeb_trace::SpanDef = oeb_trace::SpanDef::new("demo.impute");
//!
//! oeb_trace::enable();
//! {
//!     let _span = IMPUTE.start(); // RAII: records duration on drop
//!     CACHE_HITS.incr();
//! }
//! let snap = oeb_trace::snapshot();
//! assert_eq!(snap.counters["demo.cache.hit"], 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Version of the JSON-lines trace schema written by [`write_trace_file`].
/// v2 added per-event cell context fields, exact `start_ns`/`dur_ns`, and
/// the mandatory trailing footer record.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Lock a mutex, recovering the guard if a panicking holder poisoned it.
/// All state behind these locks is valid under torn updates (counters and
/// event buffers), so continuing is always safe and keeps this crate free
/// of panics.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
    spans: Vec<&'static SpanDef>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: Vec::new(),
    gauges: Vec::new(),
    histograms: Vec::new(),
    spans: Vec::new(),
});

/// Process-relative time origin for span start offsets. Fixed at the first
/// `enable()` (or first span if somehow recorded earlier) so offsets in one
/// trace file share one origin.
static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

fn epoch_nanos(at: Instant) -> u64 {
    let mut guard = lock(&EPOCH);
    let epoch = guard.get_or_insert(at);
    at.saturating_duration_since(*epoch).as_nanos() as u64
}

/// Is recording currently on? One relaxed load — this is the whole cost of
/// every instrument on the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Fixes the trace epoch on first call.
pub fn enable() {
    lock(&EPOCH).get_or_insert_with(Instant::now);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Already-recorded values remain until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Cell context (attribution)
// ---------------------------------------------------------------------------

/// Ambient attribution for span events: which `(dataset, learner, seed)`
/// cell the current thread is working on, and how many raw rows that cell
/// covers. Installed by the sweep/harness around each task via
/// [`CellCtx::install`]; every span event recorded while a context is
/// active carries an `Arc` to it, so the trace stream can be grouped per
/// cell after the fact (and the cost model can regress duration on
/// `rows`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCtx {
    pub dataset: String,
    pub learner: String,
    pub seed: u64,
    pub rows: u64,
}

thread_local! {
    static CTX: RefCell<Option<Arc<CellCtx>>> = const { RefCell::new(None) };
}

impl CellCtx {
    /// Install this context on the current thread until the returned guard
    /// drops (the previous context, if any, is restored — installs nest).
    /// Disabled path: one relaxed load, the guard is inert and no TLS is
    /// touched.
    #[inline]
    pub fn install(self) -> CellCtxGuard {
        if !enabled() {
            return CellCtxGuard(None);
        }
        let prev = CTX
            .try_with(|c| c.borrow_mut().replace(Arc::new(self)))
            .unwrap_or(None);
        CellCtxGuard(Some(PrevCtx(prev)))
    }
}

struct PrevCtx(Option<Arc<CellCtx>>);

/// RAII guard from [`CellCtx::install`]; restores the previous context on
/// drop.
pub struct CellCtxGuard(Option<PrevCtx>);

impl Drop for CellCtxGuard {
    fn drop(&mut self) {
        if let Some(PrevCtx(prev)) = self.0.take() {
            let _ = CTX.try_with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// The context currently installed on this thread, if any.
pub fn current_cell_ctx() -> Option<Arc<CellCtx>> {
    CTX.try_with(|c| c.borrow().clone()).unwrap_or(None)
}

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram
// ---------------------------------------------------------------------------

/// Monotone event counter. Schedule-invariant for all instruments in the
/// workspace except the `executor.*` family (see DESIGN.md "Observability"
/// for the determinism contract).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).counters.push(self);
    }
}

/// Last-written + high-water-mark gauge (e.g. executor queue depth).
pub struct Gauge {
    name: &'static str,
    last: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            last: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline]
    pub fn set(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.last.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).gauges.push(self);
    }
}

/// Upper bound on bucket count (`bounds` entries plus one overflow bucket).
/// Fixed so the storage can live inline in a `static` with no allocation.
pub const MAX_BUCKETS: usize = 12;

/// Fixed-bucket histogram over `u64` samples (typically microseconds or
/// element counts). `bounds` are inclusive upper edges in ascending order;
/// samples above the last bound land in the overflow bucket. Bounds beyond
/// [`MAX_BUCKETS`]` - 1` are ignored rather than panicking.
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        Histogram {
            name,
            bounds,
            buckets: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    fn used_bounds(&self) -> &'static [u64] {
        let n = self.bounds.len().min(MAX_BUCKETS - 1);
        &self.bounds[..n]
    }

    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        let bounds = self.used_bounds();
        let mut idx = bounds.len(); // overflow bucket
        for (i, b) in bounds.iter().enumerate() {
            if v <= *b {
                idx = i;
                break;
            }
        }
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).histograms.push(self);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// A named span site. `start()` returns an RAII guard that records the
/// duration on drop; per-definition count/total aggregates feed the metrics
/// snapshot (per-stage time shares) while the individual events feed the
/// `--trace` JSON-lines stream.
pub struct SpanDef {
    name: &'static str,
    count: AtomicU64,
    total_ns: AtomicU64,
    registered: AtomicBool,
}

impl SpanDef {
    pub const fn new(name: &'static str) -> Self {
        SpanDef {
            name,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Begin a span. Disabled path: one atomic load, no clock read, no
    /// allocation — the guard is inert.
    #[inline]
    pub fn start(&'static self) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        SpanGuard(Some(ActiveSpan {
            def: self,
            start: Instant::now(),
        }))
    }

    // Durations are carried in whole nanoseconds end to end — both in the
    // per-definition aggregate and in the buffered event — and rounded to
    // microseconds exactly once, at serialization. Truncating each event
    // independently (the old behaviour) let summed child spans exceed
    // their parent by up to 1 µs per child.
    fn record_from(&'static self, start: Instant) {
        let dur_ns = start.elapsed().as_nanos() as u64;
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        push_event(self.name, epoch_nanos(start), dur_ns);
    }

    fn ensure_registered(&'static self) {
        if self.registered.swap(true, Ordering::Relaxed) {
            return;
        }
        lock(&REGISTRY).spans.push(self);
    }
}

struct ActiveSpan {
    def: &'static SpanDef,
    start: Instant,
}

/// RAII guard from [`SpanDef::start`]. Records on drop if recording is
/// still enabled.
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            if enabled() {
                active.def.record_from(active.start);
            }
        }
    }
}

/// The one sanctioned way to measure a duration whose *value* must flow
/// into results (training/test seconds are themselves reported paper
/// metrics). Always reads the clock — the measured number is identical
/// whether tracing is on or off — and additionally records a span event
/// when recording is enabled.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    #[inline]
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed whole microseconds — the sanctioned sample source for
    /// latency [`Histogram`]s (per-item test-then-train timing).
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Stop, returning elapsed seconds; records a span under `def` when
    /// recording is enabled.
    pub fn stop(self, def: &'static SpanDef) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if enabled() {
            def.record_from(self.start);
        }
        secs
    }
}

// ---------------------------------------------------------------------------
// Per-thread event buffers (slot-ordered, like executor result collection)
// ---------------------------------------------------------------------------

/// Per-thread event cap; beyond it events are counted as dropped rather
/// than growing without bound. 2^18 events ≈ 10 MB per thread worst case.
const MAX_THREAD_EVENTS: usize = 1 << 18;

static DROPPED: AtomicU64 = AtomicU64::new(0);

#[derive(Clone)]
struct Event {
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    seq: u32,
    ctx: Option<Arc<CellCtx>>,
}

struct ThreadBuf {
    slot: u32,
    seq: u32,
    events: Vec<Event>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if !self.events.is_empty() {
            lock(&CHUNKS).push((self.slot, std::mem::take(&mut self.events)));
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            slot: 0,
            seq: 0,
            events: Vec::new(),
        })
    };
}

/// Flushed per-thread buffers awaiting export, tagged with their slot.
static CHUNKS: Mutex<Vec<(u32, Vec<Event>)>> = Mutex::new(Vec::new());

/// Tag the current thread's events with a slot index. The executor assigns
/// slot `w + 1` to worker `w` (the spawning thread keeps slot 0), mirroring
/// its slot-ordered result collection so the merged trace ordering is
/// independent of thread scheduling.
pub fn set_thread_slot(slot: u32) {
    let _ = BUF.try_with(|b| b.borrow_mut().slot = slot);
}

fn push_event(name: &'static str, start_ns: u64, dur_ns: u64) {
    let ctx = current_cell_ctx();
    // try_with: events arriving during thread teardown are dropped rather
    // than panicking on a destroyed TLS key.
    let pushed = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        if b.events.len() >= MAX_THREAD_EVENTS {
            return false;
        }
        let seq = b.seq;
        b.seq = b.seq.wrapping_add(1);
        b.events.push(Event {
            name,
            start_ns,
            dur_ns,
            seq,
            ctx,
        });
        true
    });
    if pushed != Ok(true) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Move the calling thread's buffered events into the global chunk list.
/// Worker threads flush automatically on exit (TLS drop) as a backstop,
/// but `std::thread::scope` releases the parent when a worker closure
/// *returns* — before that worker's TLS destructors run — so scoped
/// workers must call this explicitly as their closure's last statement
/// or a parent-side drain can race past their backstop flush. The
/// exporting thread calls this for itself.
pub fn flush_thread() {
    let _ = BUF.try_with(|b| b.borrow_mut().flush());
}

// ---------------------------------------------------------------------------
// Export: trace stream
// ---------------------------------------------------------------------------

/// One exported span event, in final deterministic order. Times are exact
/// nanoseconds; the microsecond fields in the serialized stream are
/// derived from these once, at write time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub slot: u32,
    pub seq: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Cell attribution active when the span was recorded, if any.
    pub ctx: Option<Arc<CellCtx>>,
}

impl TraceEvent {
    /// Epoch-relative start in whole microseconds (serialized form).
    pub fn start_us(&self) -> u64 {
        self.start_ns / 1_000
    }

    /// Duration in whole microseconds (serialized form).
    pub fn dur_us(&self) -> u64 {
        self.dur_ns / 1_000
    }
}

/// Drain all recorded span events in deterministic order: stable-sorted by
/// `(slot, start_ns, seq)`, so the stream's shape does not depend on which
/// thread's buffer reached the chunk list first. Consumes the events.
pub fn drain_events() -> Vec<TraceEvent> {
    flush_thread();
    let chunks = std::mem::take(&mut *lock(&CHUNKS));
    let mut events: Vec<(u32, Event)> = Vec::new();
    for (slot, chunk) in chunks {
        for ev in chunk {
            events.push((slot, ev));
        }
    }
    events.sort_by_key(|(slot, ev)| (*slot, ev.start_ns, ev.seq));
    events
        .into_iter()
        .map(|(slot, ev)| TraceEvent {
            name: ev.name,
            slot,
            seq: ev.seq,
            start_ns: ev.start_ns,
            dur_ns: ev.dur_ns,
            ctx: ev.ctx,
        })
        .collect()
}

/// Number of events discarded because a per-thread buffer hit its cap.
/// Surfaced in every metrics snapshot (`trace.events.dropped`) and in the
/// trace footer, so silent truncation is always detectable.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Serialise one drained event as a schema-v2 span record. Pulled out of
/// [`write_trace_file`] so tests and in-process consumers share the exact
/// byte format.
pub fn render_trace_event(id: usize, ev: &TraceEvent) -> String {
    let mut line = format!(
        "{{\"type\":\"span\",\"id\":{id},\"slot\":{},\"seq\":{},\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"start_ns\":{},\"dur_ns\":{}",
        ev.slot,
        ev.seq,
        json_escape(ev.name),
        ev.start_us(),
        ev.dur_us(),
        ev.start_ns,
        ev.dur_ns,
    );
    if let Some(ctx) = &ev.ctx {
        line.push_str(&format!(
            ",\"dataset\":\"{}\",\"learner\":\"{}\",\"cell_seed\":{},\"rows\":{}",
            json_escape(&ctx.dataset),
            json_escape(&ctx.learner),
            ctx.seed,
            ctx.rows,
        ));
    }
    line.push('}');
    line
}

/// Serialise the schema-v2 trace footer: schema version, number of span
/// records written, and how many events were silently dropped by the
/// per-thread buffer cap (so a truncated trace is detectable after the
/// fact — `trace_check` turns a nonzero `dropped` into a distinct exit
/// code).
pub fn render_trace_footer(events: usize, dropped: u64) -> String {
    format!("{{\"type\":\"footer\",\"schema\":{TRACE_SCHEMA_VERSION},\"events\":{events},\"dropped\":{dropped}}}")
}

/// Write the drained span stream as JSON lines (schema v2). Each span
/// record carries `type`, a monotone `id` assigned after the deterministic
/// merge, the owning `slot`, per-thread `seq`, the span `name`,
/// epoch-relative `start_us`/`dur_us` (rounded once from the exact
/// nanosecond fields `start_ns`/`dur_ns`), and — when the span was
/// recorded under a [`CellCtx`] — the attribution fields `dataset`,
/// `learner`, `cell_seed`, `rows`. The final line is the footer record.
pub fn write_trace_file(path: &Path) -> std::io::Result<()> {
    let events = drain_events();
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    for (id, ev) in events.iter().enumerate() {
        writeln!(out, "{}", render_trace_event(id, ev))?;
    }
    writeln!(
        out,
        "{}",
        render_trace_footer(events.len(), dropped_events())
    )?;
    out.flush()
}

// ---------------------------------------------------------------------------
// Export: metrics snapshot
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    pub last: u64,
    pub max: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// `(inclusive upper bound, count)`; the final entry is the overflow
    /// bucket with bound `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Deterministic quantile estimate from the log buckets: the inclusive
    /// upper bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`. Conservative by construction (the true value is
    /// ≤ the returned bound); samples past the last bound report
    /// `u64::MAX`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bound, c) in &self.buckets {
            cumulative = cumulative.saturating_add(*c);
            if cumulative >= rank {
                return *bound;
            }
        }
        u64::MAX
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    pub count: u64,
    /// Exact summed duration in nanoseconds (see `SpanDef::record_from`).
    pub total_ns: u64,
}

impl SpanSnapshot {
    /// Total in whole microseconds, rounded once from the nanosecond sum.
    pub fn total_us(&self) -> u64 {
        self.total_ns / 1_000
    }
}

/// Point-in-time view of every registered instrument, keyed by name in
/// `BTreeMap`s so iteration (and therefore any rendering) is ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub spans: BTreeMap<String, SpanSnapshot>,
}

pub fn snapshot() -> MetricsSnapshot {
    let reg = lock(&REGISTRY);
    let mut snap = MetricsSnapshot::default();
    for c in &reg.counters {
        snap.counters.insert(c.name.to_string(), c.get());
    }
    for g in &reg.gauges {
        snap.gauges.insert(
            g.name.to_string(),
            GaugeSnapshot {
                last: g.last.load(Ordering::Relaxed),
                max: g.max.load(Ordering::Relaxed),
            },
        );
    }
    for h in &reg.histograms {
        let bounds = h.used_bounds();
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        for (i, b) in bounds.iter().enumerate() {
            buckets.push((*b, h.buckets[i].load(Ordering::Relaxed)));
        }
        buckets.push((u64::MAX, h.buckets[bounds.len()].load(Ordering::Relaxed)));
        snap.histograms.insert(
            h.name.to_string(),
            HistogramSnapshot {
                count: h.count.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
                buckets,
            },
        );
    }
    for s in &reg.spans {
        snap.spans.insert(
            s.name.to_string(),
            SpanSnapshot {
                count: s.count.load(Ordering::Relaxed),
                total_ns: s.total_ns.load(Ordering::Relaxed),
            },
        );
    }
    // Always surfaced (even at zero) so a truncated trace is visible in
    // the metrics table, not only in the trace footer.
    snap.counters
        .insert("trace.events.dropped".to_string(), dropped_events());
    snap
}

impl MetricsSnapshot {
    /// Counters under the schedule-invariant contract: everything except
    /// the `executor.*` family, whose values legitimately depend on which
    /// worker claimed which task, and the `supervise.wall.*` family,
    /// which counts wall-clock watchdog events (machine noise by
    /// definition). Tests assert these are identical across thread
    /// counts.
    pub fn deterministic_counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(name, _)| {
                !name.starts_with("executor.") && !name.starts_with("supervise.wall.")
            })
            .map(|(name, v)| (name.clone(), *v))
            .collect()
    }
}

/// Render the snapshot as an aligned human-readable table (the `--metrics`
/// output). Ordering follows the `BTreeMap` keys, so it is stable.
pub fn render_metrics_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut section = |title: &str, rows: &[(String, String)]| {
        if rows.is_empty() {
            return;
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        out.push_str(title);
        out.push('\n');
        for (k, v) in rows {
            out.push_str(&format!("  {k:<width$}  {v}\n"));
        }
    };
    let counter_rows: Vec<(String, String)> = snap
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect();
    section("counters", &counter_rows);
    let gauge_rows: Vec<(String, String)> = snap
        .gauges
        .iter()
        .map(|(k, g)| (k.clone(), format!("last={} max={}", g.last, g.max)))
        .collect();
    section("gauges", &gauge_rows);
    let span_rows: Vec<(String, String)> = snap
        .spans
        .iter()
        .map(|(k, s)| {
            let total_us = s.total_us();
            let mean = total_us.checked_div(s.count).unwrap_or(0);
            (
                k.clone(),
                format!("count={} total_us={total_us} mean_us={mean}", s.count),
            )
        })
        .collect();
    section("spans", &span_rows);
    let bound_str = |b: u64| {
        if b == u64::MAX {
            "inf".to_string()
        } else {
            b.to_string()
        }
    };
    let hist_rows: Vec<(String, String)> = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("{}:{c}", bound_str(*b)))
                .collect();
            (
                k.clone(),
                format!(
                    "count={} sum={} p50={} p95={} p99={} [{}]",
                    h.count,
                    h.sum,
                    bound_str(h.p50()),
                    bound_str(h.p95()),
                    bound_str(h.p99()),
                    buckets.join(" ")
                ),
            )
        })
        .collect();
    section("histograms", &hist_rows);
    out
}

/// Serialise the snapshot as a single JSON object (hand-rolled: this crate
/// stays dependency-free). Key order is the `BTreeMap` order, so the bytes
/// are stable for identical snapshots.
pub fn metrics_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    push_entries(
        &mut out,
        snap.counters.iter().map(|(k, v)| (k, v.to_string())),
    );
    out.push_str("},\"gauges\":{");
    push_entries(
        &mut out,
        snap.gauges
            .iter()
            .map(|(k, g)| (k, format!("{{\"last\":{},\"max\":{}}}", g.last, g.max))),
    );
    out.push_str("},\"spans\":{");
    push_entries(
        &mut out,
        snap.spans.iter().map(|(k, s)| {
            (
                k,
                format!(
                    "{{\"count\":{},\"total_us\":{},\"total_ns\":{}}}",
                    s.count,
                    s.total_us(),
                    s.total_ns
                ),
            )
        }),
    );
    out.push_str("},\"histograms\":{");
    push_entries(
        &mut out,
        snap.histograms.iter().map(|(k, h)| {
            let bound = |b: u64| {
                if b == u64::MAX {
                    "null".to_string()
                } else {
                    b.to_string()
                }
            };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(b, c)| format!("[{},{c}]", bound(*b)))
                .collect();
            (
                k,
                format!(
                    "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                    h.count,
                    h.sum,
                    bound(h.p50()),
                    bound(h.p95()),
                    bound(h.p99()),
                    buckets.join(",")
                ),
            )
        }),
    );
    out.push_str("}}");
    out
}

fn push_entries<'a, I>(out: &mut String, entries: I)
where
    I: Iterator<Item = (&'a String, String)>,
{
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":");
        out.push_str(&v);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Reset (tests and benchmarks)
// ---------------------------------------------------------------------------

/// Zero every registered instrument, discard buffered events, and restart
/// the epoch. Leaves the enabled flag as-is. Buffers owned by *live* other
/// threads are not reachable and are left alone; in practice worker threads
/// are scoped and have exited by the time anything resets.
pub fn reset() {
    {
        let reg = lock(&REGISTRY);
        for c in &reg.counters {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in &reg.gauges {
            g.last.store(0, Ordering::Relaxed);
            g.max.store(0, Ordering::Relaxed);
        }
        for h in &reg.histograms {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
        for s in &reg.spans {
            s.count.store(0, Ordering::Relaxed);
            s.total_ns.store(0, Ordering::Relaxed);
        }
    }
    lock(&CHUNKS).clear();
    DROPPED.store(0, Ordering::Relaxed);
    let _ = BUF.try_with(|b| {
        let mut b = b.borrow_mut();
        b.events.clear();
        b.seq = 0;
    });
    *lock(&EPOCH) = Some(Instant::now());
}
