//! Property-based tests for the neural substrate: parameter round-trips,
//! softmax simplex membership, loss nonnegativity, gradient-descent
//! sanity and exemplar-buffer invariants over arbitrary inputs.

use oeb_linalg::Matrix;
use oeb_nn::{softmax, ExemplarBuffer, Mlp, Objective, SgdConfig, TrainOpts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn params_roundtrip_preserves_function(
        seed in 0u64..1000,
        x in prop::collection::vec(-10.0..10.0f64, 4),
    ) {
        let m = Mlp::new(4, &[8, 4], 3, Objective::CrossEntropy, seed);
        let mut clone = Mlp::new(4, &[8, 4], 3, Objective::CrossEntropy, seed + 1);
        clone.set_params(&m.get_params());
        prop_assert_eq!(m.forward(&x), clone.forward(&x));
    }

    #[test]
    fn softmax_is_a_probability_simplex(z in prop::collection::vec(-50.0..50.0f64, 1..8)) {
        let p = softmax(&z);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
        // Softmax is shift-invariant.
        let shifted: Vec<f64> = z.iter().map(|v| v + 7.0).collect();
        let q = softmax(&shifted);
        for (a, b) in p.iter().zip(&q) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn losses_are_nonnegative(
        seed in 0u64..100,
        x in prop::collection::vec(-5.0..5.0f64, 3),
        y in 0usize..4,
    ) {
        let clf = Mlp::new(3, &[6], 4, Objective::CrossEntropy, seed);
        prop_assert!(clf.loss(&x, y as f64) >= 0.0);
        let reg = Mlp::new(3, &[6], 1, Objective::SquaredError, seed);
        prop_assert!(reg.loss(&x, 1.5) >= 0.0);
    }

    #[test]
    fn one_sgd_step_on_one_sample_reduces_its_loss(
        seed in 0u64..200,
        x in prop::collection::vec(-2.0..2.0f64, 3),
        y in -2.0..2.0f64,
    ) {
        let mut m = Mlp::new(3, &[8], 1, Objective::SquaredError, seed);
        let before = m.loss(&x, y);
        prop_assume!(before > 1e-6);
        let xs = Matrix::from_rows(std::slice::from_ref(&x));
        m.train_batch(&xs, &[y], &[0], 0.001, &TrainOpts::default());
        let after = m.loss(&x, y);
        prop_assert!(after <= before + 1e-9, "loss rose from {before} to {after}");
    }

    #[test]
    fn fisher_diagonal_is_nonnegative(seed in 0u64..100, n in 1usize..20) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 5) as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let m = Mlp::new(2, &[4], 2, Objective::CrossEntropy, seed);
        let f = m.fisher_diagonal(&Matrix::from_rows(&rows), &ys, 50);
        prop_assert_eq!(f.len(), m.n_params());
        prop_assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn exemplar_buffer_never_exceeds_capacity(
        capacity in 0usize..40,
        rounds in 1usize..4,
        labels in prop::collection::vec(0usize..3, 10..40),
    ) {
        let model = Mlp::new(2, &[4], 3, Objective::CrossEntropy, 1);
        let mut buf = ExemplarBuffer::new(capacity);
        for _ in 0..rounds {
            let rows: Vec<Vec<f64>> = labels
                .iter()
                .map(|&c| vec![c as f64, 1.0 - c as f64])
                .collect();
            let ys: Vec<f64> = labels.iter().map(|&c| c as f64).collect();
            buf.update(&model, &Matrix::from_rows(&rows), &ys, true);
            prop_assert!(buf.len() <= capacity.max(3), "buffer {} over capacity {}", buf.len(), capacity);
        }
    }

    #[test]
    fn training_config_is_deterministic(seed in 0u64..50) {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 8) as f64 / 8.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let xs = Matrix::from_rows(&rows);
        let cfg = SgdConfig { epochs: 3, batch_size: 16, lr: 0.05, seed };
        let run = || {
            let mut m = Mlp::new(1, &[6], 1, Objective::SquaredError, seed);
            oeb_nn::train_window(&mut m, &xs, &ys, &cfg, &oeb_nn::Regularizer::None);
            m.get_params()
        };
        prop_assert_eq!(run(), run());
    }
}
