//! Property-based tests for the neural substrate: parameter round-trips,
//! softmax simplex membership, loss nonnegativity, gradient-descent
//! sanity and exemplar-buffer invariants over arbitrary inputs.

use oeb_linalg::Matrix;
use oeb_nn::{softmax, ExemplarBuffer, Mlp, Objective, SgdConfig, TrainOpts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn params_roundtrip_preserves_function(
        seed in 0u64..1000,
        x in prop::collection::vec(-10.0..10.0f64, 4),
    ) {
        let m = Mlp::new(4, &[8, 4], 3, Objective::CrossEntropy, seed);
        let mut clone = Mlp::new(4, &[8, 4], 3, Objective::CrossEntropy, seed + 1);
        clone.set_params(&m.get_params());
        prop_assert_eq!(m.forward(&x), clone.forward(&x));
    }

    #[test]
    fn softmax_is_a_probability_simplex(z in prop::collection::vec(-50.0..50.0f64, 1..8)) {
        let p = softmax(&z);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
        // Softmax is shift-invariant.
        let shifted: Vec<f64> = z.iter().map(|v| v + 7.0).collect();
        let q = softmax(&shifted);
        for (a, b) in p.iter().zip(&q) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn losses_are_nonnegative(
        seed in 0u64..100,
        x in prop::collection::vec(-5.0..5.0f64, 3),
        y in 0usize..4,
    ) {
        let clf = Mlp::new(3, &[6], 4, Objective::CrossEntropy, seed);
        prop_assert!(clf.loss(&x, y as f64) >= 0.0);
        let reg = Mlp::new(3, &[6], 1, Objective::SquaredError, seed);
        prop_assert!(reg.loss(&x, 1.5) >= 0.0);
    }

    #[test]
    fn one_sgd_step_on_one_sample_reduces_its_loss(
        seed in 0u64..200,
        x in prop::collection::vec(-2.0..2.0f64, 3),
        y in -2.0..2.0f64,
    ) {
        let mut m = Mlp::new(3, &[8], 1, Objective::SquaredError, seed);
        let before = m.loss(&x, y);
        prop_assume!(before > 1e-6);
        let xs = Matrix::from_rows(std::slice::from_ref(&x));
        m.train_batch(&xs, &[y], &[0], 0.001, &TrainOpts::default());
        let after = m.loss(&x, y);
        prop_assert!(after <= before + 1e-9, "loss rose from {before} to {after}");
    }

    #[test]
    fn fisher_diagonal_is_nonnegative(seed in 0u64..100, n in 1usize..20) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 5) as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let m = Mlp::new(2, &[4], 2, Objective::CrossEntropy, seed);
        let f = m.fisher_diagonal(&Matrix::from_rows(&rows), &ys, 50);
        prop_assert_eq!(f.len(), m.n_params());
        prop_assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn exemplar_buffer_never_exceeds_capacity(
        capacity in 0usize..40,
        rounds in 1usize..4,
        labels in prop::collection::vec(0usize..3, 10..40),
    ) {
        let model = Mlp::new(2, &[4], 3, Objective::CrossEntropy, 1);
        let mut buf = ExemplarBuffer::new(capacity);
        for _ in 0..rounds {
            let rows: Vec<Vec<f64>> = labels
                .iter()
                .map(|&c| vec![c as f64, 1.0 - c as f64])
                .collect();
            let ys: Vec<f64> = labels.iter().map(|&c| c as f64).collect();
            buf.update(&model, &Matrix::from_rows(&rows), &ys, true);
            prop_assert!(buf.len() <= capacity.max(3), "buffer {} over capacity {}", buf.len(), capacity);
        }
    }

    /// The tentpole contract of the GEMM training path: batched
    /// `train_batch` must be bit-identical to the retained per-sample
    /// reference across degenerate shapes (1-row batches, single-neuron
    /// layers) and with the LwF / EWC options on. Data mixes in exact
    /// zeros, huge magnitudes (overflow to inf exercises the no-skip
    /// chains) and NaN (exercises the skipped-update path).
    #[test]
    fn batched_train_matches_reference_bitwise(
        seed in 0u64..1000,
        arch in prop_oneof![
            Just((1usize, vec![], 1usize)),
            Just((1, vec![1], 1)),
            Just((3, vec![1, 4], 2)),
            Just((5, vec![8, 4], 3)),
            Just((2, vec![16, 8], 2)),
        ],
        n_rows in 1usize..70,
        objective_sel in 0usize..2,
        reg_sel in 0usize..3,
        lambda in 0.01..5.0f64,
        data in prop::collection::vec(
            prop_oneof![
                5 => -3.0..3.0f64,
                1 => Just(0.0),
                1 => Just(1e300),
                1 => Just(f64::NAN),
            ],
            1..64,
        ),
    ) {
        let (input, hidden, output) = arch;
        let objective = if objective_sel == 0 && output > 1 {
            Objective::CrossEntropy
        } else {
            Objective::SquaredError
        };
        let (width, n_out) = if objective == Objective::SquaredError {
            (input, 1)
        } else {
            (input, output)
        };
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|r| (0..width).map(|c| data[(r * 31 + c * 7) % data.len()]).collect())
            .collect();
        let ys: Vec<f64> = (0..n_rows).map(|r| (r % n_out.max(2)) as f64).collect();
        let xs = Matrix::from_rows(&rows);
        let mut batched = Mlp::new(input, &hidden, n_out, objective, seed);
        let mut reference = batched.clone();
        let teacher = Mlp::new(input, &hidden, n_out, objective, seed ^ 0x5eed);
        let anchor = batched.get_params();
        let fisher: Vec<f64> = (0..batched.n_params()).map(|i| (i % 5) as f64 * 0.25).collect();
        let opts = match reg_sel {
            1 => TrainOpts { ewc: Some((&anchor, &fisher, lambda)), ..Default::default() },
            2 => TrainOpts { distill: Some((&teacher, lambda)), ..Default::default() },
            _ => TrainOpts::default(),
        };
        // Several steps, including 1-row batches and a ragged tail.
        let all: Vec<usize> = (0..n_rows).collect();
        for step in 0..3 {
            let batch: Vec<usize> = match step {
                0 => vec![all[seed as usize % n_rows]],
                1 => all.clone(),
                _ => all.iter().copied().step_by(2).collect(),
            };
            let lb = batched.train_batch(&xs, &ys, &batch, 0.01, &opts);
            let lr_ = reference.train_batch_reference(&xs, &ys, &batch, 0.01, &opts);
            prop_assert!(
                lb.to_bits() == lr_.to_bits() || (lb.is_nan() && lr_.is_nan()),
                "loss diverged at step {}: {} vs {}", step, lb, lr_
            );
            let pb = batched.get_params();
            let pr = reference.get_params();
            for (i, (a, b)) in pb.iter().zip(&pr).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "param {} diverged at step {}: {} vs {}", i, step, a, b
                );
            }
        }
    }

    #[test]
    fn training_config_is_deterministic(seed in 0u64..50) {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 8) as f64 / 8.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let xs = Matrix::from_rows(&rows);
        let cfg = SgdConfig { epochs: 3, batch_size: 16, lr: 0.05, seed };
        let run = || {
            let mut m = Mlp::new(1, &[6], 1, Objective::SquaredError, seed);
            oeb_nn::train_window(&mut m, &xs, &ys, &cfg, &oeb_nn::Regularizer::None);
            m.get_params()
        };
        prop_assert_eq!(run(), run());
    }
}
