//! A multilayer perceptron with manual backpropagation and SGD, matching
//! the paper's default architecture (§6.1): ReLU hidden layers of
//! [32, 16, 8], linear output head, cross-entropy loss for classification
//! and MSE for regression, learning rate 0.01, batch size 64.
//!
//! The trainer deliberately performs **no gradient clipping** by default:
//! the paper's §5.3 finding that a single absurd cell can blow a neural
//! network up (loss → ∞) is a behaviour this reproduction must preserve.

use oeb_linalg::{kernels, Matrix};
use oeb_trace::Counter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mini-batches trained through the batched GEMM path.
static GEMM_BATCHES: Counter = Counter::new("train.mlp.gemm_batches");

/// The learning objective of the output head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Softmax + cross-entropy over `n` classes; targets are class indices.
    CrossEntropy,
    /// Mean squared error; output width 1, targets are values.
    SquaredError,
}

/// One dense layer (row-major `out x in` weights).
#[derive(Debug, Clone)]
struct Layer {
    w: Matrix,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut StdRng) -> Layer {
        // He initialisation for the ReLU stack.
        let scale = (2.0 / n_in as f64).sqrt();
        let w = (0..n_in * n_out)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                scale * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        Layer {
            w: Matrix::from_vec(n_out, n_in, w),
            b: vec![0.0; n_out],
            n_in,
            n_out,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            // dot_from starts the chain at the bias, preserving the
            // historical `z = b; z += w*x` accumulation order.
            out.push(kernels::dot_from(self.b[o], self.w.row(o), x));
        }
    }
}

/// Reusable batch buffers for [`Mlp::train_batch`]: gathered inputs,
/// per-layer activation matrices, delta ping-pong matrices, and the
/// softmax scratch that replaces the LwF branch's per-sample `collect()`
/// allocations. Contents are transient; cloning a model resets nothing
/// observable.
#[derive(Debug, Clone, Default)]
struct TrainScratch {
    /// Post-activation matrices, one per layer boundary (`acts[0]` is the
    /// gathered input batch).
    acts: Vec<Matrix>,
    /// Output-layer delta, swapped backward through the stack.
    delta: Matrix,
    /// Delta of the previous (shallower) layer during backprop.
    prev_delta: Matrix,
    /// Teacher forward ping-pong buffers for the LwF branch.
    teacher_a: Matrix,
    teacher_b: Matrix,
    /// Temperature-scaled logits for one sample.
    scaled: Vec<f64>,
    /// Softmax outputs for one sample (student / teacher).
    soft_cur: Vec<f64>,
    soft_prev: Vec<f64>,
    /// Flat per-layer gradient accumulators `(gw, gb)`.
    grads: Vec<(Vec<f64>, Vec<f64>)>,
}

/// Extra terms mixed into a training step.
#[derive(Default)]
pub struct TrainOpts<'a> {
    /// EWC penalty: `(theta_star, fisher_diagonal, lambda)`. Adds
    /// `lambda * F_i * (theta_i - theta*_i)` to the flat gradient.
    pub ewc: Option<(&'a [f64], &'a [f64], f64)>,
    /// LwF distillation: `(previous model, lambda)`. For classification a
    /// temperature-2 soft-target KL; for regression an MSE pull toward the
    /// previous model's outputs.
    pub distill: Option<(&'a Mlp, f64)>,
}

/// The MLP model.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Layer>,
    /// Output objective.
    pub objective: Objective,
    /// Reused batch buffers for the GEMM training path.
    scratch: TrainScratch,
}

impl Mlp {
    /// Builds an MLP `input -> hidden... -> output` with He-initialised
    /// ReLU hidden layers and a linear head.
    pub fn new(
        input: usize,
        hidden: &[usize],
        output: usize,
        objective: Objective,
        seed: u64,
    ) -> Mlp {
        assert!(input > 0 && output > 0, "degenerate layer sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sizes = vec![input];
        sizes.extend_from_slice(hidden);
        sizes.push(output);
        let layers = sizes
            .windows(2)
            // oeb-lint: allow(panic-in-library) -- windows(2) yields exactly two elements
            .map(|p| Layer::new(p[0], p[1], &mut rng))
            .collect();
        Mlp {
            layers,
            objective,
            scratch: TrainScratch::default(),
        }
    }

    /// Number of scalar parameters.
    pub fn n_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.as_slice().len() + l.b.len())
            .sum()
    }

    /// Approximate in-memory size of the model state in bytes
    /// (parameters at f64); used by the Table 6 reproduction.
    pub fn memory_bytes(&self) -> usize {
        self.n_params() * std::mem::size_of::<f64>()
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].n_in // oeb-lint: allow(panic-in-library) -- layers non-empty: new() always pushes input+output sizes
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").n_out // oeb-lint: allow(panic-in-library) -- layers non-empty by construction
    }

    /// Flattened copy of all parameters (weights then biases, per layer).
    pub fn get_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_params());
        for l in &self.layers {
            out.extend_from_slice(l.w.as_slice());
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Restores parameters from a flat buffer produced by
    /// [`Mlp::get_params`].
    pub fn set_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.n_params(), "parameter count mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            let wl = l.w.as_slice().len();
            l.w.as_mut_slice().copy_from_slice(&flat[off..off + wl]);
            off += wl;
            let bl = l.b.len();
            l.b.copy_from_slice(&flat[off..off + bl]);
            off += bl;
        }
    }

    /// Forward pass returning the raw output (logits or regression value).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if i + 1 < self.layers.len() {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Activations of the last hidden layer (iCaRL's representation
    /// space). For a network with no hidden layer this is the input.
    pub fn hidden_repr(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers[..self.layers.len() - 1] {
            layer.forward(&cur, &mut next);
            for v in &mut next {
                *v = v.max(0.0);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Predicted class (argmax of logits).
    pub fn predict_class(&self, x: &[f64]) -> usize {
        let out = self.forward(x);
        argmax(&out)
    }

    /// Per-sample loss under the objective.
    pub fn loss(&self, x: &[f64], y: f64) -> f64 {
        let out = self.forward(x);
        match self.objective {
            Objective::CrossEntropy => {
                let p = softmax(&out);
                let c = (y as usize).min(p.len() - 1);
                -(p[c].max(1e-12)).ln()
            }
            Objective::SquaredError => {
                // oeb-lint: allow(panic-in-library) -- squared-error nets have output dim 1
                let d = out[0] - y;
                d * d
            }
        }
    }

    /// One SGD step on a mini-batch; returns the mean batch loss
    /// (before the step, excluding penalty terms).
    ///
    /// `rows` selects the batch rows of `xs`/`ys`.
    ///
    /// The whole batch runs through the GEMM kernels in
    /// `oeb_linalg::kernels`: forward as `X·Wᵀ + bias`
    /// ([`kernels::matmul_xwt_bias_into`]), the backward delta as a
    /// no-skip `Δ·W` product, and gradient accumulation as `Δᵀ·A`. Each
    /// kernel keeps every output element's accumulation chain in the
    /// historical per-sample order (bias-seeded, k-ascending, row-
    /// ascending respectively), so the result is bit-identical to
    /// [`Mlp::train_batch_reference`] — asserted by the proptests in
    /// `tests/proptests.rs` and re-checked by `bench_train`.
    pub fn train_batch(
        &mut self,
        xs: &Matrix,
        ys: &[f64],
        rows: &[usize],
        lr: f64,
        opts: &TrainOpts<'_>,
    ) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        GEMM_BATCHES.incr();
        let n_layers = self.layers.len();
        let batch = rows.len();
        // The scratch moves out of `self` for the duration of the step so
        // the borrows below stay disjoint from the layer borrows.
        let mut s = std::mem::take(&mut self.scratch);
        s.acts.resize_with(n_layers + 1, Matrix::default);
        if s.grads.len() != n_layers {
            s.grads = self
                .layers
                .iter()
                .map(|l| (vec![0.0; l.w.as_slice().len()], vec![0.0; l.b.len()]))
                .collect();
        } else {
            for (gw, gb) in &mut s.grads {
                gw.fill(0.0);
                gb.fill(0.0);
            }
        }

        // Gather the batch rows once; the GEMMs then stream them densely.
        // oeb-lint: allow(panic-in-library) -- acts has n_layers + 1 >= 1 entries by construction
        s.acts[0].reset_zeroed(batch, self.input_dim());
        for (bi, &r) in rows.iter().enumerate() {
            // oeb-lint: allow(panic-in-library) -- acts has n_layers + 1 >= 1 entries by construction
            s.acts[0].row_mut(bi).copy_from_slice(xs.row(r));
        }

        // Batched forward with cached post-activations.
        for li in 0..n_layers {
            let layer = &self.layers[li];
            let (done, rest) = s.acts.split_at_mut(li + 1);
            // oeb-lint: allow(panic-in-library) -- li < n_layers, so rest is non-empty
            let next = &mut rest[0];
            next.reset_zeroed(batch, layer.n_out);
            kernels::matmul_xwt_bias_into(&done[li], &layer.w, &layer.b, next);
            if li + 1 < n_layers {
                for v in next.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
        }

        // Output-layer delta and data loss, row by row in batch order (the
        // loss chain accumulates exactly as the per-sample loop did).
        let mut total_loss = 0.0;
        {
            let out = &s.acts[n_layers];
            s.delta.reset_zeroed(batch, self.output_dim());
            match self.objective {
                Objective::CrossEntropy => {
                    for bi in 0..batch {
                        softmax_into(out.row(bi), &mut s.soft_cur);
                        let drow = s.delta.row_mut(bi);
                        drow.copy_from_slice(&s.soft_cur);
                        let c = (ys[rows[bi]] as usize).min(drow.len() - 1);
                        total_loss += -(drow[c].max(1e-12)).ln();
                        drow[c] -= 1.0;
                    }
                }
                Objective::SquaredError => {
                    for bi in 0..batch {
                        let diff = out[(bi, 0)] - ys[rows[bi]];
                        total_loss += diff * diff;
                        s.delta[(bi, 0)] = 2.0 * diff;
                    }
                }
            }

            // LwF distillation adds to the output delta. The teacher runs
            // the same batched forward; temperature scaling and softmax go
            // through reused scratch instead of per-sample collect()s.
            if let Some((prev, lambda)) = &opts.distill {
                // oeb-lint: allow(panic-in-library) -- acts[0] is the input batch, always present
                prev.forward_batch(&s.acts[0], &mut s.teacher_a, &mut s.teacher_b);
                let prev_out = &s.teacher_a;
                match self.objective {
                    Objective::CrossEntropy => {
                        const T: f64 = 2.0;
                        for bi in 0..batch {
                            s.scaled.clear();
                            s.scaled.extend(out.row(bi).iter().map(|v| v / T));
                            softmax_into(&s.scaled, &mut s.soft_cur);
                            s.scaled.clear();
                            s.scaled.extend(prev_out.row(bi).iter().map(|v| v / T));
                            softmax_into(&s.scaled, &mut s.soft_prev);
                            for ((d, &sc), &sp) in s
                                .delta
                                .row_mut(bi)
                                .iter_mut()
                                .zip(&s.soft_cur)
                                .zip(&s.soft_prev)
                            {
                                // d/dz of T^2 * CE(soft_prev, softmax(z/T)).
                                *d += lambda * T * (sc - sp);
                            }
                        }
                    }
                    Objective::SquaredError => {
                        for bi in 0..batch {
                            s.delta[(bi, 0)] += lambda * 2.0 * (out[(bi, 0)] - prev_out[(bi, 0)]);
                        }
                    }
                }
            }
        }

        // Batched backward: bias gradients as column sums (row-ascending,
        // like the per-sample `gb[o] += d`), weight gradients as `Δᵀ·A`
        // (row-ascending per element, like the per-sample axpy), and the
        // next delta as a no-skip `Δ·W` (k-ascending from 0.0) followed by
        // the elementwise ReLU mask.
        for li in (0..n_layers).rev() {
            let layer = &self.layers[li];
            let (gw, gb) = &mut s.grads[li];
            kernels::accum_col_sums(&s.delta, gb);
            kernels::matmul_at_b_accum_into(&s.delta, &s.acts[li], gw);
            if li > 0 {
                s.prev_delta.reset_zeroed(batch, layer.n_in);
                kernels::matmul_noskip_into(&s.delta, &layer.w, &mut s.prev_delta);
                // ReLU mask of the layer input (which was an output of
                // the previous layer, already rectified).
                for (pd, &a) in s
                    .prev_delta
                    .as_mut_slice()
                    .iter_mut()
                    .zip(s.acts[li].as_slice())
                {
                    if a <= 0.0 {
                        *pd = 0.0;
                    }
                }
                std::mem::swap(&mut s.delta, &mut s.prev_delta);
            }
        }

        let loss = self.apply_gradients(&mut s.grads, batch, lr, opts, total_loss);
        self.scratch = s;
        loss
    }

    /// Batched forward through the stack: `input` is a gathered batch,
    /// `cur`/`next` are ping-pong scratch, and the result lands in `cur`.
    /// Runs the same bias-seeded GEMM chains as the per-sample
    /// [`Mlp::forward`].
    fn forward_batch(&self, input: &Matrix, cur: &mut Matrix, next: &mut Matrix) {
        cur.reset_zeroed(input.rows(), input.cols());
        cur.as_mut_slice().copy_from_slice(input.as_slice());
        for (i, layer) in self.layers.iter().enumerate() {
            next.reset_zeroed(input.rows(), layer.n_out);
            kernels::matmul_xwt_bias_into(cur, &layer.w, &layer.b, next);
            if i + 1 < self.layers.len() {
                for v in next.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            std::mem::swap(cur, next);
        }
    }

    /// The historical per-sample `train_batch` body, retained verbatim as
    /// the bitwise reference for the batched path (proptested in
    /// `tests/proptests.rs`, timed by `bench_train`).
    pub fn train_batch_reference(
        &mut self,
        xs: &Matrix,
        ys: &[f64],
        rows: &[usize],
        lr: f64,
        opts: &TrainOpts<'_>,
    ) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let n_layers = self.layers.len();
        let mut grads: Vec<(Vec<f64>, Vec<f64>)> = self
            .layers
            .iter()
            .map(|l| (vec![0.0; l.w.as_slice().len()], vec![0.0; l.b.len()]))
            .collect();
        let mut total_loss = 0.0;
        // Activation and delta scratch reused across the whole batch: the
        // historical per-sample `Vec` allocations dominated small-window
        // training time.
        let mut acts: Vec<Vec<f64>> = vec![Vec::new(); n_layers + 1];
        let mut delta: Vec<f64> = Vec::new();
        let mut prev_delta: Vec<f64> = Vec::new();

        for &r in rows {
            let x = xs.row(r);
            let y = ys[r];
            // Forward with cached post-activations.
            // oeb-lint: allow(panic-in-library) -- acts has n_layers + 1 >= 1 entries by construction
            acts[0].clear();
            // oeb-lint: allow(panic-in-library) -- acts has n_layers + 1 >= 1 entries by construction
            acts[0].extend_from_slice(x);
            for li in 0..n_layers {
                let (done, rest) = acts.split_at_mut(li + 1);
                // oeb-lint: allow(panic-in-library) -- li < n_layers, so rest is non-empty
                let next = &mut rest[0];
                self.layers[li].forward(&done[li], next);
                if li + 1 < n_layers {
                    for v in next.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
            }
            let out = &acts[n_layers];

            // Output-layer delta.
            delta.clear();
            match self.objective {
                Objective::CrossEntropy => {
                    softmax_into(out, &mut delta);
                    let c = (y as usize).min(delta.len() - 1);
                    total_loss += -(delta[c].max(1e-12)).ln();
                    delta[c] -= 1.0;
                }
                Objective::SquaredError => {
                    // oeb-lint: allow(panic-in-library) -- squared-error nets have output dim 1
                    let diff = out[0] - y;
                    total_loss += diff * diff;
                    delta.push(2.0 * diff);
                }
            }

            // LwF distillation adds to the output delta.
            if let Some((prev, lambda)) = &opts.distill {
                let prev_out = prev.forward(x);
                match self.objective {
                    Objective::CrossEntropy => {
                        const T: f64 = 2.0;
                        let soft_cur = softmax(&out.iter().map(|v| v / T).collect::<Vec<_>>());
                        let soft_prev =
                            softmax(&prev_out.iter().map(|v| v / T).collect::<Vec<_>>());
                        for ((d, &sc), &sp) in delta.iter_mut().zip(&soft_cur).zip(&soft_prev) {
                            // d/dz of T^2 * CE(soft_prev, softmax(z/T)).
                            *d += lambda * T * (sc - sp);
                        }
                    }
                    Objective::SquaredError => {
                        // oeb-lint: allow(panic-in-library) -- squared-error nets have output dim 1
                        delta[0] += lambda * 2.0 * (out[0] - prev_out[0]);
                    }
                }
            }

            // Backward through the stack; both accumulations are fused
            // axpy kernels with the historical element order.
            for li in (0..n_layers).rev() {
                let input = &acts[li];
                let layer = &self.layers[li];
                let (gw, gb) = &mut grads[li];
                for o in 0..layer.n_out {
                    let d = delta[o];
                    gb[o] += d;
                    kernels::axpy(d, input, &mut gw[o * layer.n_in..(o + 1) * layer.n_in]);
                }
                if li > 0 {
                    prev_delta.clear();
                    prev_delta.resize(layer.n_in, 0.0);
                    for o in 0..layer.n_out {
                        kernels::axpy(delta[o], layer.w.row(o), &mut prev_delta);
                    }
                    // ReLU mask of the layer input (which was an output of
                    // the previous layer, already rectified).
                    for (pd, &a) in prev_delta.iter_mut().zip(&acts[li]) {
                        if a <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                    std::mem::swap(&mut delta, &mut prev_delta);
                }
            }
        }

        self.apply_gradients(&mut grads, rows.len(), lr, opts, total_loss)
    }

    /// The shared tail of both training paths: EWC penalty gradients,
    /// the non-finite-gradient step skip, and the SGD update. Operates on
    /// the already-accumulated data gradients, so batched and reference
    /// paths agree bitwise iff their gradients do.
    fn apply_gradients(
        &mut self,
        grads: &mut [(Vec<f64>, Vec<f64>)],
        batch: usize,
        lr: f64,
        opts: &TrainOpts<'_>,
        total_loss: f64,
    ) -> f64 {
        let inv = 1.0 / batch as f64;

        // EWC penalty gradient on the flat parameter vector.
        if let Some((theta_star, fisher, lambda)) = &opts.ewc {
            let mut off = 0;
            for (li, layer) in self.layers.iter().enumerate() {
                let (gw, gb) = &mut grads[li];
                for (i, (g, w)) in gw.iter_mut().zip(layer.w.as_slice()).enumerate() {
                    *g += lambda * fisher[off + i] * (w - theta_star[off + i]) / inv;
                }
                off += layer.w.as_slice().len();
                for (i, g) in gb.iter_mut().enumerate() {
                    *g += lambda * fisher[off + i] * (layer.b[i] - theta_star[off + i]) / inv;
                }
                off += layer.b.len();
            }
        }

        // SGD update. A single non-finite accumulated gradient (overflow
        // on a corrupted batch, NaN inputs that slipped past imputation)
        // would poison the weights permanently, so the whole step is
        // skipped instead — the loss is still reported so the caller's
        // divergence policy can react.
        let finite = grads
            .iter()
            .all(|(gw, gb)| gw.iter().chain(gb).all(|g| g.is_finite()));
        if finite {
            for (layer, (gw, gb)) in self.layers.iter_mut().zip(grads.iter()) {
                for (w, g) in layer.w.as_mut_slice().iter_mut().zip(gw) {
                    *w -= lr * g * inv;
                }
                for (b, g) in layer.b.iter_mut().zip(gb) {
                    *b -= lr * g * inv;
                }
            }
        }
        total_loss * inv
    }

    /// Diagonal Fisher information estimated from per-sample gradients of
    /// the loss at the current parameters (EWC's importance weights).
    pub fn fisher_diagonal(&self, xs: &Matrix, ys: &[f64], max_samples: usize) -> Vec<f64> {
        let mut fisher = vec![0.0; self.n_params()];
        let n = xs.rows().min(max_samples);
        if n == 0 {
            return fisher;
        }
        for r in 0..n {
            let g = self.sample_gradient(xs.row(r), ys[r]);
            for (f, gi) in fisher.iter_mut().zip(&g) {
                *f += gi * gi;
            }
        }
        for f in &mut fisher {
            *f /= n as f64;
        }
        fisher
    }

    /// Flat gradient of the loss for a single sample.
    fn sample_gradient(&self, x: &[f64], y: f64) -> Vec<f64> {
        // Forward with caches.
        let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward(&cur, &mut next);
            if i + 1 < self.layers.len() {
                for v in &mut next {
                    *v = v.max(0.0);
                }
            }
            acts.push(next.clone());
            std::mem::swap(&mut cur, &mut next);
        }
        let out = acts.last().expect("output"); // oeb-lint: allow(panic-in-library) -- forward() yields one activation per layer
        let mut delta: Vec<f64> = match self.objective {
            Objective::CrossEntropy => {
                let mut p = softmax(out);
                let c = (y as usize).min(p.len() - 1);
                p[c] -= 1.0;
                p
            }
            // oeb-lint: allow(panic-in-library) -- squared-error nets have output dim 1
            Objective::SquaredError => vec![2.0 * (out[0] - y)],
        };
        let mut flat = vec![0.0; self.n_params()];
        // Compute layer offsets (weights then biases per layer).
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for l in &self.layers {
            offsets.push(off);
            off += l.w.as_slice().len() + l.b.len();
        }
        for li in (0..self.layers.len()).rev() {
            let layer = &self.layers[li];
            let input = &acts[li];
            let base = offsets[li];
            for o in 0..layer.n_out {
                let d = delta[o];
                for (i, &xi) in input.iter().enumerate() {
                    flat[base + o * layer.n_in + i] = d * xi;
                }
                flat[base + layer.w.as_slice().len() + o] = d;
            }
            if li > 0 {
                let mut prev = vec![0.0; layer.n_in];
                for o in 0..layer.n_out {
                    kernels::axpy(delta[o], layer.w.row(o), &mut prev);
                }
                for (p, &a) in prev.iter_mut().zip(&acts[li]) {
                    if a <= 0.0 {
                        *p = 0.0;
                    }
                }
                delta = prev;
            }
        }
        flat
    }
}

/// Softmax with max-shift for stability.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(z.len());
    softmax_into(z, &mut out);
    out
}

/// [`softmax`] into a reused buffer (bit-identical, allocation-free).
pub fn softmax_into(z: &[f64], out: &mut Vec<f64>) {
    out.clear();
    let m = z.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        // Degenerate logits (the paper's exploding-NN scenario): a uniform
        // distribution keeps downstream arithmetic defined.
        out.resize(z.len(), 1.0 / z.len() as f64);
        return;
    }
    out.extend(z.iter().map(|v| (v - m).exp()));
    let sum = kernels::sum(out);
    for e in out.iter_mut() {
        *e /= sum;
    }
}

/// Index of the largest element (first on ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<f64>) {
        // A noisy XOR-ish separable problem.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            let jitter = ((i % 7) as f64 - 3.0) * 0.02;
            rows.push(vec![a + jitter, b - jitter]);
            ys.push(if (a + b) as usize % 2 == 1 { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn learns_xor_classification() {
        let (xs, ys) = xor_data();
        let mut mlp = Mlp::new(2, &[16, 8], 2, Objective::CrossEntropy, 1);
        let rows: Vec<usize> = (0..xs.rows()).collect();
        for _ in 0..300 {
            mlp.train_batch(&xs, &ys, &rows, 0.1, &TrainOpts::default());
        }
        let correct = (0..xs.rows())
            .filter(|&r| mlp.predict_class(xs.row(r)) == ys[r] as usize)
            .count();
        assert!(correct > 380, "accuracy {correct}/400");
    }

    #[test]
    fn learns_linear_regression() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 10) as f64 / 10.0, ((i / 10) % 10) as f64 / 10.0])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - r[1]).collect();
        let xs = Matrix::from_rows(&rows);
        let mut mlp = Mlp::new(2, &[16], 1, Objective::SquaredError, 2);
        let all: Vec<usize> = (0..xs.rows()).collect();
        let mut last = f64::INFINITY;
        for _ in 0..500 {
            last = mlp.train_batch(&xs, &ys, &all, 0.05, &TrainOpts::default());
        }
        assert!(last < 0.02, "final loss {last}");
    }

    #[test]
    fn nonfinite_gradients_do_not_poison_the_weights() {
        let xs = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![0.5, f64::INFINITY]]);
        let ys = vec![0.0, 1.0];
        let mut mlp = Mlp::new(2, &[4], 1, Objective::SquaredError, 5);
        let before = mlp.get_params();
        mlp.train_batch(&xs, &ys, &[0, 1], 0.1, &TrainOpts::default());
        let after = mlp.get_params();
        assert_eq!(before, after, "update should be skipped on NaN gradients");
        assert!(after.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn params_roundtrip() {
        let mlp = Mlp::new(3, &[4], 2, Objective::CrossEntropy, 3);
        let p = mlp.get_params();
        let mut other = Mlp::new(3, &[4], 2, Objective::CrossEntropy, 99);
        other.set_params(&p);
        assert_eq!(other.get_params(), p);
        let x = [0.5, -0.2, 1.0];
        assert_eq!(mlp.forward(&x), other.forward(&x));
    }

    #[test]
    fn param_count_matches_architecture() {
        // 3 inputs -> [32, 16, 8] -> 2 outputs:
        // (3*32+32) + (32*16+16) + (16*8+8) + (8*2+2) = 128+528+136+18.
        let mlp = Mlp::new(3, &[32, 16, 8], 2, Objective::CrossEntropy, 0);
        assert_eq!(mlp.n_params(), 128 + 528 + 136 + 18);
        assert_eq!(mlp.memory_bytes(), mlp.n_params() * 8);
    }

    #[test]
    fn ewc_penalty_pulls_params_toward_anchor() {
        let (xs, ys) = xor_data();
        let mut free = Mlp::new(2, &[8], 2, Objective::CrossEntropy, 5);
        let mut anchored = free.clone();
        let anchor = free.get_params();
        let fisher = vec![1.0; free.n_params()];
        let rows: Vec<usize> = (0..64).collect();
        for _ in 0..50 {
            free.train_batch(&xs, &ys, &rows, 0.1, &TrainOpts::default());
            anchored.train_batch(
                &xs,
                &ys,
                &rows,
                0.1,
                &TrainOpts {
                    ewc: Some((&anchor, &fisher, 10.0)),
                    ..Default::default()
                },
            );
        }
        let drift_free: f64 = free
            .get_params()
            .iter()
            .zip(&anchor)
            .map(|(a, b)| (a - b).abs())
            .sum();
        let drift_anchored: f64 = anchored
            .get_params()
            .iter()
            .zip(&anchor)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            drift_anchored < drift_free,
            "anchored {drift_anchored} vs free {drift_free}"
        );
    }

    #[test]
    fn distillation_keeps_outputs_near_previous_model() {
        let (xs, ys) = xor_data();
        let teacher = Mlp::new(2, &[8], 2, Objective::CrossEntropy, 6);
        let mut plain = teacher.clone();
        let mut distilled = teacher.clone();
        let rows: Vec<usize> = (0..64).collect();
        for _ in 0..100 {
            plain.train_batch(&xs, &ys, &rows, 0.1, &TrainOpts::default());
            distilled.train_batch(
                &xs,
                &ys,
                &rows,
                0.1,
                &TrainOpts {
                    distill: Some((&teacher, 5.0)),
                    ..Default::default()
                },
            );
        }
        // Output agreement with the teacher on fresh points.
        let probe = [0.3, 0.7];
        let t = softmax(&teacher.forward(&probe));
        let p = softmax(&plain.forward(&probe));
        let d = softmax(&distilled.forward(&probe));
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        assert!(dist(&t, &d) < dist(&t, &p) + 1e-9);
    }

    #[test]
    fn fisher_is_nonnegative_and_sized() {
        let (xs, ys) = xor_data();
        let mlp = Mlp::new(2, &[8], 2, Objective::CrossEntropy, 7);
        let f = mlp.fisher_diagonal(&xs, &ys, 100);
        assert_eq!(f.len(), mlp.n_params());
        assert!(f.iter().all(|&v| v >= 0.0));
        assert!(f.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn hidden_repr_is_rectified() {
        let mlp = Mlp::new(3, &[5, 4], 2, Objective::CrossEntropy, 8);
        let h = mlp.hidden_repr(&[1.0, -1.0, 0.5]);
        assert_eq!(h.len(), 4);
        assert!(h.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn outlier_input_can_explode_regression_loss() {
        // The §5.3 vulnerability: a single absurd input value drives the
        // un-clipped network's loss to astronomical values.
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 8) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let xs = Matrix::from_rows(&rows);
        let mut mlp = Mlp::new(1, &[8], 1, Objective::SquaredError, 9);
        let all: Vec<usize> = (0..64).collect();
        for _ in 0..50 {
            mlp.train_batch(&xs, &ys, &all, 0.01, &TrainOpts::default());
        }
        let sane_loss = mlp.loss(&[4.0], 4.0);
        // One corrupted training batch with a 999,990 input.
        let bad = Matrix::from_rows(&[vec![999_990.0]]);
        mlp.train_batch(&bad, &[0.0], &[0], 0.01, &TrainOpts::default());
        let post_loss = mlp.loss(&[4.0], 4.0);
        assert!(
            !post_loss.is_finite() || post_loss > sane_loss * 100.0,
            "expected loss blow-up: before {sane_loss}, after {post_loss}"
        );
    }

    #[test]
    fn softmax_handles_nonfinite_logits() {
        let p = softmax(&[f64::NAN, f64::INFINITY]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }
}
