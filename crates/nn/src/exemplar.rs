//! iCaRL-style exemplar buffer — Rebuffi et al., CVPR 2017.
//!
//! Stores a bounded set of past samples chosen by *herding*: per class,
//! samples are greedily selected so the running mean of their hidden
//! representations tracks the class-mean representation. Following the
//! paper's adaptation (§6.1), regression streams treat all samples as a
//! single class, and only the exemplar-selection strategy is used (the
//! nearest-mean classifier is disregarded).

use crate::mlp::Mlp;
use oeb_linalg::Matrix;
use std::collections::BTreeMap;

/// A bounded exemplar store.
#[derive(Debug, Clone)]
pub struct ExemplarBuffer {
    /// Total capacity across classes (paper default 100).
    pub capacity: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
}

impl ExemplarBuffer {
    /// Creates an empty buffer with the given capacity.
    pub fn new(capacity: usize) -> ExemplarBuffer {
        ExemplarBuffer {
            capacity,
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Number of stored exemplars.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Approximate buffer memory in bytes (for the Table 6 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.xs.iter().map(|x| x.len() * 8).sum::<usize>() + self.ys.len() * 8
    }

    /// The stored exemplars as a matrix + target vector, or `None` when
    /// empty.
    pub fn as_training_data(&self) -> Option<(Matrix, Vec<f64>)> {
        if self.xs.is_empty() {
            None
        } else {
            Some((Matrix::from_rows(&self.xs), self.ys.clone()))
        }
    }

    /// Rebuilds the buffer from the union of the current buffer and the
    /// new window, herding in `model`'s hidden-representation space.
    ///
    /// `classify` controls grouping: classification groups by label,
    /// regression pools everything into one group.
    pub fn update(&mut self, model: &Mlp, xs: &Matrix, ys: &[f64], classify: bool) {
        assert_eq!(xs.rows(), ys.len());
        // Candidate pool = old exemplars + new window.
        let mut pool_x: Vec<Vec<f64>> = std::mem::take(&mut self.xs);
        let mut pool_y: Vec<f64> = std::mem::take(&mut self.ys);
        for r in 0..xs.rows() {
            pool_x.push(xs.row(r).to_vec());
            pool_y.push(ys[r]);
        }
        if pool_x.is_empty() || self.capacity == 0 {
            return;
        }

        // Group candidates.
        let mut groups: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        for (i, &y) in pool_y.iter().enumerate() {
            let key = if classify { y as i64 } else { 0 };
            groups.entry(key).or_default().push(i);
        }
        let quota = (self.capacity / groups.len()).max(1);

        let mut keep: Vec<usize> = Vec::with_capacity(self.capacity);
        for members in groups.values() {
            keep.extend(herd(model, &pool_x, members, quota));
            if keep.len() >= self.capacity {
                keep.truncate(self.capacity);
                break;
            }
        }
        self.xs = keep.iter().map(|&i| pool_x[i].clone()).collect();
        self.ys = keep.iter().map(|&i| pool_y[i]).collect();
    }
}

/// Greedy herding: picks up to `quota` members whose representation mean
/// best tracks the group mean.
fn herd(model: &Mlp, pool: &[Vec<f64>], members: &[usize], quota: usize) -> Vec<usize> {
    let reprs: Vec<Vec<f64>> = members
        .iter()
        .map(|&i| model.hidden_repr(&pool[i]))
        .collect();
    let dim = reprs.first().map(Vec::len).unwrap_or(0);
    if dim == 0 {
        return members.iter().take(quota).copied().collect();
    }
    let mut mean = vec![0.0; dim];
    for r in &reprs {
        for (m, &v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= reprs.len() as f64;
    }

    let mut chosen: Vec<usize> = Vec::new();
    let mut chosen_sum = vec![0.0; dim];
    let mut used = vec![false; members.len()];
    for step in 0..quota.min(members.len()) {
        let k = (step + 1) as f64;
        let mut best: Option<(usize, f64)> = None;
        for (slot, r) in reprs.iter().enumerate() {
            if used[slot] {
                continue;
            }
            // Distance between the class mean and the mean including this
            // candidate.
            let mut d = 0.0;
            for i in 0..dim {
                let cand_mean = (chosen_sum[i] + r[i]) / k;
                let diff = mean[i] - cand_mean;
                d += diff * diff;
            }
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((slot, d)),
            }
        }
        let (slot, _) = best.expect("unused candidates remain"); // oeb-lint: allow(panic-in-library) -- k <= reprs.len() leaves a free slot each round
        used[slot] = true;
        for (s, &v) in chosen_sum.iter_mut().zip(&reprs[slot]) {
            *s += v;
        }
        chosen.push(members[slot]);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Objective;

    fn model(input: usize) -> Mlp {
        Mlp::new(input, &[8, 4], 2, Objective::CrossEntropy, 11)
    }

    fn two_class_window() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            rows.push(vec![c as f64 * 4.0 + (i % 5) as f64 * 0.1, -(c as f64)]);
            ys.push(c as f64);
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn respects_capacity() {
        let (xs, ys) = two_class_window();
        let m = model(2);
        let mut buf = ExemplarBuffer::new(10);
        buf.update(&m, &xs, &ys, true);
        assert!(buf.len() <= 10);
        assert!(!buf.is_empty());
    }

    #[test]
    fn keeps_both_classes() {
        let (xs, ys) = two_class_window();
        let m = model(2);
        let mut buf = ExemplarBuffer::new(10);
        buf.update(&m, &xs, &ys, true);
        let (_, kept_ys) = buf.as_training_data().unwrap();
        assert!(kept_ys.contains(&0.0));
        assert!(kept_ys.contains(&1.0));
    }

    #[test]
    fn regression_mode_pools_one_group() {
        let (xs, ys) = two_class_window();
        let m = model(2);
        let mut buf = ExemplarBuffer::new(7);
        buf.update(&m, &xs, &ys, false);
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn accumulates_across_windows_within_capacity() {
        let (xs, ys) = two_class_window();
        let m = model(2);
        let mut buf = ExemplarBuffer::new(20);
        buf.update(&m, &xs, &ys, true);
        let first = buf.len();
        buf.update(&m, &xs, &ys, true);
        assert!(buf.len() <= 20);
        assert!(buf.len() >= first.min(20));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let (xs, ys) = two_class_window();
        let m = model(2);
        let mut buf = ExemplarBuffer::new(0);
        buf.update(&m, &xs, &ys, true);
        assert!(buf.is_empty());
        assert!(buf.as_training_data().is_none());
    }

    #[test]
    fn memory_accounting() {
        let (xs, ys) = two_class_window();
        let m = model(2);
        let mut buf = ExemplarBuffer::new(10);
        buf.update(&m, &xs, &ys, true);
        assert_eq!(buf.memory_bytes(), buf.len() * 2 * 8 + buf.len() * 8);
    }
}
