//! # oeb-nn
//!
//! Neural stream learners for the OEBench reproduction: a from-scratch
//! MLP with manual backpropagation ([`mlp::Mlp`]), the window-level SGD
//! training loop with the paper's defaults ([`trainer`]), the EWC and LwF
//! continual-learning regularisers (plugged in through
//! [`trainer::Regularizer`]), and the iCaRL herding exemplar buffer
//! ([`exemplar::ExemplarBuffer`]).

// Index loops over parallel numeric buffers are clearer than iterator
// chains in these kernels.
#![allow(clippy::needless_range_loop)]

pub mod exemplar;
pub mod mlp;
pub mod trainer;

pub use exemplar::ExemplarBuffer;
pub use mlp::{argmax, softmax, softmax_into, Mlp, Objective, TrainOpts};
pub use trainer::{train_window, train_window_reference, Regularizer, SgdConfig};
