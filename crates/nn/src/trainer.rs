//! Window-level SGD training loop with the paper's defaults
//! (10 epochs, batch size 64, learning rate 0.01) and the pluggable
//! regularisers used by the EWC / LwF variants.

use crate::mlp::{Mlp, TrainOpts};
use oeb_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SGD hyper-parameters (§6.1 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Local epochs per window (paper default 10).
    pub epochs: usize,
    /// Mini-batch size (paper default 64).
    pub batch_size: usize,
    /// Learning rate (paper default 0.01).
    pub lr: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            epochs: 10,
            batch_size: 64,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Continual-learning regulariser applied during window training.
#[derive(Debug, Clone)]
pub enum Regularizer {
    /// Plain SGD.
    None,
    /// Elastic Weight Consolidation: quadratic penalty around the previous
    /// window's parameters weighted by the Fisher diagonal.
    Ewc {
        /// Parameters after the previous window.
        anchor: Vec<f64>,
        /// Fisher diagonal estimated on the previous window.
        fisher: Vec<f64>,
        /// Regularisation factor (paper sweeps 1e2..1e5).
        lambda: f64,
    },
    /// Learning without Forgetting: distillation toward the previous
    /// window's model outputs.
    Lwf {
        /// Snapshot of the model after the previous window (boxed: an
        /// `Mlp` carries batch scratch and dwarfs the other variants).
        prev: Box<Mlp>,
        /// Regularisation factor (paper sweeps 1e-3..10).
        lambda: f64,
    },
}

/// Trains `model` on the window `(xs, ys)` for `cfg.epochs` epochs of
/// shuffled mini-batches; returns the mean data loss over the final epoch.
pub fn train_window(
    model: &mut Mlp,
    xs: &Matrix,
    ys: &[f64],
    cfg: &SgdConfig,
    reg: &Regularizer,
) -> f64 {
    train_window_impl(model, xs, ys, cfg, reg, false)
}

/// [`train_window`] driving the retained per-sample
/// [`Mlp::train_batch_reference`] instead of the batched GEMM path.
/// Exists so `bench_train` and the equivalence tests can time/compare
/// whole-window training on both paths with identical shuffling.
pub fn train_window_reference(
    model: &mut Mlp,
    xs: &Matrix,
    ys: &[f64],
    cfg: &SgdConfig,
    reg: &Regularizer,
) -> f64 {
    train_window_impl(model, xs, ys, cfg, reg, true)
}

fn train_window_impl(
    model: &mut Mlp,
    xs: &Matrix,
    ys: &[f64],
    cfg: &SgdConfig,
    reg: &Regularizer,
    reference: bool,
) -> f64 {
    assert_eq!(xs.rows(), ys.len(), "feature/target length mismatch");
    if xs.rows() == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..xs.rows()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut last_epoch_loss = 0.0;
    // The regulariser borrows are identical for every mini-batch, so the
    // options are built once per window, not once per chunk.
    let opts = match reg {
        Regularizer::None => TrainOpts::default(),
        Regularizer::Ewc {
            anchor,
            fisher,
            lambda,
        } => TrainOpts {
            ewc: Some((anchor, fisher, *lambda)),
            ..Default::default()
        },
        Regularizer::Lwf { prev, lambda } => TrainOpts {
            distill: Some((prev, *lambda)),
            ..Default::default()
        },
    };
    for _epoch in 0..cfg.epochs.max(1) {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            epoch_loss += if reference {
                model.train_batch_reference(xs, ys, chunk, cfg.lr, &opts)
            } else {
                model.train_batch(xs, ys, chunk, cfg.lr, &opts)
            };
            batches += 1;
        }
        last_epoch_loss = epoch_loss / batches.max(1) as f64;
    }
    last_epoch_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Objective;

    fn line_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 16) as f64 / 16.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (xs, ys) = line_data(256);
        let mut m = Mlp::new(1, &[8], 1, Objective::SquaredError, 1);
        let first = train_window(
            &mut m,
            &xs,
            &ys,
            &SgdConfig {
                epochs: 1,
                ..Default::default()
            },
            &Regularizer::None,
        );
        let later = train_window(
            &mut m,
            &xs,
            &ys,
            &SgdConfig {
                epochs: 30,
                ..Default::default()
            },
            &Regularizer::None,
        );
        assert!(later < first, "first {first}, later {later}");
    }

    #[test]
    fn more_epochs_reach_lower_loss() {
        let (xs, ys) = line_data(256);
        let run = |epochs| {
            let mut m = Mlp::new(1, &[8], 1, Objective::SquaredError, 2);
            train_window(
                &mut m,
                &xs,
                &ys,
                &SgdConfig {
                    epochs,
                    ..Default::default()
                },
                &Regularizer::None,
            )
        };
        assert!(run(40) < run(1));
    }

    #[test]
    fn empty_window_is_a_noop() {
        let xs = Matrix::zeros(0, 1);
        let mut m = Mlp::new(1, &[4], 1, Objective::SquaredError, 3);
        let before = m.get_params();
        let loss = train_window(&mut m, &xs, &[], &SgdConfig::default(), &Regularizer::None);
        assert_eq!(loss, 0.0);
        assert_eq!(m.get_params(), before);
    }

    #[test]
    fn moderate_ewc_lambda_limits_parameter_drift() {
        let (xs, ys) = line_data(256);
        let cfg = SgdConfig {
            epochs: 5,
            ..Default::default()
        };
        let drift_under = |reg: &Regularizer| {
            let mut m = Mlp::new(1, &[8], 1, Objective::SquaredError, 4);
            let anchor = m.get_params();
            train_window(&mut m, &xs, &ys, &cfg, reg);
            m.get_params()
                .iter()
                .zip(&anchor)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / anchor.len() as f64
        };
        let free = drift_under(&Regularizer::None);
        let m0 = Mlp::new(1, &[8], 1, Objective::SquaredError, 4);
        let anchored = drift_under(&Regularizer::Ewc {
            anchor: m0.get_params(),
            fisher: vec![1.0; m0.n_params()],
            lambda: 50.0,
        });
        assert!(anchored < free, "anchored {anchored} vs free {free}");
    }

    #[test]
    fn excessive_ewc_lambda_explodes() {
        // The paper (§6.1) observes that regularisation factors beyond
        // ~1e5 lead to loss explosions; with SGD the EWC step
        // lr * lambda * (theta - theta*) overshoots and diverges.
        let (xs, ys) = line_data(256);
        let mut m = Mlp::new(1, &[8], 1, Objective::SquaredError, 4);
        let anchor = m.get_params();
        let fisher = vec![1.0; m.n_params()];
        train_window(
            &mut m,
            &xs,
            &ys,
            &SgdConfig {
                epochs: 5,
                ..Default::default()
            },
            &Regularizer::Ewc {
                anchor,
                fisher,
                lambda: 1e6,
            },
        );
        let params = m.get_params();
        let diverged = params.iter().any(|p| !p.is_finite() || p.abs() > 1e3);
        assert!(diverged, "expected divergence, params stayed sane");
    }
}
