//! Typed harness errors.
//!
//! Every failure mode of the evaluation pipeline maps to one
//! [`HarnessError`] variant with a stable [`exit_code`](HarnessError::exit_code),
//! so a sweep can record *why* a (dataset, learner) pair failed and the
//! CLI can signal the class of failure to calling scripts.

/// Why a harness run could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The configuration itself is unusable (bad rate, zero k, ...).
    InvalidConfig(String),
    /// The algorithm does not apply to the task (ARF on regression).
    NotApplicable {
        /// Algorithm name.
        algorithm: String,
        /// Task description.
        task: String,
    },
    /// The stream has fewer than the two windows prequential needs.
    InsufficientWindows {
        /// Windows found.
        found: usize,
    },
    /// No window survived (e.g. every window dropped by fault injection).
    EmptyStream,
    /// A window arrived with the wrong column count and the degradation
    /// policy forbids skipping it.
    SchemaMismatch {
        /// Source window index.
        window: usize,
        /// Expected feature width.
        expected: usize,
        /// Observed feature width.
        got: usize,
    },
    /// Imputation left non-finite cells and fallback is disabled.
    ImputationFailed {
        /// Source window index.
        window: usize,
        /// What went wrong.
        detail: String,
    },
    /// The learner's loss went non-finite more often than the retry
    /// budget allows.
    NonFiniteLoss {
        /// Source window index of the final failure.
        window: usize,
        /// Model resets spent before giving up.
        retries: usize,
    },
    /// The run panicked and was caught by the sweep isolation layer.
    Panicked(String),
    /// Filesystem failure (checkpoint file, export target, ...).
    Io(String),
    /// A checkpoint file exists but cannot be parsed.
    Checkpoint(String),
    /// The cell exceeded its supervision budget — a logical deadline
    /// (windows / items) or the wall-clock watchdog — and was cancelled
    /// cooperatively instead of hanging the sweep.
    CellTimedOut {
        /// Windows entered before the deadline fired.
        windows: usize,
        /// Items trained before the deadline fired.
        items: usize,
        /// `true` when the wall-clock watchdog fired (machine-dependent);
        /// `false` for a logical budget, which is deterministic.
        wall: bool,
    },
    /// Every retry of the cell failed; it is parked rather than aborting
    /// the sweep.
    Quarantined {
        /// Attempts spent (first run plus retries).
        attempts: usize,
        /// `kind()` of the final failure.
        last_kind: String,
        /// Display text of the final failure.
        reason: String,
    },
}

impl HarnessError {
    /// Stable process exit code for this failure class. `0` is success
    /// and `1`/`2` are reserved for generic and usage errors, so typed
    /// failures start at 3.
    pub fn exit_code(&self) -> i32 {
        match self {
            HarnessError::InvalidConfig(_) => 3,
            HarnessError::NotApplicable { .. } => 4,
            HarnessError::InsufficientWindows { .. } => 5,
            HarnessError::EmptyStream => 6,
            HarnessError::SchemaMismatch { .. } => 7,
            HarnessError::ImputationFailed { .. } => 8,
            HarnessError::NonFiniteLoss { .. } => 9,
            HarnessError::Panicked(_) => 10,
            HarnessError::Io(_) => 11,
            HarnessError::Checkpoint(_) => 12,
            HarnessError::CellTimedOut { .. } => 13,
            HarnessError::Quarantined { .. } => 14,
        }
    }

    /// Short kebab-case identifier used in checkpoint records.
    pub fn kind(&self) -> &'static str {
        match self {
            HarnessError::InvalidConfig(_) => "invalid-config",
            HarnessError::NotApplicable { .. } => "not-applicable",
            HarnessError::InsufficientWindows { .. } => "insufficient-windows",
            HarnessError::EmptyStream => "empty-stream",
            HarnessError::SchemaMismatch { .. } => "schema-mismatch",
            HarnessError::ImputationFailed { .. } => "imputation-failed",
            HarnessError::NonFiniteLoss { .. } => "non-finite-loss",
            HarnessError::Panicked(_) => "panicked",
            HarnessError::Io(_) => "io",
            HarnessError::Checkpoint(_) => "checkpoint",
            HarnessError::CellTimedOut { .. } => "cell-timed-out",
            HarnessError::Quarantined { .. } => "quarantined",
        }
    }

    /// Is the failure worth another attempt? Structural mismatches
    /// (wrong task, too few windows, unusable config) fail identically
    /// every time; everything else — panics, non-finite losses, I/O,
    /// wall-clock timeouts — may be transient or fault-injected, so the
    /// supervision layer retries them. A *logical* timeout is excluded:
    /// it is a deterministic function of the stream, so a retry would
    /// burn budget to reach the same deadline.
    pub fn is_retryable(&self) -> bool {
        match self {
            HarnessError::InvalidConfig(_)
            | HarnessError::NotApplicable { .. }
            | HarnessError::InsufficientWindows { .. }
            | HarnessError::Quarantined { .. } => false,
            HarnessError::CellTimedOut { wall, .. } => *wall,
            _ => true,
        }
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            HarnessError::NotApplicable { algorithm, task } => {
                write!(f, "{algorithm} does not apply to {task}")
            }
            HarnessError::InsufficientWindows { found } => {
                write!(
                    f,
                    "prequential evaluation needs at least 2 windows, found {found}"
                )
            }
            HarnessError::EmptyStream => write!(f, "no window survived the stream"),
            HarnessError::SchemaMismatch {
                window,
                expected,
                got,
            } => write!(
                f,
                "window {window}: expected {expected} feature columns, got {got}"
            ),
            HarnessError::ImputationFailed { window, detail } => {
                write!(f, "window {window}: imputation failed: {detail}")
            }
            HarnessError::NonFiniteLoss { window, retries } => write!(
                f,
                "window {window}: loss went non-finite after {retries} model resets"
            ),
            HarnessError::Panicked(m) => write!(f, "run panicked: {m}"),
            HarnessError::Io(m) => write!(f, "io error: {m}"),
            HarnessError::Checkpoint(m) => write!(f, "bad checkpoint: {m}"),
            HarnessError::CellTimedOut {
                windows,
                items,
                wall,
            } => write!(
                f,
                "cell exceeded its {} deadline after {windows} windows / {items} items",
                if *wall { "wall-clock" } else { "logical" }
            ),
            HarnessError::Quarantined {
                attempts,
                last_kind,
                reason,
            } => write!(
                f,
                "quarantined after {attempts} attempts (last failure {last_kind}: {reason})"
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn variants() -> Vec<HarnessError> {
        vec![
            HarnessError::InvalidConfig("k = 0".into()),
            HarnessError::NotApplicable {
                algorithm: "ARF".into(),
                task: "Regression".into(),
            },
            HarnessError::InsufficientWindows { found: 1 },
            HarnessError::EmptyStream,
            HarnessError::SchemaMismatch {
                window: 3,
                expected: 10,
                got: 9,
            },
            HarnessError::ImputationFailed {
                window: 2,
                detail: "NaN left".into(),
            },
            HarnessError::NonFiniteLoss {
                window: 8,
                retries: 2,
            },
            HarnessError::Panicked("index out of bounds".into()),
            HarnessError::Io("permission denied".into()),
            HarnessError::Checkpoint("truncated line".into()),
            HarnessError::CellTimedOut {
                windows: 5,
                items: 200,
                wall: false,
            },
            HarnessError::Quarantined {
                attempts: 3,
                last_kind: "panicked".into(),
                reason: "run panicked: boom".into(),
            },
        ]
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let codes: Vec<i32> = variants().iter().map(HarnessError::exit_code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "duplicate exit codes");
        assert!(codes.iter().all(|&c| c > 2), "codes collide with 0/1/2");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds: Vec<&str> = variants().iter().map(HarnessError::kind).collect();
        let mut unique = kinds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn display_names_the_failure() {
        let e = HarnessError::SchemaMismatch {
            window: 3,
            expected: 10,
            got: 9,
        };
        let text = e.to_string();
        assert!(text.contains("window 3") && text.contains("10") && text.contains('9'));
    }

    #[test]
    fn retryability_matches_the_failure_class() {
        assert!(!HarnessError::InvalidConfig("k = 0".into()).is_retryable());
        assert!(!HarnessError::NotApplicable {
            algorithm: "ARF".into(),
            task: "Regression".into(),
        }
        .is_retryable());
        assert!(!HarnessError::InsufficientWindows { found: 1 }.is_retryable());
        // Logical deadlines are deterministic — retrying repeats them.
        assert!(!HarnessError::CellTimedOut {
            windows: 5,
            items: 200,
            wall: false,
        }
        .is_retryable());
        // Wall-clock timeouts are machine noise — worth another attempt.
        assert!(HarnessError::CellTimedOut {
            windows: 5,
            items: 200,
            wall: true,
        }
        .is_retryable());
        assert!(HarnessError::Panicked("boom".into()).is_retryable());
        assert!(HarnessError::NonFiniteLoss {
            window: 8,
            retries: 2,
        }
        .is_retryable());
    }
}
