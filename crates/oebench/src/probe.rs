//! Lightweight probe models used by the concept-drift stage of the
//! statistics pipeline (§4.3): following the paper (which follows the
//! Menelaus examples), classification streams are probed with Gaussian
//! Naive Bayes and regression streams with a linear model; the probes'
//! error streams feed the concept-drift detectors, and the probe is
//! retrained on recent data whenever a drift fires.

use oeb_linalg::{ridge_regression, Matrix};

/// Gaussian Naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    n_classes: usize,
    /// Per-class log priors.
    log_priors: Vec<f64>,
    /// Per-class per-feature (mean, variance).
    stats: Vec<Vec<(f64, f64)>>,
}

impl GaussianNb {
    /// Fits the classifier; rows with NaN cells contribute only their
    /// finite features.
    pub fn fit(xs: &Matrix, ys: &[f64], n_classes: usize) -> GaussianNb {
        assert!(n_classes > 0);
        assert_eq!(xs.rows(), ys.len());
        let d = xs.cols();
        let mut counts = vec![0.0f64; n_classes];
        let mut sums = vec![vec![0.0f64; d]; n_classes];
        let mut sq_sums = vec![vec![0.0f64; d]; n_classes];
        let mut feat_counts = vec![vec![0.0f64; d]; n_classes];
        for r in 0..xs.rows() {
            let c = (ys[r] as usize).min(n_classes - 1);
            counts[c] += 1.0;
            for (f, &x) in xs.row(r).iter().enumerate() {
                if x.is_finite() {
                    sums[c][f] += x;
                    sq_sums[c][f] += x * x;
                    feat_counts[c][f] += 1.0;
                }
            }
        }
        let total: f64 = counts.iter().sum::<f64>().max(1.0);
        let log_priors = counts
            .iter()
            .map(|&c| ((c + 1.0) / (total + n_classes as f64)).ln())
            .collect();
        let stats = (0..n_classes)
            .map(|c| {
                (0..d)
                    .map(|f| {
                        let n = feat_counts[c][f];
                        if n < 1.0 {
                            (0.0, 1.0)
                        } else {
                            let mean = sums[c][f] / n;
                            let var = (sq_sums[c][f] / n - mean * mean).max(1e-9);
                            (mean, var)
                        }
                    })
                    .collect()
            })
            .collect();
        GaussianNb {
            n_classes,
            log_priors,
            stats,
        }
    }

    /// Predicted class of a sample (NaN features are skipped).
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.n_classes {
            let mut score = self.log_priors[c];
            for (f, &v) in x.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let (mean, var) = self.stats[c][f];
                score += -0.5 * ((v - mean) * (v - mean) / var + var.ln());
            }
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }
}

/// Ridge linear-regression probe with intercept.
#[derive(Debug, Clone)]
pub struct LinearProbe {
    /// Weights, last entry is the intercept.
    weights: Vec<f64>,
}

impl LinearProbe {
    /// Fits on `(xs, ys)` with mild ridge regularisation; NaN features are
    /// treated as 0 (the harness imputes before probing, so this is only a
    /// safety net).
    pub fn fit(xs: &Matrix, ys: &[f64]) -> LinearProbe {
        assert_eq!(xs.rows(), ys.len());
        let rows: Vec<Vec<f64>> = (0..xs.rows())
            .map(|r| {
                let mut v: Vec<f64> = xs
                    .row(r)
                    .iter()
                    .map(|&x| if x.is_finite() { x } else { 0.0 })
                    .collect();
                v.push(1.0);
                v
            })
            .collect();
        let weights = ridge_regression(&Matrix::from_rows(&rows), ys, 1e-3)
            .unwrap_or_else(|| vec![0.0; xs.cols() + 1]);
        LinearProbe { weights }
    }

    /// Predicted value.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut out = *self.weights.last().expect("intercept present");
        for (w, &v) in self.weights.iter().zip(x) {
            out += w * if v.is_finite() { v } else { 0.0 };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nb_separates_two_gaussians() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let c = i % 2;
                vec![c as f64 * 6.0 + (i % 5) as f64 * 0.1]
            })
            .collect();
        let ys: Vec<f64> = (0..200).map(|i| (i % 2) as f64).collect();
        let xs = Matrix::from_rows(&rows);
        let nb = GaussianNb::fit(&xs, &ys, 2);
        assert_eq!(nb.predict(&[0.2]), 0);
        assert_eq!(nb.predict(&[6.1]), 1);
    }

    #[test]
    fn nb_uses_priors_for_uninformative_features() {
        // 90% class 0; a useless constant feature.
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![1.0]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 90 { 0.0 } else { 1.0 }).collect();
        let nb = GaussianNb::fit(&Matrix::from_rows(&rows), &ys, 2);
        assert_eq!(nb.predict(&[1.0]), 0);
    }

    #[test]
    fn nb_skips_nan_features() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 2) as f64 * 4.0, 0.5]).collect();
        let ys: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let nb = GaussianNb::fit(&Matrix::from_rows(&rows), &ys, 2);
        assert_eq!(nb.predict(&[4.0, f64::NAN]), 1);
    }

    #[test]
    fn linear_probe_recovers_coefficients() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1] + 3.0).collect();
        let probe = LinearProbe::fit(&Matrix::from_rows(&rows), &ys);
        let pred = probe.predict(&[3.0, 5.0]);
        assert!((pred - 4.0).abs() < 0.05, "pred {pred}");
    }

    #[test]
    fn linear_probe_tolerates_nan() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let probe = LinearProbe::fit(&Matrix::from_rows(&rows), &ys);
        assert!(probe.predict(&[f64::NAN]).is_finite());
    }
}
