//! The algorithm-recommendation decision tree of the paper's Figure 9,
//! distilled from the 55-dataset sweep (§6.2): which algorithm to reach
//! for given the task type and the stream's drift / anomaly / missing
//! levels, plus the efficiency escape hatch of §6.3 (trees when time or
//! memory is tight).

use crate::learners::Algorithm;
use oeb_synth::Level;

/// A context the recommendation tree dispatches on.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// True for classification streams.
    pub classification: bool,
    /// Drift level of the stream.
    pub drift: Level,
    /// Anomaly level.
    pub anomaly: Level,
    /// Missing-value level.
    pub missing: Level,
    /// True when throughput or memory constraints dominate (§6.3).
    pub resource_constrained: bool,
}

fn high(level: Level) -> bool {
    matches!(level, Level::MediumHigh | Level::High)
}

/// Ranked algorithm recommendations for a scenario, first is best.
///
/// Encodes the paper's Figure 9 narrative:
/// * tight time/memory budgets → DT or GBDT (§6.3);
/// * classification, low anomaly → tree family (SEA-GBDT under high
///   drift, SEA-DT otherwise);
/// * classification, higher anomaly → iCaRL under high drift (exemplars
///   mitigate forgetting), naive NN otherwise;
/// * regression, high missing values → trees, with iCaRL as the NN
///   alternative;
/// * regression, low missing values → naive NN / SEA-NN.
pub fn recommend(s: &Scenario) -> Vec<Algorithm> {
    if s.resource_constrained {
        return vec![Algorithm::NaiveDt, Algorithm::NaiveGbdt];
    }
    if s.classification {
        if !high(s.anomaly) {
            if high(s.drift) {
                vec![Algorithm::SeaGbdt, Algorithm::NaiveGbdt, Algorithm::SeaDt]
            } else {
                vec![Algorithm::SeaDt, Algorithm::NaiveGbdt]
            }
        } else if high(s.drift) {
            vec![Algorithm::Icarl, Algorithm::NaiveNn, Algorithm::SeaDt]
        } else {
            vec![Algorithm::NaiveNn, Algorithm::Icarl]
        }
    } else if high(s.missing) {
        vec![Algorithm::SeaDt, Algorithm::Icarl, Algorithm::NaiveDt]
    } else if high(s.drift) {
        vec![Algorithm::NaiveNn, Algorithm::SeaNn, Algorithm::NaiveGbdt]
    } else {
        vec![Algorithm::NaiveNn, Algorithm::SeaNn]
    }
}

/// Renders the whole decision tree as indented text (the Figure 9
/// artifact of the `repro fig9` target).
pub fn render_tree() -> String {
    let mut out = String::new();
    out.push_str("Algorithm recommendation (Figure 9)\n");
    out.push_str("|- resource constrained? -> Naive-DT / Naive-GBDT\n");
    out.push_str("|- classification\n");
    out.push_str("|  |- anomaly low/medium-low\n");
    out.push_str("|  |  |- drift high -> SEA-GBDT, Naive-GBDT, SEA-DT\n");
    out.push_str("|  |  `- drift low  -> SEA-DT, Naive-GBDT\n");
    out.push_str("|  `- anomaly medium-high/high\n");
    out.push_str("|     |- drift high -> iCaRL, Naive-NN, SEA-DT\n");
    out.push_str("|     `- drift low  -> Naive-NN, iCaRL\n");
    out.push_str("`- regression\n");
    out.push_str("   |- missing high -> SEA-DT, iCaRL, Naive-DT\n");
    out.push_str("   |- drift high   -> Naive-NN, SEA-NN, Naive-GBDT\n");
    out.push_str("   `- otherwise    -> Naive-NN, SEA-NN\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(classification: bool, drift: Level, anomaly: Level, missing: Level) -> Scenario {
        Scenario {
            classification,
            drift,
            anomaly,
            missing,
            resource_constrained: false,
        }
    }

    #[test]
    fn resource_constraints_always_pick_trees() {
        let mut s = scenario(true, Level::High, Level::High, Level::High);
        s.resource_constrained = true;
        assert_eq!(
            recommend(&s),
            vec![Algorithm::NaiveDt, Algorithm::NaiveGbdt]
        );
    }

    #[test]
    fn classification_low_anomaly_prefers_trees() {
        let s = scenario(true, Level::Low, Level::Low, Level::Low);
        assert!(!recommend(&s)[0].is_nn_based());
    }

    #[test]
    fn classification_high_anomaly_high_drift_prefers_icarl() {
        let s = scenario(true, Level::High, Level::High, Level::Low);
        assert_eq!(recommend(&s)[0], Algorithm::Icarl);
    }

    #[test]
    fn regression_low_missing_prefers_nn() {
        let s = scenario(false, Level::Low, Level::Low, Level::Low);
        assert_eq!(recommend(&s)[0], Algorithm::NaiveNn);
    }

    #[test]
    fn regression_high_missing_prefers_trees() {
        let s = scenario(false, Level::Low, Level::Low, Level::High);
        assert_eq!(recommend(&s)[0], Algorithm::SeaDt);
    }

    #[test]
    fn every_scenario_has_a_recommendation() {
        for classification in [true, false] {
            for drift in [Level::Low, Level::MediumLow, Level::MediumHigh, Level::High] {
                for anomaly in [Level::Low, Level::High] {
                    for missing in [Level::Low, Level::High] {
                        let s = scenario(classification, drift, anomaly, missing);
                        let recs = recommend(&s);
                        assert!(!recs.is_empty());
                        // ARF is never recommended (§6.3 excludes it).
                        assert!(!recs.contains(&Algorithm::Arf));
                    }
                }
            }
        }
    }

    #[test]
    fn rendered_tree_mentions_all_branches() {
        let t = render_tree();
        assert!(t.contains("classification"));
        assert!(t.contains("regression"));
        assert!(t.contains("iCaRL"));
        assert!(t.contains("SEA-GBDT"));
    }
}
