//! Open-environment statistics extraction (§4.3 of the paper).
//!
//! For each stream the pipeline records: missing-value ratios (rows /
//! columns / cells), per-window data-drift percentages under HDDDM,
//! kdq-tree, PCA-CD (multi-dimensional) and KS / CDBD / ADWIN / HDDM-A
//! (per column, averaged and maxed), concept-drift percentages under DDM
//! / EDDM / ADWIN-accuracy (probe: Gaussian NB or linear regression, as
//! in the paper) and PERM, and window-level anomaly ratios under ECOD and
//! IForest (3-sigma flagging, average and max across windows).

use crate::executor::{parallel_map, resolve_threads};
use crate::probe::{GaussianNb, LinearProbe};
use oeb_drift::{
    perm_test, Adwin, BatchDriftDetector, Cdbd, CdbdDelta, ConceptDriftDetector, Ddm, DriftState,
    Eddm, Hdddm, HdddmDelta, HddmA, KdqTreeDetector, KsDeltaDetector, KsDetector, PcaCd,
    PermConfig,
};
use oeb_linalg::{EcdfMultiset, EcdfUniverse, Matrix};
use oeb_outlier::{anomaly_ratio, Ecod, IForestConfig, IsolationForest};
use oeb_preprocess::{Imputer, KnnImputer, OneHotEncoder, StandardScaler};
use oeb_tabular::{DeltaStat, MissingDelta, StreamDataset, Table, Task};
use oeb_trace::Counter;
use std::sync::Arc;

/// Rows/values entered into maintained sufficient statistics.
static DELTA_ABSORBED: Counter = Counter::new("stats.delta.absorbed");
/// Rows/values exactly retracted from maintained sufficient statistics.
static DELTA_RETRACTED: Counter = Counter::new("stats.delta.retracted");
/// Batch (non-decomposable) detector invocations taken while in
/// incremental mode — kdq-tree, PCA-CD, IForest, and the concept-drift
/// probes have no sufficient-statistic form and fall back per window.
static FULL_FALLBACK: Counter = Counter::new("stats.full.fallback");

/// How the §4.3 statistics are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// Recompute every detector from scratch on each window (the
    /// retained batch path).
    #[default]
    Full,
    /// Maintain sufficient statistics (ECDF multisets, popcount missing
    /// counts) and slide them across windows; decisions are
    /// bit-identical to [`StatsMode::Full`], non-decomposable detectors
    /// fall back to the batch path (counted by `stats.full.fallback`).
    Incremental,
}

impl StatsMode {
    /// Parses the CLI spelling (`full` / `incremental`).
    pub fn parse(s: &str) -> Option<StatsMode> {
        match s {
            "full" => Some(StatsMode::Full),
            "incremental" => Some(StatsMode::Incremental),
            _ => None,
        }
    }

    /// The CLI/report spelling.
    pub fn label(self) -> &'static str {
        match self {
            StatsMode::Full => "full",
            StatsMode::Incremental => "incremental",
        }
    }
}

/// Extraction knobs (cost bounds; defaults match the paper's pipeline
/// semantics at benchmark scale).
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// Columns examined by the per-column detectors (KS, CDBD, ADWIN,
    /// HDDM-A); streams with more encoded columns use the first `n`.
    pub max_columns: usize,
    /// Rows per window sampled for the batch detectors.
    pub max_rows_per_window: usize,
    /// PERM settings.
    pub perm: PermConfig,
    /// Batch recompute vs maintained sufficient statistics.
    pub mode: StatsMode,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            max_columns: 16,
            max_rows_per_window: 512,
            perm: PermConfig {
                n_permutations: 12,
                ..Default::default()
            },
            mode: StatsMode::default(),
        }
    }
}

/// Average/maximum pair across windows or columns.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AvgMax {
    pub avg: f64,
    pub max: f64,
}

impl AvgMax {
    fn from_values(values: &[f64]) -> AvgMax {
        if values.is_empty() {
            return AvgMax::default();
        }
        AvgMax {
            avg: oeb_linalg::mean(values),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// The open-environment statistics of one stream.
#[derive(Debug, Clone)]
pub struct OeStats {
    /// Dataset name.
    pub name: String,
    /// Rows in the stream.
    pub n_rows: usize,
    /// Feature count (before one-hot).
    pub n_features: usize,
    /// Number of windows analysed.
    pub n_windows: usize,
    /// True for classification streams.
    pub classification: bool,

    /// Ratio of rows with at least one missing cell.
    pub missing_rows: f64,
    /// Ratio of columns containing missing cells.
    pub missing_cols: f64,
    /// Ratio of empty cells.
    pub missing_cells: f64,

    /// Fraction of windows flagged by HDDDM.
    pub drift_hdddm: f64,
    /// Fraction of windows flagged by the kdq-tree detector.
    pub drift_kdq: f64,
    /// Fraction of windows flagged by PCA-CD.
    pub drift_pcacd: f64,
    /// Per-column KS drift fraction (avg/max over columns).
    pub drift_ks: AvgMax,
    /// Per-column CDBD drift fraction.
    pub drift_cdbd: AvgMax,
    /// Per-column ADWIN drift events per 1k items.
    pub drift_adwin: AvgMax,
    /// Per-column HDDM-A drift events per 1k items.
    pub drift_hddm: AvgMax,

    /// Fraction of windows where DDM signalled drift.
    pub concept_ddm: f64,
    /// Fraction of windows where EDDM signalled drift.
    pub concept_eddm: f64,
    /// Fraction of windows where ADWIN-accuracy signalled drift.
    pub concept_adwin: f64,
    /// Fraction of windows the PERM test flagged.
    pub concept_perm: f64,

    /// ECOD window anomaly ratio (avg/max).
    pub anomaly_ecod: AvgMax,
    /// IForest window anomaly ratio (avg/max).
    pub anomaly_iforest: AvgMax,
}

impl OeStats {
    /// Composite missing-value score in [0, 1]. The column ratio is
    /// excluded: any nonzero missing rate marks every column eventually,
    /// so it saturates and carries no ranking information (it remains in
    /// the selection feature group, where PCA weights it by variance).
    pub fn missing_score(&self) -> f64 {
        (2.0 * self.missing_cells + self.missing_rows) / 3.0
    }

    /// Composite data-drift score.
    pub fn drift_score(&self) -> f64 {
        let parts = [
            self.drift_hdddm,
            self.drift_kdq,
            self.drift_pcacd,
            self.drift_ks.avg,
            self.drift_cdbd.avg,
            (self.drift_adwin.avg / 5.0).min(1.0),
            (self.drift_hddm.avg / 5.0).min(1.0),
        ];
        parts.iter().sum::<f64>() / parts.len() as f64
    }

    /// Composite concept-drift score.
    pub fn concept_score(&self) -> f64 {
        let parts = [
            self.concept_ddm,
            self.concept_eddm,
            self.concept_adwin,
            self.concept_perm,
        ];
        parts.iter().sum::<f64>() / parts.len() as f64
    }

    /// Composite anomaly score.
    pub fn anomaly_score(&self) -> f64 {
        (self.anomaly_ecod.avg + self.anomaly_iforest.avg) / 2.0
    }

    /// The "basic information" feature group used by the selection step.
    pub fn basic_features(&self) -> Vec<f64> {
        vec![
            (self.n_rows as f64).ln(),
            (self.n_features as f64).ln(),
            f64::from(u8::from(self.classification)),
        ]
    }

    /// The missing-value feature group.
    pub fn missing_features(&self) -> Vec<f64> {
        vec![self.missing_rows, self.missing_cols, self.missing_cells]
    }

    /// The data-drift feature group.
    pub fn drift_features(&self) -> Vec<f64> {
        vec![
            self.drift_hdddm,
            self.drift_kdq,
            self.drift_pcacd,
            self.drift_ks.avg,
            self.drift_ks.max,
            self.drift_cdbd.avg,
            self.drift_cdbd.max,
            self.drift_adwin.avg,
            self.drift_adwin.max,
            self.drift_hddm.avg,
            self.drift_hddm.max,
        ]
    }

    /// The concept-drift feature group.
    pub fn concept_features(&self) -> Vec<f64> {
        vec![
            self.concept_ddm,
            self.concept_eddm,
            self.concept_adwin,
            self.concept_perm,
        ]
    }

    /// The outlier feature group.
    pub fn outlier_features(&self) -> Vec<f64> {
        vec![
            self.anomaly_ecod.avg,
            self.anomaly_ecod.max,
            self.anomaly_iforest.avg,
            self.anomaly_iforest.max,
        ]
    }

    /// Every floating field as `(name, raw bits)` in a fixed order —
    /// the equivalence gate between [`StatsMode::Full`] and
    /// [`StatsMode::Incremental`] compares these for exact equality.
    pub fn field_bits(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("missing_rows", self.missing_rows.to_bits()),
            ("missing_cols", self.missing_cols.to_bits()),
            ("missing_cells", self.missing_cells.to_bits()),
            ("drift_hdddm", self.drift_hdddm.to_bits()),
            ("drift_kdq", self.drift_kdq.to_bits()),
            ("drift_pcacd", self.drift_pcacd.to_bits()),
            ("drift_ks.avg", self.drift_ks.avg.to_bits()),
            ("drift_ks.max", self.drift_ks.max.to_bits()),
            ("drift_cdbd.avg", self.drift_cdbd.avg.to_bits()),
            ("drift_cdbd.max", self.drift_cdbd.max.to_bits()),
            ("drift_adwin.avg", self.drift_adwin.avg.to_bits()),
            ("drift_adwin.max", self.drift_adwin.max.to_bits()),
            ("drift_hddm.avg", self.drift_hddm.avg.to_bits()),
            ("drift_hddm.max", self.drift_hddm.max.to_bits()),
            ("concept_ddm", self.concept_ddm.to_bits()),
            ("concept_eddm", self.concept_eddm.to_bits()),
            ("concept_adwin", self.concept_adwin.to_bits()),
            ("concept_perm", self.concept_perm.to_bits()),
            ("anomaly_ecod.avg", self.anomaly_ecod.avg.to_bits()),
            ("anomaly_ecod.max", self.anomaly_ecod.max.to_bits()),
            ("anomaly_iforest.avg", self.anomaly_iforest.avg.to_bits()),
            ("anomaly_iforest.max", self.anomaly_iforest.max.to_bits()),
        ]
    }
}

/// Extracts the full statistics vector for one stream.
///
/// With [`StatsMode::Incremental`] the decomposable statistics (missing
/// ratios, HDDDM, KS, CDBD, ECOD) are derived from maintained
/// sufficient statistics instead of per-window recomputation; the
/// result is bit-identical to [`StatsMode::Full`] (the mode-equivalence
/// tests and the CI smoke pin this).
pub fn extract_stats(dataset: &StreamDataset, cfg: &StatsConfig) -> OeStats {
    let missing = match cfg.mode {
        StatsMode::Full => dataset.table.missing_stats(),
        StatsMode::Incremental => incremental_missing_stats(&dataset.table),
    };
    let windows = dataset.windows();
    let n_windows = windows.len();

    // Preprocess exactly as §4.3: one-hot encode, KNN-impute (k=2),
    // normalise.
    let encoder = OneHotEncoder::fit(&dataset.table, &dataset.feature_cols());
    let imputer = KnnImputer { k: 2 };
    let mut encoded_windows: Vec<Matrix> = Vec::with_capacity(n_windows);
    for range in &windows {
        let mut w = encoder.encode(&dataset.table, range.clone());
        let reference = w.clone();
        if w.as_slice().iter().any(|x| !x.is_finite()) {
            imputer.impute(&mut w, &reference);
        }
        encoded_windows.push(subsample(&w, cfg.max_rows_per_window));
    }
    if let Some(first) = encoded_windows.first() {
        let scaler = StandardScaler::fit(first);
        for w in &mut encoded_windows {
            scaler.transform(w);
        }
    }

    // Per-column value universes for the maintained multisets; only the
    // incremental mode pays the upfront sort.
    let n_cols_enc = encoded_windows.first().map(|w| w.cols()).unwrap_or(0);
    let universes = match cfg.mode {
        StatsMode::Full => Vec::new(),
        StatsMode::Incremental => column_universes(&encoded_windows, n_cols_enc),
    };

    // ---- Multi-dimensional data-drift detectors + window outliers ----
    let sweep = match cfg.mode {
        StatsMode::Full => full_multi_sweep(&encoded_windows),
        StatsMode::Incremental => incremental_multi_sweep(&encoded_windows, &universes),
    };

    // ---- Per-column detectors ----
    let n_cols = n_cols_enc.min(cfg.max_columns);
    let (ks_fracs, cdbd_fracs, adwin_rates, hddm_rates) = match cfg.mode {
        StatsMode::Full => full_column_stats(&encoded_windows, n_cols, n_windows),
        StatsMode::Incremental => {
            incremental_column_stats(&encoded_windows, &universes, n_cols, n_windows)
        }
    };

    // ---- Concept drift on probe-model error streams ----
    // The probe/error loops are inherently sequential in row order; no
    // sufficient-statistic form exists, so both modes run the batch path.
    if cfg.mode == StatsMode::Incremental {
        FULL_FALLBACK.incr();
        FULL_FALLBACK.incr();
    }
    let (ddm_frac, eddm_frac, adwin_frac) = concept_drift_fracs(dataset, &encoded_windows);
    let perm_frac = perm_fraction(dataset, &encoded_windows, &cfg.perm);

    let per_window = n_windows.max(1) as f64;
    OeStats {
        name: dataset.name.clone(),
        n_rows: dataset.n_rows(),
        n_features: dataset.n_features(),
        n_windows,
        classification: dataset.task.is_classification(),
        missing_rows: missing.rows_with_missing,
        missing_cols: missing.missing_columns,
        missing_cells: missing.empty_cells,
        drift_hdddm: sweep.hdddm_hits as f64 / per_window,
        drift_kdq: sweep.kdq_hits as f64 / per_window,
        drift_pcacd: sweep.pcacd_hits as f64 / per_window,
        drift_ks: AvgMax::from_values(&ks_fracs),
        drift_cdbd: AvgMax::from_values(&cdbd_fracs),
        drift_adwin: AvgMax::from_values(&adwin_rates),
        drift_hddm: AvgMax::from_values(&hddm_rates),
        concept_ddm: ddm_frac,
        concept_eddm: eddm_frac,
        concept_adwin: adwin_frac,
        concept_perm: perm_frac,
        anomaly_ecod: AvgMax::from_values(&sweep.ecod_ratios),
        anomaly_iforest: AvgMax::from_values(&sweep.iforest_ratios),
    }
}

/// Output of the window sweep shared by the multi-dimensional drift
/// detectors and the window outlier detectors.
struct MultiSweep {
    hdddm_hits: usize,
    kdq_hits: usize,
    pcacd_hits: usize,
    ecod_ratios: Vec<f64>,
    iforest_ratios: Vec<f64>,
}

/// The retained batch path: every detector recomputes from scratch on
/// each window.
fn full_multi_sweep(windows: &[Matrix]) -> MultiSweep {
    let mut hdddm = Hdddm::default();
    let mut kdq = KdqTreeDetector::default();
    let mut pcacd = PcaCd::default();
    let mut hdddm_hits = 0usize;
    let mut kdq_hits = 0usize;
    let mut pcacd_hits = 0usize;
    for w in windows {
        if hdddm.update(w).is_drift() {
            hdddm_hits += 1;
        }
        if kdq.update(w).is_drift() {
            kdq_hits += 1;
        }
        if pcacd.update(w).is_drift() {
            pcacd_hits += 1;
        }
    }
    let mut ecod_ratios = Vec::with_capacity(windows.len());
    let mut iforest_ratios = Vec::with_capacity(windows.len());
    for (k, w) in windows.iter().enumerate() {
        if w.rows() < 8 {
            continue;
        }
        let ecod = Ecod::fit(w);
        ecod_ratios.push(anomaly_ratio(&ecod.score_all(w)));
        let forest = IsolationForest::fit(
            w,
            &IForestConfig {
                n_trees: 25,
                seed: k as u64,
                ..Default::default()
            },
        );
        iforest_ratios.push(anomaly_ratio(&forest.score_all(w)));
    }
    MultiSweep {
        hdddm_hits,
        kdq_hits,
        pcacd_hits,
        ecod_ratios,
        iforest_ratios,
    }
}

/// Maintain-and-slide path: one multiset per encoded column slides
/// across the windows; HDDDM decisions and ECOD models are derived from
/// the maintained counts, while kdq-tree, PCA-CD and IForest (no
/// sufficient-statistic form) fall back to the batch detectors.
fn incremental_multi_sweep(windows: &[Matrix], universes: &[Arc<EcdfUniverse>]) -> MultiSweep {
    let mut hdddm = HdddmDelta::default();
    let mut kdq = KdqTreeDetector::default();
    let mut pcacd = PcaCd::default();
    let mut cur: Vec<EcdfMultiset> = universes
        .iter()
        .map(|u| EcdfMultiset::new(Arc::clone(u)))
        .collect();
    let mut hdddm_hits = 0usize;
    let mut kdq_hits = 0usize;
    let mut pcacd_hits = 0usize;
    let mut ecod_ratios = Vec::with_capacity(windows.len());
    let mut iforest_ratios = Vec::with_capacity(windows.len());
    let mut prev: Option<&Matrix> = None;
    for (k, w) in windows.iter().enumerate() {
        slide_columns(&mut cur, prev, w);
        prev = Some(w);
        if hdddm.update(&cur).is_drift() {
            hdddm_hits += 1;
        }
        FULL_FALLBACK.incr();
        if kdq.update(w).is_drift() {
            kdq_hits += 1;
        }
        FULL_FALLBACK.incr();
        if pcacd.update(w).is_drift() {
            pcacd_hits += 1;
        }
        if w.rows() >= 8 {
            // The maintained multisets hold exactly this window's values,
            // so the snapshot model equals a fresh batch fit.
            let ecod = Ecod::from_sorted_columns(cur.iter().map(|m| m.to_sorted_vec()).collect());
            ecod_ratios.push(anomaly_ratio(&ecod.score_all(w)));
            FULL_FALLBACK.incr();
            let forest = IsolationForest::fit(
                w,
                &IForestConfig {
                    n_trees: 25,
                    seed: k as u64,
                    ..Default::default()
                },
            );
            iforest_ratios.push(anomaly_ratio(&forest.score_all(w)));
        }
    }
    MultiSweep {
        hdddm_hits,
        kdq_hits,
        pcacd_hits,
        ecod_ratios,
        iforest_ratios,
    }
}

/// Slides the per-column multisets from the previous window onto `w`:
/// retract every leaving value, absorb every entering one.
fn slide_columns(cur: &mut [EcdfMultiset], prev: Option<&Matrix>, w: &Matrix) {
    let mut retracted = 0u64;
    if let Some(p) = prev {
        for r in 0..p.rows() {
            for (c, &x) in p.row(r).iter().enumerate() {
                if cur[c].remove(x) {
                    retracted += 1;
                }
            }
        }
    }
    let mut absorbed = 0u64;
    for r in 0..w.rows() {
        for (c, &x) in w.row(r).iter().enumerate() {
            if cur[c].insert(x) {
                absorbed += 1;
            }
        }
    }
    DELTA_RETRACTED.add(retracted);
    DELTA_ABSORBED.add(absorbed);
}

/// Per-column value universes over every window of the stream.
fn column_universes(windows: &[Matrix], n_cols: usize) -> Vec<Arc<EcdfUniverse>> {
    (0..n_cols)
        .map(|c| {
            let mut values = Vec::new();
            for w in windows {
                values.extend(w.col(c));
            }
            Arc::new(EcdfUniverse::from_values(values))
        })
        .collect()
}

/// `(ks fracs, cdbd fracs, adwin rates, hddm rates)` per column.
type ColumnStats = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

/// The retained batch per-column loop.
fn full_column_stats(windows: &[Matrix], n_cols: usize, n_windows: usize) -> ColumnStats {
    let mut ks_fracs = Vec::with_capacity(n_cols);
    let mut cdbd_fracs = Vec::with_capacity(n_cols);
    let mut adwin_rates = Vec::with_capacity(n_cols);
    let mut hddm_rates = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let mut ks = KsDetector::new(0.05);
        let mut cdbd = Cdbd::default();
        let mut adwin = Adwin::new(0.002);
        let mut hddm = HddmA::default();
        let mut ks_hits = 0usize;
        let mut cdbd_hits = 0usize;
        let mut adwin_hits = 0usize;
        let mut hddm_hits = 0usize;
        let mut n_items = 0usize;
        for w in windows {
            let col = w.col(c);
            if ks.update(&col).is_drift() {
                ks_hits += 1;
            }
            if cdbd.update(&col).is_drift() {
                cdbd_hits += 1;
            }
            for &v in &col {
                if !v.is_finite() {
                    continue;
                }
                n_items += 1;
                // Normalise into [0, 1] for HDDM's Hoeffding bounds.
                let bounded = 0.5 + 0.5 * (v / 4.0).tanh();
                if adwin.insert(bounded) {
                    adwin_hits += 1;
                }
                if hddm.update(bounded).is_drift() {
                    hddm_hits += 1;
                }
            }
        }
        let per_window = n_windows.max(1) as f64;
        ks_fracs.push(ks_hits as f64 / per_window);
        cdbd_fracs.push(cdbd_hits as f64 / per_window);
        let per_k_items = (n_items.max(1)) as f64 / 1000.0;
        adwin_rates.push(adwin_hits as f64 / per_k_items);
        hddm_rates.push(hddm_hits as f64 / per_k_items);
    }
    (ks_fracs, cdbd_fracs, adwin_rates, hddm_rates)
}

/// The incremental per-column loop: each column slides its own multiset
/// across the windows and feeds the delta detectors. Columns are
/// independent and pure, so they run under [`parallel_map`], which is
/// bit-identical to the sequential order at any thread count.
fn incremental_column_stats(
    windows: &[Matrix],
    universes: &[Arc<EcdfUniverse>],
    n_cols: usize,
    n_windows: usize,
) -> ColumnStats {
    let threads = resolve_threads(None);
    let per_col = parallel_map(n_cols, threads, |c| {
        let mut cur = EcdfMultiset::new(Arc::clone(&universes[c]));
        let mut ks = KsDeltaDetector::new(0.05);
        let mut cdbd = CdbdDelta::default();
        let mut adwin = Adwin::new(0.002);
        let mut hddm = HddmA::default();
        let mut ks_hits = 0usize;
        let mut cdbd_hits = 0usize;
        let mut adwin_hits = 0usize;
        let mut hddm_hits = 0usize;
        let mut n_items = 0usize;
        let mut prev: Option<Vec<f64>> = None;
        for w in windows {
            let col = w.col(c);
            let mut retracted = 0u64;
            if let Some(p) = &prev {
                for &v in p {
                    if cur.remove(v) {
                        retracted += 1;
                    }
                }
            }
            let mut absorbed = 0u64;
            for &v in &col {
                if cur.insert(v) {
                    absorbed += 1;
                }
            }
            DELTA_RETRACTED.add(retracted);
            DELTA_ABSORBED.add(absorbed);
            if ks.update(&cur).is_drift() {
                ks_hits += 1;
            }
            if cdbd.update(&cur).is_drift() {
                cdbd_hits += 1;
            }
            for &v in &col {
                if !v.is_finite() {
                    continue;
                }
                n_items += 1;
                // ADWIN and HDDM-A are already streaming (per-item)
                // detectors; they consume the window in row order on both
                // paths.
                let bounded = 0.5 + 0.5 * (v / 4.0).tanh();
                if adwin.insert(bounded) {
                    adwin_hits += 1;
                }
                if hddm.update(bounded).is_drift() {
                    hddm_hits += 1;
                }
            }
            prev = Some(col);
        }
        let per_window = n_windows.max(1) as f64;
        let per_k_items = (n_items.max(1)) as f64 / 1000.0;
        (
            ks_hits as f64 / per_window,
            cdbd_hits as f64 / per_window,
            adwin_hits as f64 / per_k_items,
            hddm_hits as f64 / per_k_items,
        )
    });
    let mut ks_fracs = Vec::with_capacity(n_cols);
    let mut cdbd_fracs = Vec::with_capacity(n_cols);
    let mut adwin_rates = Vec::with_capacity(n_cols);
    let mut hddm_rates = Vec::with_capacity(n_cols);
    for (ks, cdbd, adwin, hddm) in per_col {
        ks_fracs.push(ks);
        cdbd_fracs.push(cdbd);
        adwin_rates.push(adwin);
        hddm_rates.push(hddm);
    }
    (ks_fracs, cdbd_fracs, adwin_rates, hddm_rates)
}

/// Whole-table missing statistics via the popcount delta accumulator —
/// bit-identical to [`Table::missing_stats`] (both count NaN cells of
/// the numeric row view).
fn incremental_missing_stats(table: &Table) -> oeb_tabular::MissingStats {
    let mut delta = MissingDelta::new(table.n_cols());
    for r in 0..table.n_rows() {
        delta.absorb(&table.numeric_row(r));
    }
    DELTA_ABSORBED.add(table.n_rows() as u64);
    delta.snapshot()
}

/// Runs the probe model window-by-window, feeding its error stream into
/// DDM, EDDM and ADWIN; probes are retrained on the latest window after
/// any drift alert (as in §4.3). Returns the fraction of windows in which
/// each detector fired.
fn concept_drift_fracs(dataset: &StreamDataset, windows: &[Matrix]) -> (f64, f64, f64) {
    if windows.len() < 2 {
        return (0.0, 0.0, 0.0);
    }
    let ranges = dataset.windows();
    enum Probe {
        Nb(GaussianNb),
        Lin(LinearProbe),
    }
    let fit = |w: &Matrix, range: &std::ops::Range<usize>| -> Probe {
        let ys: Vec<f64> = sample_targets(dataset, range, w.rows());
        match dataset.task {
            Task::Classification { n_classes } => Probe::Nb(GaussianNb::fit(w, &ys, n_classes)),
            Task::Regression => Probe::Lin(LinearProbe::fit(w, &ys)),
        }
    };
    let mut probe = fit(&windows[0], &ranges[0]);
    let mut ddm = Ddm::new();
    let mut eddm = Eddm::new();
    let mut adwin = Adwin::new(0.002);
    let mut ddm_windows = 0usize;
    let mut eddm_windows = 0usize;
    let mut adwin_windows = 0usize;

    for (k, w) in windows.iter().enumerate().skip(1) {
        let ys = sample_targets(dataset, &ranges[k], w.rows());
        let mut fired = (false, false, false);
        for r in 0..w.rows() {
            let err = match (&probe, dataset.task) {
                (Probe::Nb(nb), Task::Classification { .. }) => {
                    f64::from(nb.predict(w.row(r)) != ys[r] as usize)
                }
                (Probe::Lin(lin), Task::Regression) => {
                    // Bounded regression error indicator: large residual
                    // (in scaled-target units) counts as an error.
                    let resid = (lin.predict(w.row(r)) - ys[r]).abs();
                    f64::from(resid > 1.0)
                }
                _ => unreachable!("probe matches task"),
            };
            fired.0 |= ddm.update(err).is_drift();
            fired.1 |= eddm.update(err).is_drift();
            fired.2 |= adwin.update(err).is_drift();
        }
        if fired.0 {
            ddm_windows += 1;
        }
        if fired.1 {
            eddm_windows += 1;
        }
        if fired.2 {
            adwin_windows += 1;
        }
        if fired.0 || fired.1 || fired.2 {
            // Retrain the probe on the most recent data slice.
            probe = fit(w, &ranges[k]);
        }
    }
    let n = (windows.len() - 1) as f64;
    (
        ddm_windows as f64 / n,
        eddm_windows as f64 / n,
        adwin_windows as f64 / n,
    )
}

/// Fraction of windows flagged by the PERM resampling test.
fn perm_fraction(dataset: &StreamDataset, windows: &[Matrix], cfg: &PermConfig) -> f64 {
    if windows.is_empty() {
        return 0.0;
    }
    let ranges = dataset.windows();
    let mut flagged = 0usize;
    let mut tested = 0usize;
    for (k, w) in windows.iter().enumerate() {
        if w.rows() < 16 {
            continue;
        }
        tested += 1;
        let ys = sample_targets(dataset, &ranges[k], w.rows());
        let outcome = perm_test(w.rows(), cfg, |train, test| {
            let train_rows: Vec<Vec<f64>> = train.iter().map(|&i| w.row(i).to_vec()).collect();
            let train_ys: Vec<f64> = train.iter().map(|&i| ys[i]).collect();
            let tm = Matrix::from_rows(&train_rows);
            match dataset.task {
                Task::Classification { n_classes } => {
                    let nb = GaussianNb::fit(&tm, &train_ys, n_classes);
                    let errors = test
                        .iter()
                        .filter(|&&i| nb.predict(w.row(i)) != ys[i] as usize)
                        .count();
                    errors as f64 / test.len().max(1) as f64
                }
                Task::Regression => {
                    let lin = LinearProbe::fit(&tm, &train_ys);
                    test.iter()
                        .map(|&i| (lin.predict(w.row(i)) - ys[i]).powi(2))
                        .sum::<f64>()
                        / test.len().max(1) as f64
                }
            }
        });
        if outcome.state == DriftState::Drift {
            flagged += 1;
        }
    }
    flagged as f64 / tested.max(1) as f64
}

/// Targets aligned with a (possibly subsampled) window matrix: the
/// subsampler takes evenly spaced rows, so targets follow the same rule.
fn sample_targets(
    dataset: &StreamDataset,
    range: &std::ops::Range<usize>,
    n_rows: usize,
) -> Vec<f64> {
    let len = range.len();
    if n_rows >= len {
        return range.clone().map(|r| dataset.target_at(r)).collect();
    }
    (0..n_rows)
        .map(|i| dataset.target_at(range.start + i * len / n_rows))
        .collect()
}

/// Evenly spaced row subsample of a matrix.
fn subsample(m: &Matrix, max_rows: usize) -> Matrix {
    if m.rows() <= max_rows {
        return m.clone();
    }
    let rows: Vec<Vec<f64>> = (0..max_rows)
        .map(|i| m.row(i * m.rows() / max_rows).to_vec())
        .collect();
    Matrix::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_synth::{generate, registry_scaled, Level};

    fn stats_for(name: &str) -> OeStats {
        let entries = registry_scaled(0.04);
        let entry = entries.iter().find(|e| e.spec.name == name).unwrap();
        let d = generate(&entry.spec, 0);
        extract_stats(&d, &StatsConfig::default())
    }

    #[test]
    fn high_missing_dataset_scores_high_missing() {
        let high = stats_for("Indian Cities Weather Bangalore");
        let low = stats_for("Electricity Prices");
        assert!(
            high.missing_score() > low.missing_score() + 0.05,
            "high {} low {}",
            high.missing_score(),
            low.missing_score()
        );
    }

    #[test]
    fn drifting_dataset_scores_higher_than_stationary() {
        let drifting = stats_for("Power Consumption of Tetouan City");
        let stationary = stats_for("Safe Driver");
        assert!(
            drifting.drift_score() > stationary.drift_score(),
            "drifting {} stationary {}",
            drifting.drift_score(),
            stationary.drift_score()
        );
    }

    #[test]
    fn anomalous_dataset_scores_higher_than_clean() {
        let entries = registry_scaled(0.04);
        let anomalous = entries
            .iter()
            .find(|e| e.spec.anomaly_level == Level::High)
            .unwrap();
        let clean = entries
            .iter()
            .find(|e| e.spec.anomaly_level == Level::Low && e.spec.name == "Safe Driver")
            .unwrap();
        let sa = extract_stats(&generate(&anomalous.spec, 0), &StatsConfig::default());
        let sc = extract_stats(&generate(&clean.spec, 0), &StatsConfig::default());
        assert!(
            sa.anomaly_score() >= sc.anomaly_score(),
            "anomalous {} clean {}",
            sa.anomaly_score(),
            sc.anomaly_score()
        );
    }

    #[test]
    fn stats_fields_are_finite_and_bounded() {
        let s = stats_for("Electricity Prices");
        for group in [
            s.missing_features(),
            s.drift_features(),
            s.concept_features(),
            s.outlier_features(),
            s.basic_features(),
        ] {
            for v in group {
                assert!(v.is_finite());
            }
        }
        assert!(s.missing_cells >= 0.0 && s.missing_cells <= 1.0);
        assert!(s.drift_hdddm >= 0.0 && s.drift_hdddm <= 1.0);
    }

    #[test]
    fn incremental_mode_matches_full_bitwise() {
        let entries = registry_scaled(0.04);
        // One drifting stream, one heavy-missing stream: exercises the
        // reference slides, empty-window rules and imputation paths.
        for name in ["Electricity Prices", "Indian Cities Weather Bangalore"] {
            let entry = entries.iter().find(|e| e.spec.name == name).unwrap();
            let d = generate(&entry.spec, 0);
            let full = extract_stats(&d, &StatsConfig::default());
            let inc = extract_stats(
                &d,
                &StatsConfig {
                    mode: StatsMode::Incremental,
                    ..Default::default()
                },
            );
            assert_eq!(full.n_windows, inc.n_windows);
            for ((name_a, a), (_, b)) in full.field_bits().iter().zip(inc.field_bits()) {
                assert_eq!(
                    *a,
                    b,
                    "{name}: field {name_a} differs ({} vs {})",
                    f64::from_bits(*a),
                    f64::from_bits(b)
                );
            }
        }
    }

    #[test]
    fn stats_mode_parses_cli_spellings() {
        assert_eq!(StatsMode::parse("full"), Some(StatsMode::Full));
        assert_eq!(
            StatsMode::parse("incremental"),
            Some(StatsMode::Incremental)
        );
        assert_eq!(StatsMode::parse("delta"), None);
        assert_eq!(StatsMode::Incremental.label(), "incremental");
    }

    #[test]
    fn subsample_keeps_row_budget() {
        let m = Matrix::from_rows(&(0..100).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let s = subsample(&m, 10);
        assert_eq!(s.rows(), 10);
        assert_eq!(s[(0, 0)], 0.0);
    }
}
