//! Representative-dataset selection (§4.4 of the paper).
//!
//! Each feature group (basic information, missing values, data drift,
//! concept drift, outliers) is normalised across datasets and reduced to
//! three dimensions by PCA so every perspective carries equal weight;
//! the concatenated embeddings are clustered with K-Means (k = 5) and the
//! dataset nearest each centroid is selected.

use crate::stats::OeStats;
use oeb_linalg::{kmeans, KMeansConfig, Matrix, Pca};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Output of the selection pipeline.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Cluster index per dataset (aligned with the input order).
    pub assignments: Vec<usize>,
    /// Index of the representative dataset of each cluster.
    pub representatives: Vec<usize>,
    /// The reduced embedding each dataset was clustered in
    /// (`n x (3 * groups)`).
    pub embedding: Matrix,
    /// Per-dataset 3-D coordinates per group, for the Figure 2 scatter
    /// reproduction (group-major: `groups x n x 3`).
    pub group_coords: Vec<Matrix>,
}

/// Z-scores each column across datasets (constant columns stay 0).
fn normalise_columns(m: &mut Matrix) {
    let means = m.col_means();
    let stds = m.col_stds();
    for r in 0..m.rows() {
        for (c, x) in m.row_mut(r).iter_mut().enumerate() {
            let s = if stds[c] > 1e-12 { stds[c] } else { 1.0 };
            *x = (*x - means[c]) / s;
        }
    }
}

/// Runs the full selection pipeline over the extracted statistics.
///
/// # Panics
/// Panics when fewer than `k` datasets are supplied.
pub fn select_representatives(stats: &[OeStats], k: usize, seed: u64) -> SelectionResult {
    assert!(stats.len() >= k, "need at least k={k} datasets");
    let groups: Vec<Vec<Vec<f64>>> = vec![
        stats.iter().map(OeStats::basic_features).collect(),
        stats.iter().map(OeStats::missing_features).collect(),
        stats.iter().map(OeStats::drift_features).collect(),
        stats.iter().map(OeStats::concept_features).collect(),
        stats.iter().map(OeStats::outlier_features).collect(),
    ];

    let n = stats.len();
    let mut embedding_rows: Vec<Vec<f64>> = vec![Vec::with_capacity(15); n];
    let mut group_coords = Vec::with_capacity(groups.len());
    for group in &groups {
        let mut m = Matrix::from_rows(group);
        normalise_columns(&mut m);
        let pca = Pca::fit(&m, 3);
        let reduced = pca.transform(&m);
        // Pad to exactly 3 dims when a group has fewer features.
        let mut coords = Matrix::zeros(n, 3);
        for r in 0..n {
            for c in 0..reduced.cols().min(3) {
                coords[(r, c)] = reduced[(r, c)];
            }
            embedding_rows[r].extend_from_slice(coords.row(r));
        }
        group_coords.push(coords);
    }
    let embedding = Matrix::from_rows(&embedding_rows);

    let mut rng = StdRng::seed_from_u64(seed);
    let result = kmeans(
        &embedding,
        &KMeansConfig {
            k,
            n_init: 10,
            ..Default::default()
        },
        &mut rng,
    );
    let representatives: Vec<usize> = result
        .representatives(&embedding)
        .into_iter()
        .map(|r| r.expect("k-means on >= k points leaves no empty cluster unfilled"))
        .collect();
    SelectionResult {
        assignments: result.assignments,
        representatives,
        embedding,
        group_coords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AvgMax;

    /// Builds a synthetic stats record with controllable scores.
    fn fake_stats(name: &str, missing: f64, drift: f64, anomaly: f64) -> OeStats {
        OeStats {
            name: name.into(),
            n_rows: 10_000,
            n_features: 10,
            n_windows: 20,
            classification: true,
            missing_rows: missing,
            missing_cols: missing,
            missing_cells: missing,
            drift_hdddm: drift,
            drift_kdq: drift,
            drift_pcacd: drift,
            drift_ks: AvgMax {
                avg: drift,
                max: drift,
            },
            drift_cdbd: AvgMax {
                avg: drift,
                max: drift,
            },
            drift_adwin: AvgMax {
                avg: drift,
                max: drift,
            },
            drift_hddm: AvgMax {
                avg: drift,
                max: drift,
            },
            concept_ddm: drift,
            concept_eddm: drift,
            concept_adwin: drift,
            concept_perm: drift,
            anomaly_ecod: AvgMax {
                avg: anomaly,
                max: anomaly,
            },
            anomaly_iforest: AvgMax {
                avg: anomaly,
                max: anomaly,
            },
        }
    }

    fn corpus() -> Vec<OeStats> {
        let mut v = Vec::new();
        // Three well-separated families.
        for i in 0..5 {
            let eps = i as f64 * 0.01;
            v.push(fake_stats(&format!("missing{i}"), 0.8 + eps, 0.0, 0.0));
            v.push(fake_stats(&format!("drift{i}"), 0.0, 0.8 + eps, 0.0));
            v.push(fake_stats(&format!("anomaly{i}"), 0.0, 0.0, 0.3 + eps));
        }
        v
    }

    #[test]
    fn embedding_has_expected_shape() {
        let stats = corpus();
        let sel = select_representatives(&stats, 3, 1);
        assert_eq!(sel.embedding.shape(), (15, 15));
        assert_eq!(sel.group_coords.len(), 5);
        assert_eq!(sel.group_coords[0].shape(), (15, 3));
    }

    #[test]
    fn representatives_cover_distinct_clusters() {
        let stats = corpus();
        let sel = select_representatives(&stats, 3, 1);
        assert_eq!(sel.representatives.len(), 3);
        let mut reps = sel.representatives.clone();
        reps.sort_unstable();
        reps.dedup();
        assert_eq!(reps.len(), 3, "duplicate representatives");
    }

    #[test]
    fn families_cluster_together() {
        let stats = corpus();
        let sel = select_representatives(&stats, 3, 7);
        // Datasets 0,3,6,9,12 are the "missing" family (indices 0 mod 3).
        let family_cluster = sel.assignments[0];
        for i in (0..15).step_by(3) {
            assert_eq!(sel.assignments[i], family_cluster, "dataset {i}");
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_datasets_panics() {
        let stats = vec![fake_stats("a", 0.0, 0.0, 0.0)];
        let _ = select_representatives(&stats, 5, 0);
    }
}
