//! Chaos-soak harness: the fault-plan × drift cross-product, executed
//! under full supervision with invariants checked after every scenario.
//!
//! Each scenario pairs one fault axis (a single [`FaultKind`] at an
//! aggressive rate, the composed chaos preset, a drop-everything plan,
//! or the clean identity) with one drift regime from the synthetic
//! generator, runs the resulting stream through the supervised sweep,
//! and checks the supervision contract:
//!
//! - no panic escapes the sweep's isolation layer;
//! - every cell is accounted for — completed, inapplicable, failed,
//!   timed out, or quarantined, never silently dropped;
//! - quarantined cells are reported with their fault × drift
//!   coordinates;
//! - the `supervise.*` trace counters agree with the record-derived
//!   [`SupervisionSummary`] (when tracing is enabled);
//! - a clean-stream control cell is bit-identical between the
//!   supervised and unsupervised paths;
//! - a tight logical deadline times out deterministically: running the
//!   control twice yields byte-identical reports.
//!
//! Any violated invariant lands in [`ChaosReport::violations`]; the CI
//! smoke gate fails on a non-empty list.

use crate::error::HarnessError;
use crate::harness::{DegradePolicy, HarnessConfig};
use crate::learners::Algorithm;
use crate::supervise::SupervisePolicy;
use crate::sweep::{run_sweep, run_sweep_supervised, SupervisionSummary, SweepReport};
use oeb_faults::{FaultKind, FaultPlan};
use oeb_synth::{Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::Domain;
use serde_json::{json, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Chaos-run configuration.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Base seed: streams, fault plans and retry jitter all derive from
    /// it, so a chaos run replays bit-identically.
    pub seed: u64,
    /// Scenarios to execute; `None` runs the full fault × drift grid.
    pub max_cells: Option<usize>,
    /// Worker threads per scenario sweep.
    pub threads: usize,
    /// Retry budget per cell before quarantine.
    pub max_retries: usize,
    /// Rows per synthetic stream.
    pub rows: usize,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0,
            max_cells: None,
            threads: 1,
            max_retries: 2,
            rows: 480,
        }
    }
}

/// The drift regimes of the cross-product, one per [`DriftPattern`]
/// shape the generator supports.
pub fn drift_regimes() -> Vec<(&'static str, DriftPattern)> {
    vec![
        ("stationary", DriftPattern::Stationary),
        (
            "abrupt",
            DriftPattern::Abrupt {
                breaks: [0.33, 0.66, 0.0],
                n_breaks: 2,
            },
        ),
        ("gradual", DriftPattern::Gradual),
        ("incremental", DriftPattern::Incremental),
        ("recurrent", DriftPattern::Recurrent { cycles: 3.0 }),
        (
            "inc-reoccurring",
            DriftPattern::IncrementalReoccurring { cycles: 2.0 },
        ),
    ]
}

/// The fault axes of the cross-product: the clean identity, every
/// [`FaultKind`] alone at an aggressive rate, the composed chaos
/// preset stacked with an extra NaN axis (exercising
/// [`FaultPlan::compose`]), and a drop-everything plan that forces the
/// retry → quarantine path deterministically (every window dropped ⇒
/// [`HarnessError::EmptyStream`], which is retryable).
pub fn fault_axes(seed: u64) -> Vec<(String, FaultPlan)> {
    // The three structurally interesting axes lead so that a truncated
    // smoke grid still exercises the clean path, the forced quarantine,
    // and plan composition before the single-fault axes.
    let mut axes = vec![
        ("clean".to_string(), FaultPlan::none(seed)),
        (
            "drop-all".to_string(),
            FaultPlan::single(seed, FaultKind::DroppedWindow, 1.0),
        ),
        (
            "chaos-composed".to_string(),
            FaultPlan::chaos(seed).compose(&FaultPlan::single(seed, FaultKind::NanBurst, 0.3)),
        ),
    ];
    for kind in FaultKind::all() {
        axes.push((kind.name().to_string(), FaultPlan::single(seed, kind, 0.35)));
    }
    axes
}

/// One executed scenario of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCell {
    /// Fault-axis name (`"clean"`, a [`FaultKind::name`], ...).
    pub fault: String,
    /// Drift-regime name.
    pub drift: String,
    /// Outcome status (`"completed"`, `"failed"`, `"timed-out"`,
    /// `"quarantined"`, ...).
    pub status: String,
    /// One-line outcome description.
    pub detail: String,
    /// Supervision accounting for the scenario's sweep.
    pub supervision: SupervisionSummary,
}

/// Result of a chaos-soak run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosReport {
    /// Executed scenarios, in grid order.
    pub cells: Vec<ChaosCell>,
    /// Violated invariants; empty on a passing run.
    pub violations: Vec<String>,
    /// Supervision totals across scenarios and control runs.
    pub summary: SupervisionSummary,
}

impl ChaosReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Pretty-printed [`ChaosReport::to_json`] with a trailing newline —
    /// the on-disk form `oebench chaos --out` writes and the CI gate
    /// greps.
    pub fn to_json_string(&self) -> String {
        let mut text = serde_json::to_string_pretty(&self.to_json())
            .expect("chaos report serializes infallibly");
        text.push('\n');
        text
    }

    /// JSON form for the CI gate and `BENCH_sweep.json`.
    pub fn to_json(&self) -> Value {
        json!({
            "cells": self.cells.iter().map(|c| json!({
                "fault": c.fault,
                "drift": c.drift,
                "status": c.status,
                "detail": c.detail,
                "retries": c.supervision.retries as u64,
                "quarantined": c.supervision.quarantined as u64,
            })).collect::<Vec<_>>(),
            "violations": self.violations,
            "summary": {
                "retries": self.summary.retries as u64,
                "recovered": self.summary.recovered as u64,
                "timeouts": self.summary.timeouts as u64,
                "wall_timeouts": self.summary.wall_timeouts as u64,
                "quarantined": self.summary.quarantined as u64,
            },
        })
    }
}

fn spec_for(name: &str, drift: DriftPattern, rows: usize, seed: u64) -> StreamSpec {
    StreamSpec {
        name: name.into(),
        domain: Domain::Others,
        n_rows: rows,
        n_numeric: 3,
        categorical: vec![],
        task: TaskSpec::Classification {
            n_classes: 2,
            mechanism: LabelMechanism::XToY,
            balance: Balance::Balanced,
            label_noise: 0.02,
        },
        drift_pattern: drift,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 40,
        seed,
    }
}

fn chaos_config(seed: u64, plan: &FaultPlan) -> HarnessConfig {
    let mut config = HarnessConfig {
        seed,
        degrade: DegradePolicy::resilient(),
        ..Default::default()
    };
    config.learner.epochs = 1;
    if !plan.is_clean() {
        config.fault_plan = Some(plan.clone());
    }
    config
}

/// The deterministic half of a sweep report, floats by bit pattern —
/// two equal digests mean byte-identical reproducible fields.
fn digest(report: &SweepReport) -> Vec<String> {
    report
        .records
        .iter()
        .map(|r| {
            let body = match &r.outcome {
                crate::sweep::RunOutcome::Completed(res) => {
                    let losses: Vec<String> = res
                        .per_window_loss
                        .iter()
                        .map(|l| format!("{:016x}", l.to_bits()))
                        .collect();
                    format!(
                        "completed mean={:016x} items={} losses=[{}] deg={:?}",
                        res.mean_loss.to_bits(),
                        res.items,
                        losses.join(","),
                        res.degradations
                    )
                }
                other => other.describe(),
            };
            format!("{}|{}|{body}", r.dataset, r.algorithm)
        })
        .collect()
}

/// Executes the fault × drift matrix under supervision and checks every
/// invariant. Never panics; never returns a typed error for a *cell*
/// failure (those are outcomes) — only for harness-level problems like
/// an invalid option set.
pub fn run_chaos_matrix(options: &ChaosOptions) -> Result<ChaosReport, HarnessError> {
    let axes = fault_axes(options.seed);
    let drifts = drift_regimes();
    let policy = SupervisePolicy {
        max_retries: options.max_retries,
        backoff_base: Duration::from_millis(1),
        ..SupervisePolicy::unsupervised()
    };
    let algorithms = [Algorithm::NaiveDt];
    let before = oeb_trace::enabled().then(oeb_trace::snapshot);

    let mut report = ChaosReport::default();

    // Diagonal enumeration of the grid: axis count (11) and drift count
    // (6) are coprime, so step k visits pair (k % axes, k % drifts)
    // without repetition and a truncated smoke run still spans many
    // faults *and* many drifts instead of one row of the matrix.
    let total = axes.len() * drifts.len();
    let n_cells = options.max_cells.unwrap_or(total).min(total);
    for k in 0..n_cells {
        let (fault_name, plan) = &axes[k % axes.len()];
        let (drift_name, drift) = drifts[k % drifts.len()];
        let scenario = format!("{fault_name}×{drift_name}");
        let spec = spec_for(&scenario, drift, options.rows, options.seed);
        let dataset = oeb_synth::generate(&spec, options.seed);
        let config = chaos_config(options.seed, plan);

        let ran = catch_unwind(AssertUnwindSafe(|| {
            run_sweep_supervised(
                &[dataset],
                &algorithms,
                &config,
                None,
                None,
                options.threads,
                &policy,
            )
        }));
        let sweep = match ran {
            Ok(Ok(sweep)) => sweep,
            Ok(Err(e)) => {
                report
                    .violations
                    .push(format!("{scenario}: sweep returned a harness error: {e}"));
                continue;
            }
            Err(_) => {
                report
                    .violations
                    .push(format!("{scenario}: a panic escaped the supervised sweep"));
                continue;
            }
        };
        // Every cell accounted for: the grid is 1 dataset × 1 algorithm.
        if sweep.records.len() != algorithms.len() {
            report.violations.push(format!(
                "{scenario}: {} of {} cells reported — cells were dropped",
                sweep.records.len(),
                algorithms.len()
            ));
            continue;
        }
        let supervision = sweep.supervision();
        accumulate(&mut report.summary, &supervision);
        for record in &sweep.records {
            let status = status_of(&record.outcome);
            report.cells.push(ChaosCell {
                fault: fault_name.clone(),
                drift: drift_name.to_string(),
                status: status.to_string(),
                detail: record.outcome.describe(),
                supervision,
            });
        }
    }

    // The forced-quarantine axis must actually quarantine (when the
    // truncated grid includes it): every window dropped is an
    // EmptyStream failure on each of the 1 + max_retries attempts.
    for cell in &report.cells {
        if cell.fault == "drop-all" && cell.status != "quarantined" {
            report.violations.push(format!(
                "drop-all×{}: expected quarantine, got {}",
                cell.drift, cell.status
            ));
        }
    }

    // Clean-stream control: the supervised path (retry budget armed but
    // untouched) must be bit-identical to the unsupervised one.
    {
        let spec = spec_for(
            "chaos-control",
            DriftPattern::Gradual,
            options.rows,
            options.seed,
        );
        let dataset = oeb_synth::generate(&spec, options.seed);
        let config = chaos_config(options.seed, &FaultPlan::none(options.seed));
        let supervised = run_sweep_supervised(
            std::slice::from_ref(&dataset),
            &algorithms,
            &config,
            None,
            None,
            options.threads,
            &policy,
        )?;
        let unsupervised = run_sweep(
            std::slice::from_ref(&dataset),
            &algorithms,
            &config,
            None,
            None,
            options.threads,
        )?;
        if digest(&supervised) != digest(&unsupervised) {
            report.violations.push(
                "clean control: supervised report diverged from the unsupervised path".into(),
            );
        }
        accumulate(&mut report.summary, &supervised.supervision());
    }

    // Deadline control: a tight logical budget must time the cell out,
    // and must do so identically on a replay.
    {
        let spec = spec_for(
            "chaos-deadline",
            DriftPattern::Gradual,
            options.rows,
            options.seed,
        );
        let dataset = oeb_synth::generate(&spec, options.seed);
        let config = chaos_config(options.seed, &FaultPlan::none(options.seed));
        let tight = SupervisePolicy {
            max_windows: Some(2),
            ..policy
        };
        let run = |tag: &str, report: &mut ChaosReport| -> Option<SweepReport> {
            match run_sweep_supervised(
                std::slice::from_ref(&dataset),
                &algorithms,
                &config,
                None,
                None,
                options.threads,
                &tight,
            ) {
                Ok(sweep) => Some(sweep),
                Err(e) => {
                    report
                        .violations
                        .push(format!("deadline control ({tag}): {e}"));
                    None
                }
            }
        };
        if let (Some(first), Some(second)) = (run("first", &mut report), run("replay", &mut report))
        {
            let timed_out = first.timed_out().count();
            if timed_out != algorithms.len() {
                report.violations.push(format!(
                    "deadline control: {timed_out} of {} cells timed out under a 2-window budget",
                    algorithms.len()
                ));
            }
            if digest(&first) != digest(&second) {
                report.violations.push(
                    "deadline control: replay diverged — logical timeout is not deterministic"
                        .into(),
                );
            }
            accumulate(&mut report.summary, &first.supervision());
            accumulate(&mut report.summary, &second.supervision());
        }
    }

    // Counter contract: the deterministic `supervise.*` counters must
    // agree with the record-derived summary. Wall-clock events would be
    // legitimate skew, but this harness configures none.
    if let Some(before) = before {
        let after = oeb_trace::snapshot();
        let delta = |name: &str| {
            after
                .counters
                .get(name)
                .copied()
                .unwrap_or(0)
                .saturating_sub(before.counters.get(name).copied().unwrap_or(0))
        };
        let checks = [
            ("supervise.retries", report.summary.retries as u64),
            ("supervise.timeouts", report.summary.timeouts as u64),
            ("supervise.quarantined", report.summary.quarantined as u64),
        ];
        for (name, expected) in checks {
            let got = delta(name);
            if got != expected {
                report.violations.push(format!(
                    "counter {name} moved by {got}, records say {expected}"
                ));
            }
        }
    }

    Ok(report)
}

fn accumulate(total: &mut SupervisionSummary, part: &SupervisionSummary) {
    total.retries += part.retries;
    total.recovered += part.recovered;
    total.timeouts += part.timeouts;
    total.wall_timeouts += part.wall_timeouts;
    total.quarantined += part.quarantined;
}

fn status_of(outcome: &crate::sweep::RunOutcome) -> &'static str {
    match outcome {
        crate::sweep::RunOutcome::Completed(_) => "completed",
        crate::sweep::RunOutcome::Inapplicable => "inapplicable",
        crate::sweep::RunOutcome::Failed { .. } => "failed",
        crate::sweep::RunOutcome::TimedOut { .. } => "timed-out",
        crate::sweep::RunOutcome::Quarantined { .. } => "quarantined",
    }
}
