//! # oeb-core
//!
//! The OEBench pipeline proper: the ten stream learners of the paper's
//! Table 4 ([`learners`], [`sea`]), the prequential test-then-train
//! harness with imputation / scaling / outlier-removal stages
//! ([`harness`]), the open-environment statistics extraction of §4.3
//! ([`stats`], probes in [`probe`]), the PCA + K-Means representative
//! dataset selection of §4.4 ([`select`]), the Figure 9 recommendation
//! tree ([`mod@recommend`]), and report formatting ([`report`]).

// Index loops over parallel numeric buffers are clearer than iterator
// chains in these kernels.
#![allow(clippy::needless_range_loop)]

pub mod arf_train;
pub mod chaos;
pub mod cost;
pub mod error;
pub mod executor;
pub mod experiments;
pub mod extend;
pub mod harness;
pub mod learners;
pub mod plot;
pub mod prepare;
pub mod prequential;
pub mod probe;
pub mod recommend;
pub mod report;
pub mod sea;
pub mod select;
pub mod stats;
pub mod supervise;
pub mod sweep;

pub use arf_train::{arf_train_window, arf_train_window_lockstep};
pub use chaos::{run_chaos_matrix, ChaosCell, ChaosOptions, ChaosReport};
pub use cost::{CostClass, CostModel, CostSample};
pub use error::HarnessError;
pub use executor::{
    parallel_map, parallel_map_watchdog, parallel_map_watchdog_ordered, resolve_threads,
    set_default_threads, CancelFlag, WatchdogSlot,
};
pub use extend::DriftResetLearner;
pub use harness::{
    run_seeds, run_stream, try_run_frames, try_run_stream, try_run_stream_supervised,
    DegradePolicy, HarnessConfig, ImputerChoice, OutlierRemoval, RunResult,
};
pub use learners::{Algorithm, LearnerConfig, StreamLearner};
pub use plot::{LinePlot, Series};
pub use prepare::{
    evaluate_prepared, prepare_cached, prepare_from_source, prepare_stream, PreparedStream,
    PreparedWindow,
};
pub use prequential::{
    prequential_dataset, prequential_items, try_prequential_dataset, try_prequential_items,
    try_prequential_items_budgeted, IncrementalClassifier, PrequentialResult,
};
pub use recommend::{recommend, render_tree, Scenario};
pub use report::{assign_levels, fmt_mean_std, fmt_summary, TextTable};
pub use sea::{BaseKind, SeaLearner};
pub use select::{select_representatives, SelectionResult};
pub use stats::{extract_stats, AvgMax, OeStats, StatsConfig, StatsMode};
pub use supervise::{
    backoff_duration, cell_seed, supervise_cell, CellBudget, SupervisePolicy, Supervised,
};
pub use sweep::{
    load_checkpoint, run_sweep, run_sweep_scheduled, run_sweep_supervised, set_sweep_progress,
    RunOutcome, Schedule, SupervisionSummary, SweepRecord, SweepReport,
};
