//! Per-learner-class cost model fit from attributed cell spans.
//!
//! `oeb-profile cost-model` regresses observed per-cell durations on the
//! cell's raw row count, one least-squares line `cost ≈ a + b·rows` per
//! learner class, and writes the result as `COST_MODEL.json`. The sweep
//! can then claim cells longest-expected-first (see
//! [`Schedule`](crate::sweep::Schedule)): predictions only permute the
//! *claim order*, never what a cell computes, so a wildly wrong model
//! costs utilization but can never change a result.
//!
//! Determinism: the fit folds samples in the exact order given (callers
//! pass the deterministic drained-trace order), classes live in a
//! `BTreeMap`, and predictions are pure `f64` arithmetic — the same
//! samples always produce byte-identical `COST_MODEL.json`.

use std::collections::BTreeMap;
use std::path::Path;

use crate::error::HarnessError;

/// One observed cell execution: which learner class ran, over how many
/// raw rows, for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSample {
    /// Learner class (the algorithm name from the cell context).
    pub learner: String,
    /// Raw rows of the cell's dataset.
    pub rows: u64,
    /// Observed duration in nanoseconds.
    pub dur_ns: u64,
}

/// Least-squares line for one learner class: `cost_ns ≈ a + b·rows`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostClass {
    /// Intercept (nanoseconds).
    pub a: f64,
    /// Slope (nanoseconds per row).
    pub b: f64,
    /// Number of samples the fit saw.
    pub samples: u64,
}

impl CostClass {
    fn predict(&self, rows: u64) -> f64 {
        self.a + self.b * rows as f64
    }
}

/// A per-learner-class cost model (`COST_MODEL.json`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostModel {
    /// One fitted line per learner class, keyed by class name.
    pub classes: BTreeMap<String, CostClass>,
}

impl CostModel {
    /// Fit one least-squares line per learner class. A class with a
    /// single sample (or zero row variance) degenerates to a flat line
    /// through the mean duration.
    pub fn fit(samples: &[CostSample]) -> CostModel {
        let mut grouped: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
        for s in samples {
            grouped
                .entry(s.learner.as_str())
                .or_default()
                .push((s.rows as f64, s.dur_ns as f64));
        }
        let classes = grouped
            .into_iter()
            .map(|(learner, points)| {
                let n = points.len() as f64;
                let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
                let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
                let sxx: f64 = points
                    .iter()
                    .map(|(x, _)| (x - mean_x) * (x - mean_x))
                    .sum();
                let sxy: f64 = points
                    .iter()
                    .map(|(x, y)| (x - mean_x) * (y - mean_y))
                    .sum();
                let b = if sxx > 0.0 { sxy / sxx } else { 0.0 };
                let a = mean_y - b * mean_x;
                (
                    learner.to_string(),
                    CostClass {
                        a,
                        b,
                        samples: points.len() as u64,
                    },
                )
            })
            .collect();
        CostModel { classes }
    }

    /// Expected duration in nanoseconds for `learner` over `rows` rows.
    /// An unknown class falls back to the mean prediction across known
    /// classes (so a partially-fitted model still orders sensibly); an
    /// empty model predicts 0 for everything, which degenerates to FIFO.
    pub fn expected_ns(&self, learner: &str, rows: u64) -> f64 {
        if let Some(class) = self.classes.get(learner) {
            return class.predict(rows);
        }
        if self.classes.is_empty() {
            return 0.0;
        }
        self.classes.values().map(|c| c.predict(rows)).sum::<f64>() / self.classes.len() as f64
    }

    /// Serialise as the `COST_MODEL.json` document.
    pub fn to_json(&self) -> serde_json::Value {
        let mut classes = serde_json::Map::new();
        for (name, c) in &self.classes {
            classes.insert(
                name.clone(),
                serde_json::json!({ "a": c.a, "b": c.b, "samples": c.samples }),
            );
        }
        serde_json::json!({
            "schema": 1,
            "unit": "ns",
            "model": "cost ≈ a + b·rows",
            "classes": serde_json::Value::Object(classes),
        })
    }

    /// Parse a `COST_MODEL.json` document.
    pub fn from_json(v: &serde_json::Value) -> Result<CostModel, String> {
        let classes = v
            .get("classes")
            .and_then(|c| c.as_object())
            .ok_or("cost model lacks a `classes` object")?;
        let mut model = CostModel::default();
        for (name, c) in classes.iter() {
            let field = |k: &str| {
                c.get(k)
                    .and_then(|x| x.as_f64())
                    .ok_or_else(|| format!("class {name:?}: `{k}` is not a number"))
            };
            model.classes.insert(
                name.clone(),
                CostClass {
                    a: field("a")?,
                    b: field("b")?,
                    samples: field("samples")? as u64,
                },
            );
        }
        Ok(model)
    }

    /// Load a `COST_MODEL.json` file.
    pub fn load(path: &Path) -> Result<CostModel, HarnessError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            HarnessError::InvalidConfig(format!("cannot read cost model {}: {e}", path.display()))
        })?;
        let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| {
            HarnessError::InvalidConfig(format!("cost model {}: invalid JSON: {e}", path.display()))
        })?;
        CostModel::from_json(&v)
            .map_err(|e| HarnessError::InvalidConfig(format!("cost model {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(learner: &str, rows: u64, dur_ns: u64) -> CostSample {
        CostSample {
            learner: learner.into(),
            rows,
            dur_ns,
        }
    }

    #[test]
    fn fit_recovers_an_exact_line() {
        // dur = 100 + 3·rows, exactly.
        let samples: Vec<CostSample> = [10u64, 20, 40, 80]
            .iter()
            .map(|&r| sample("arf", r, 100 + 3 * r))
            .collect();
        let m = CostModel::fit(&samples);
        let c = m.classes["arf"];
        assert!((c.a - 100.0).abs() < 1e-6, "intercept {}", c.a);
        assert!((c.b - 3.0).abs() < 1e-9, "slope {}", c.b);
        assert_eq!(c.samples, 4);
        assert!((m.expected_ns("arf", 1000) - 3100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_classes_fall_back_to_means() {
        let m = CostModel::fit(&[sample("mlp", 50, 900), sample("mlp", 50, 1100)]);
        let c = m.classes["mlp"];
        assert_eq!(c.b, 0.0, "zero row variance must give a flat line");
        assert!((c.a - 1000.0).abs() < 1e-9);
        // Unknown class: mean prediction across known classes.
        assert!((m.expected_ns("knn", 50) - 1000.0).abs() < 1e-9);
        // Empty model: everything costs 0 (pure FIFO).
        assert_eq!(CostModel::default().expected_ns("arf", 10), 0.0);
    }

    #[test]
    fn json_round_trips() {
        let m = CostModel::fit(&[
            sample("arf", 10, 130),
            sample("arf", 20, 160),
            sample("tree", 10, 50),
        ]);
        let v = m.to_json();
        assert_eq!(v["schema"].as_u64(), Some(1));
        assert_eq!(v["unit"], "ns");
        let back = CostModel::from_json(&v).unwrap();
        assert_eq!(back, m);
        assert!(CostModel::from_json(&serde_json::json!({})).is_err());
    }
}
