//! Deterministic work-stealing executor for sweep cells.
//!
//! A sweep is an embarrassingly parallel grid of (dataset, algorithm,
//! seed) cells, but OEBench's results must be reproducible: running the
//! same sweep with 1 or 16 workers has to produce the same report. The
//! executor gets both properties by separating *scheduling* from
//! *ordering*: workers claim cell indices from a shared atomic counter
//! (natural work stealing — a worker stuck on a slow neural-network cell
//! simply claims fewer cells), and every result lands in the slot of its
//! cell index, so collection order is the cell order no matter which
//! worker ran what. Each cell seeds its own RNGs from its coordinates,
//! never from worker identity, making the computation itself
//! schedule-independent.
//!
//! Thread-count resolution (strongest first): an explicit `--threads N`,
//! the process-wide default installed by [`set_default_threads`] (the
//! CLI layer sets this so deep call sites like the experiment drivers
//! inherit the flag), the `OEBENCH_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use oeb_trace::{Counter, Gauge, SpanDef};

/// `executor.*` instruments are the one family *excluded* from the
/// schedule-invariance contract: which worker claims which index is real
/// scheduling information, and that is exactly what they report. The
/// watchdog counter belongs here for the same reason: whether a wall
/// clock expires depends on the machine, never on the computation.
static CLAIMS: Counter = Counter::new("executor.claims");
static SEQUENTIAL_RUNS: Counter = Counter::new("executor.sequential_runs");
static PARALLEL_RUNS: Counter = Counter::new("executor.parallel_runs");
static LOCKSTEP_RUNS: Counter = Counter::new("executor.lockstep_runs");
static QUEUE_DEPTH: Gauge = Gauge::new("executor.queue.depth");
static WORKERS: Gauge = Gauge::new("executor.workers");
static WATCHDOG_FIRED: Counter = Counter::new("executor.watchdog.fired");
static WORKER_SPAN: SpanDef = SpanDef::new("executor.worker");
static TASK_SPAN: SpanDef = SpanDef::new("executor.task");

/// Process-wide default worker count; 0 means "not set".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide default worker count (the CLI's `--threads`
/// flag). `None` or `Some(0)` clears it back to auto-detection.
pub fn set_default_threads(threads: Option<usize>) {
    DEFAULT_THREADS.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the worker count: `explicit` beats the
/// [`set_default_threads`] default, which beats `OEBENCH_THREADS`, which
/// beats the machine's available parallelism. Always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    let default = DEFAULT_THREADS.load(Ordering::Relaxed);
    if default > 0 {
        return default;
    }
    if let Some(n) = std::env::var("OEBENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cooperative cancellation signal for one supervised cell attempt.
///
/// The watchdog thread *sets* the flag when an attempt's wall-clock
/// deadline expires; the evaluation loop *polls* it between windows (and
/// the item-level prequential loop between items) and bails out with a
/// typed [`HarnessError::CellTimedOut`](crate::error::HarnessError)
/// instead of hanging the sweep. A [`CancelFlag::never`] carries no
/// state and never fires, so the unsupervised path stays branch-cheap.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Option<Arc<AtomicBool>>);

impl CancelFlag {
    /// A flag that can never fire (the unsupervised default).
    pub fn never() -> CancelFlag {
        CancelFlag(None)
    }

    /// A live flag, initially not cancelled. Clones share the signal.
    pub fn armed() -> CancelFlag {
        CancelFlag(Some(Arc::new(AtomicBool::new(false))))
    }

    /// Fires the flag. A [`CancelFlag::never`] flag ignores this.
    pub fn cancel(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Has the flag fired? One relaxed load on the armed path, a plain
    /// branch on the never path.
    pub fn is_cancelled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// One worker's interface to the wall-clock watchdog.
///
/// Each cell *attempt* arms a fresh deadline ([`WatchdogSlot::arm`]), so
/// a retried cell gets its full wall budget back per attempt instead of
/// inheriting a burnt clock. Without a configured deadline, `arm`
/// returns [`CancelFlag::never`] and records nothing.
pub struct WatchdogSlot {
    deadline: Option<Duration>,
    // (attempt start, its cancel flag); None while the worker is idle.
    // A fresh flag per attempt makes firing race-free: a flag belongs to
    // exactly one attempt, so a late cancellation cannot leak into the
    // next cell the worker picks up.
    active: Mutex<Option<(std::time::Instant, CancelFlag)>>,
}

impl WatchdogSlot {
    fn new(deadline: Option<Duration>) -> WatchdogSlot {
        WatchdogSlot {
            deadline,
            active: Mutex::new(None),
        }
    }

    /// Starts a fresh wall-clock deadline for one attempt and returns
    /// the flag the attempt should poll.
    pub fn arm(&self) -> CancelFlag {
        if self.deadline.is_none() {
            return CancelFlag::never();
        }
        let flag = CancelFlag::armed();
        // oeb-lint: allow(raw-instant, wall-clock-in-results) -- watchdog deadline origin; the reading only feeds the cancel flag, never a result field
        let started = std::time::Instant::now();
        *lock_recover(&self.active) = Some((started, flag.clone()));
        flag
    }

    /// Clears the active deadline (the attempt finished on its own).
    pub fn disarm(&self) {
        if self.deadline.is_some() {
            *lock_recover(&self.active) = None;
        }
    }

    /// Watchdog-side sweep: fire and clear the flag if the active
    /// attempt has outlived the deadline.
    fn expire(&self) {
        let Some(deadline) = self.deadline else {
            return;
        };
        let mut active = lock_recover(&self.active);
        if let Some((started, flag)) = active.as_ref() {
            if started.elapsed() >= deadline {
                flag.cancel();
                WATCHDOG_FIRED.incr();
                *active = None;
            }
        }
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock: every value
/// behind these locks is valid under torn updates (an `Option` slot is
/// either written or not), so a panicking holder must not cascade.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Maps `f` over `0..n` on up to `threads` workers and returns the
/// results in index order.
///
/// Workers claim indices from a shared counter (work stealing by
/// construction) and deposit each result in its index's slot, so the
/// output is identical to `(0..n).map(f).collect()` whenever `f(i)`
/// depends only on `i` — the parallel sweep stays bit-identical to the
/// sequential one. `f` must not panic: a panicking worker aborts the
/// scope (callers wanting isolation catch panics inside `f`, as
/// `run_isolated` does).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_watchdog(n, threads, None, |i, _| f(i))
}

/// [`parallel_map`] supervised by a wall-clock watchdog.
///
/// `f` receives its worker's [`WatchdogSlot`]; each cell attempt calls
/// [`WatchdogSlot::arm`] to start a deadline and polls the returned
/// [`CancelFlag`] cooperatively. When `wall_deadline` is `None` the
/// watchdog thread is never spawned and arming is free — this path is
/// byte-identical to the historical unsupervised executor.
pub fn parallel_map_watchdog<T, F>(
    n: usize,
    threads: usize,
    wall_deadline: Option<Duration>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &WatchdogSlot) -> T + Sync,
{
    parallel_map_watchdog_ordered(n, threads, wall_deadline, None, f)
}

/// [`parallel_map_watchdog`] with an explicit *claim order*: workers pull
/// positions from the shared counter as usual but execute
/// `order[position]` instead of the position itself (a cost-ordered sweep
/// claims longest-expected-first). Results are still deposited in — and
/// collected from — per-*task* slots, so the output `Vec` is indexed by
/// task and bit-identical for every order and thread count whenever
/// `f(i)` depends only on `i`; the order can only shift wall-clock
/// utilization. `order`, when given, must be a permutation of `0..n`.
pub fn parallel_map_watchdog_ordered<T, F>(
    n: usize,
    threads: usize,
    wall_deadline: Option<Duration>,
    order: Option<&[usize]>,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &WatchdogSlot) -> T + Sync,
{
    debug_assert!(order.is_none_or(|o| {
        let mut seen = vec![false; n];
        o.len() == n
            && o.iter()
                .all(|&i| i < n && !std::mem::replace(&mut seen[i], true))
    }));
    let task_at = |position: usize| order.map_or(position, |o| o[position]);
    if threads <= 1 || n <= 1 {
        SEQUENTIAL_RUNS.incr();
        let slot = WatchdogSlot::new(wall_deadline);
        return with_watchdog(wall_deadline, std::slice::from_ref(&slot), || {
            let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for position in 0..n {
                let i = task_at(position);
                let _task = TASK_SPAN.start();
                CLAIMS.incr();
                results[i] = Some(f(i, &slot));
            }
            results
                .into_iter()
                .map(|r| r.expect("every index visited exactly once"))
                .collect()
        });
    }
    PARALLEL_RUNS.incr();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    WORKERS.set(workers as u64);
    let dog_slots: Vec<WatchdogSlot> = (0..workers)
        .map(|_| WatchdogSlot::new(wall_deadline))
        .collect();
    let (slots_ref, next_ref, f_ref, dog_ref) = (&slots, &next, &f, &dog_slots);
    with_watchdog(wall_deadline, &dog_slots, || {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (slots, next, f) = (slots_ref, next_ref, f_ref);
                let dog_slot = &dog_ref[w];
                scope.spawn(move || {
                    // Slot w+1 mirrors the result-slot discipline: the trace
                    // stream merges per-worker buffers in slot order, so the
                    // export is stably ordered however the OS scheduled us.
                    // (The spawning thread keeps slot 0.)
                    oeb_trace::set_thread_slot(w as u32 + 1);
                    let worker = WORKER_SPAN.start();
                    loop {
                        let position = next.fetch_add(1, Ordering::Relaxed);
                        if position >= n {
                            break;
                        }
                        let i = task_at(position);
                        CLAIMS.incr();
                        QUEUE_DEPTH.set((n - position.min(n)) as u64);
                        let _task = TASK_SPAN.start();
                        let result = f(i, dog_slot);
                        dog_slot.disarm();
                        *lock_recover(&slots[i]) = Some(result);
                    }
                    // Flush before the closure returns: `thread::scope`
                    // releases the parent when the closure ends, which can
                    // be before this thread's TLS destructors run — a
                    // drain on the parent would miss the backstop flush.
                    drop(worker);
                    oeb_trace::flush_thread();
                });
            }
        });
    });
    slots
        .into_iter()
        .map(|slot| lock_recover_into(slot).expect("every index claimed exactly once"))
        .collect()
}

/// Spin-then-yield wait loop for the lockstep round protocol: rounds are
/// microseconds long, so futex parking (condvars, [`std::sync::Barrier`])
/// would cost more than the round itself.
#[inline]
fn spin_until(mut ready: impl FnMut() -> bool) {
    // A short spin budget before yielding: on an oversubscribed (or
    // single-core) machine the awaited thread needs this CPU, and a long
    // spin would burn the rest of the scheduler quantum before ceding it.
    let mut spins = 0u32;
    while !ready() {
        spins += 1;
        if spins < 256 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Runs `rounds` alternating serial/parallel rounds over `slots` with
/// worker threads that live for the whole call.
///
/// Each round `r`:
/// 1. the coordinator (the calling thread) runs `pre(r)` alone — every
///    worker is spinning on the round publication word, so `pre` has
///    exclusive access to whatever state it touches (including the slots
///    themselves, through their mutexes);
/// 2. every slot index is visited exactly once by
///    `work(r, slot_index, &mut slot)`, statically striped across the
///    participants (coordinator included);
/// 3. the coordinator waits for every worker's round-completion count
///    before the next `pre` starts.
///
/// The sync cost per round is one release-store (the publication) plus
/// one release-RMW per worker (the completion count) — deliberately
/// cheaper than a claim counter with a barrier pair, because the rounds
/// this primitive exists for (one ARF sample) are only a few
/// microseconds of work. Static striping gives up work stealing, which
/// is fine for slots of near-uniform cost like ensemble members.
///
/// Determinism contract: which *thread* runs `work` on a slot is fixed
/// by the stripe, but more importantly each (round, slot) pair is
/// visited exactly once with exclusive access and no two rounds
/// overlap, so the slots' final states are identical at any thread
/// count whenever `work`'s effect depends only on its arguments. This
/// is the intra-cell counterpart of [`parallel_map`]'s slot discipline:
/// that primitive parallelises *independent* cells, this one
/// parallelises the members of one model under a serial per-round
/// randomness pre-pass (ARF's Poisson bagging; see `oeb-tree`).
pub fn lockstep_rounds<T, Pre, Work>(
    slots: &[Mutex<T>],
    threads: usize,
    rounds: usize,
    mut pre: Pre,
    work: Work,
) where
    T: Send,
    Pre: FnMut(usize),
    Work: Fn(usize, usize, &mut T) + Sync,
{
    let n = slots.len();
    if rounds == 0 || n == 0 {
        return;
    }
    if threads <= 1 || n <= 1 {
        SEQUENTIAL_RUNS.incr();
        for r in 0..rounds {
            pre(r);
            for (i, slot) in slots.iter().enumerate() {
                work(r, i, &mut lock_recover(slot));
            }
        }
        return;
    }
    LOCKSTEP_RUNS.incr();
    let participants = threads.min(n);
    let workers = participants - 1; // the coordinator runs stripe 0
    WORKERS.set(participants as u64);
    // `published` holds r+1 while round r is open (usize::MAX = shut
    // down); `done` counts worker round completions cumulatively, so it
    // never needs a racy per-round reset.
    let published = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let (published_ref, done_ref, work_ref) = (&published, &done, &work);
    std::thread::scope(|scope| {
        for w in 0..workers {
            scope.spawn(move || {
                oeb_trace::set_thread_slot(w as u32 + 1);
                let span = WORKER_SPAN.start();
                let stripe = w + 1;
                let mut r = 0usize;
                loop {
                    let mut p = 0;
                    spin_until(|| {
                        p = published_ref.load(Ordering::Acquire);
                        p == usize::MAX || p > r
                    });
                    if p == usize::MAX {
                        break;
                    }
                    let mut i = stripe;
                    while i < n {
                        work_ref(r, i, &mut lock_recover(&slots[i]));
                        i += participants;
                    }
                    done_ref.fetch_add(1, Ordering::Release);
                    r += 1;
                }
                // See parallel_map_watchdog_ordered: flush before the
                // scope releases the parent, ahead of TLS teardown.
                drop(span);
                oeb_trace::flush_thread();
            });
        }
        for r in 0..rounds {
            pre(r);
            published.store(r + 1, Ordering::Release);
            let mut i = 0;
            while i < n {
                work(r, i, &mut lock_recover(&slots[i]));
                i += participants;
            }
            // All workers must close round r before the next exclusive
            // pre-pass may touch shared state.
            let target = (r + 1) * workers;
            spin_until(|| done.load(Ordering::Acquire) >= target);
        }
        published.store(usize::MAX, Ordering::Release);
    });
}

fn lock_recover_into<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `body` with (when a deadline is configured) a watchdog thread
/// periodically expiring overdue attempts in `slots`. The thread is
/// joined before this returns.
fn with_watchdog<R>(
    wall_deadline: Option<Duration>,
    slots: &[WatchdogSlot],
    body: impl FnOnce() -> R,
) -> R {
    let Some(deadline) = wall_deadline else {
        return body();
    };
    // Poll at an eighth of the deadline, clamped to [1ms, 50ms]: fine
    // enough that an expired cell is cancelled promptly, coarse enough
    // that the watchdog is invisible in profiles.
    let poll = (deadline / 8).clamp(Duration::from_millis(1), Duration::from_millis(50));
    let stop = AtomicBool::new(false);
    let (stop_ref, slots_ref) = (&stop, slots);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) {
                for slot in slots_ref {
                    slot.expire();
                }
                std::thread::sleep(poll);
            }
        });
        let result = body();
        stop.store(true, Ordering::SeqCst);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_index_order() {
        let seq = parallel_map(64, 1, |i| i * i);
        let par = parallel_map(64, 4, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(par[10], 100);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_work_is_stolen_not_blocked() {
        // One slow item must not serialize the rest: with 2 workers the
        // 15 fast items all complete while the slow one runs.
        let out = parallel_map(16, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_threads_beat_everything() {
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero means "unset", falling through to the next source.
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn default_threads_are_consulted_when_no_explicit_value() {
        set_default_threads(Some(5));
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2);
        set_default_threads(None);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn never_flag_ignores_cancellation() {
        let flag = CancelFlag::never();
        flag.cancel();
        assert!(!flag.is_cancelled());
        let armed = CancelFlag::armed();
        assert!(!armed.is_cancelled());
        armed.cancel();
        assert!(armed.is_cancelled());
    }

    #[test]
    fn watchdog_cancels_an_overrunning_task() {
        // A 5ms deadline over a task that polls its flag: the watchdog
        // must fire and the task must observe the cancellation.
        let out = parallel_map_watchdog(2, 2, Some(Duration::from_millis(5)), |i, dog| {
            let flag = dog.arm();
            for _ in 0..2_000 {
                if flag.is_cancelled() {
                    return (i, true);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            (i, false)
        });
        assert_eq!(out.len(), 2);
        for (i, cancelled) in out {
            assert!(cancelled, "task {i} ran past a 5ms deadline uncancelled");
        }
    }

    #[test]
    fn generous_deadline_never_fires() {
        let out = parallel_map_watchdog(8, 4, Some(Duration::from_secs(60)), |i, dog| {
            let flag = dog.arm();
            assert!(!flag.is_cancelled());
            i * 3
        });
        assert_eq!(out, (0..8).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn disarm_prevents_a_stale_cancellation() {
        // A finished attempt's flag must never fire after disarm, even
        // once its start time is long past the deadline.
        let slot = WatchdogSlot::new(Some(Duration::from_millis(0)));
        let flag = slot.arm();
        slot.disarm();
        std::thread::sleep(Duration::from_millis(2));
        slot.expire();
        assert!(!flag.is_cancelled(), "disarmed attempt was cancelled");
        // A fresh attempt on the same slot gets its own flag.
        let second = slot.arm();
        slot.expire();
        assert!(second.is_cancelled());
        assert!(!flag.is_cancelled(), "old flag fired for a new attempt");
    }

    #[test]
    fn lockstep_rounds_matches_serial_at_any_thread_count() {
        // Each slot accumulates a round-dependent value; the serial
        // reference and the 4-thread lockstep run must agree exactly.
        let run = |threads: usize| {
            let slots: Vec<Mutex<u64>> = (0..7).map(|i| Mutex::new(i as u64)).collect();
            let pre_log = Mutex::new(Vec::new());
            lockstep_rounds(
                &slots,
                threads,
                25,
                |r| lock_recover(&pre_log).push(r),
                |r, i, v| *v = v.wrapping_mul(31).wrapping_add((r * 7 + i) as u64),
            );
            // oeb-lint: allow(lock-order) -- the pre-pass closure's guard is gone before this read
            let log = lock_recover(&pre_log).clone();
            (
                slots.into_iter().map(lock_recover_into).collect::<Vec<_>>(),
                log,
            )
        };
        let (serial, serial_pre) = run(1);
        let (parallel, parallel_pre) = run(4);
        assert_eq!(serial, parallel);
        assert_eq!(serial_pre, (0..25).collect::<Vec<_>>());
        assert_eq!(serial_pre, parallel_pre);
    }

    #[test]
    fn lockstep_pre_pass_is_exclusive() {
        // `pre` may mutate the slots: workers must all be parked.
        let slots: Vec<Mutex<i64>> = (0..5).map(|_| Mutex::new(0)).collect();
        lockstep_rounds(
            &slots,
            3,
            40,
            |_r| {
                for s in &slots {
                    *lock_recover(s) += 1_000;
                }
            },
            |_r, _i, v| *v -= 1,
        );
        for s in &slots {
            assert_eq!(*lock_recover(s), 40 * 1_000 - 40);
        }
    }

    #[test]
    fn lockstep_handles_degenerate_shapes() {
        let slots: Vec<Mutex<usize>> = vec![Mutex::new(0)];
        lockstep_rounds(&slots, 8, 3, |_| {}, |_, _, v| *v += 1);
        assert_eq!(*lock_recover(&slots[0]), 3);
        let empty: Vec<Mutex<usize>> = Vec::new();
        lockstep_rounds(&empty, 4, 10, |_| {}, |_, _, _v: &mut usize| {});
        lockstep_rounds(&slots, 4, 0, |_| panic!("no rounds"), |_, _, _| {});
    }

    #[test]
    fn unconfigured_watchdog_arms_to_a_never_flag() {
        let slot = WatchdogSlot::new(None);
        let flag = slot.arm();
        slot.expire();
        assert!(!flag.is_cancelled());
    }
}
