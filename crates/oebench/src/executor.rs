//! Deterministic work-stealing executor for sweep cells.
//!
//! A sweep is an embarrassingly parallel grid of (dataset, algorithm,
//! seed) cells, but OEBench's results must be reproducible: running the
//! same sweep with 1 or 16 workers has to produce the same report. The
//! executor gets both properties by separating *scheduling* from
//! *ordering*: workers claim cell indices from a shared atomic counter
//! (natural work stealing — a worker stuck on a slow neural-network cell
//! simply claims fewer cells), and every result lands in the slot of its
//! cell index, so collection order is the cell order no matter which
//! worker ran what. Each cell seeds its own RNGs from its coordinates,
//! never from worker identity, making the computation itself
//! schedule-independent.
//!
//! Thread-count resolution (strongest first): an explicit `--threads N`,
//! the process-wide default installed by [`set_default_threads`] (the
//! CLI layer sets this so deep call sites like the experiment drivers
//! inherit the flag), the `OEBENCH_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use oeb_trace::{Counter, Gauge, SpanDef};

/// `executor.*` instruments are the one family *excluded* from the
/// schedule-invariance contract: which worker claims which index is real
/// scheduling information, and that is exactly what they report.
static CLAIMS: Counter = Counter::new("executor.claims");
static SEQUENTIAL_RUNS: Counter = Counter::new("executor.sequential_runs");
static PARALLEL_RUNS: Counter = Counter::new("executor.parallel_runs");
static QUEUE_DEPTH: Gauge = Gauge::new("executor.queue.depth");
static WORKERS: Gauge = Gauge::new("executor.workers");
static WORKER_SPAN: SpanDef = SpanDef::new("executor.worker");
static TASK_SPAN: SpanDef = SpanDef::new("executor.task");

/// Process-wide default worker count; 0 means "not set".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide default worker count (the CLI's `--threads`
/// flag). `None` or `Some(0)` clears it back to auto-detection.
pub fn set_default_threads(threads: Option<usize>) {
    DEFAULT_THREADS.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the worker count: `explicit` beats the
/// [`set_default_threads`] default, which beats `OEBENCH_THREADS`, which
/// beats the machine's available parallelism. Always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    let default = DEFAULT_THREADS.load(Ordering::Relaxed);
    if default > 0 {
        return default;
    }
    if let Some(n) = std::env::var("OEBENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..n` on up to `threads` workers and returns the
/// results in index order.
///
/// Workers claim indices from a shared counter (work stealing by
/// construction) and deposit each result in its index's slot, so the
/// output is identical to `(0..n).map(f).collect()` whenever `f(i)`
/// depends only on `i` — the parallel sweep stays bit-identical to the
/// sequential one. `f` must not panic: a panicking worker aborts the
/// scope (callers wanting isolation catch panics inside `f`, as
/// `run_isolated` does).
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        SEQUENTIAL_RUNS.incr();
        return (0..n)
            .map(|i| {
                let _task = TASK_SPAN.start();
                CLAIMS.incr();
                f(i)
            })
            .collect();
    }
    PARALLEL_RUNS.incr();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    WORKERS.set(workers as u64);
    let (slots_ref, next_ref, f_ref) = (&slots, &next, &f);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (slots, next, f) = (slots_ref, next_ref, f_ref);
            scope.spawn(move || {
                // Slot w+1 mirrors the result-slot discipline: the trace
                // stream merges per-worker buffers in slot order, so the
                // export is stably ordered however the OS scheduled us.
                // (The spawning thread keeps slot 0.)
                oeb_trace::set_thread_slot(w as u32 + 1);
                let _worker = WORKER_SPAN.start();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    CLAIMS.incr();
                    QUEUE_DEPTH.set((n - i.min(n)) as u64);
                    let _task = TASK_SPAN.start();
                    let result = f(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_index_order() {
        let seq = parallel_map(64, 1, |i| i * i);
        let par = parallel_map(64, 4, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(par[10], 100);
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_work_is_stolen_not_blocked() {
        // One slow item must not serialize the rest: with 2 workers the
        // 15 fast items all complete while the slow one runs.
        let out = parallel_map(16, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_threads_beat_everything() {
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero means "unset", falling through to the next source.
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn default_threads_are_consulted_when_no_explicit_value() {
        set_default_threads(Some(5));
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2);
        set_default_threads(None);
        assert!(resolve_threads(None) >= 1);
    }
}
