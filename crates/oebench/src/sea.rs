//! SEA — the Streaming Ensemble Algorithm, Street & Kim, KDD 2001 —
//! generalised over the three base models the paper pairs it with
//! (SEA-NN, SEA-DT, SEA-GBDT).
//!
//! Each window trains a fresh candidate model; the candidate joins the
//! ensemble if there is room, otherwise it replaces the worst existing
//! member *when it outperforms it on the current window* — "SEA maintains
//! an ensemble and replaces older models with current models of better
//! quality" (§4.5). Prediction is a majority vote (classification) or the
//! member median (regression).

use crate::learners::{LearnerConfig, StreamLearner};
use oeb_linalg::Matrix;
use oeb_nn::{train_window, Mlp, Objective, Regularizer, SgdConfig};
use oeb_tabular::Task;
use oeb_tree::{DecisionTree, Gbdt, GbdtConfig, TreeConfig, TreeTask};

/// Which base model SEA wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseKind {
    /// Per-window MLP.
    Nn,
    /// Per-window CART tree.
    Dt,
    /// Per-window GBDT.
    Gbdt,
}

enum BaseModel {
    Nn(Box<Mlp>),
    Dt(DecisionTree),
    Gbdt(Gbdt),
}

impl BaseModel {
    fn fit(
        kind: BaseKind,
        task: Task,
        input_dim: usize,
        xs: &Matrix,
        ys: &[f64],
        cfg: &LearnerConfig,
        seed: u64,
    ) -> BaseModel {
        match kind {
            BaseKind::Nn => {
                let objective = match task {
                    Task::Classification { .. } => Objective::CrossEntropy,
                    Task::Regression => Objective::SquaredError,
                };
                let mut mlp =
                    Mlp::new(input_dim, &cfg.hidden, task.output_width(), objective, seed);
                train_window(
                    &mut mlp,
                    xs,
                    ys,
                    &SgdConfig {
                        epochs: cfg.epochs,
                        batch_size: cfg.batch_size,
                        lr: cfg.lr,
                        seed,
                    },
                    &Regularizer::None,
                );
                BaseModel::Nn(Box::new(mlp))
            }
            BaseKind::Dt => BaseModel::Dt(DecisionTree::fit(
                xs,
                ys,
                tree_task(task),
                &TreeConfig {
                    seed,
                    ..Default::default()
                },
            )),
            BaseKind::Gbdt => BaseModel::Gbdt(Gbdt::fit(
                xs,
                ys,
                tree_task(task),
                &GbdtConfig {
                    n_rounds: 5,
                    tree: TreeConfig {
                        max_depth: 6,
                        seed,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )),
        }
    }

    fn predict(&self, task: Task, x: &[f64]) -> f64 {
        match self {
            BaseModel::Nn(m) => match task {
                Task::Classification { .. } => m.predict_class(x) as f64,
                Task::Regression => m.forward(x)[0],
            },
            BaseModel::Dt(m) => m.predict(x),
            BaseModel::Gbdt(m) => m.predict(x),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            BaseModel::Nn(m) => m.memory_bytes(),
            BaseModel::Dt(m) => m.memory_bytes(),
            BaseModel::Gbdt(m) => m.memory_bytes(),
        }
    }
}

fn tree_task(task: Task) -> TreeTask {
    match task {
        Task::Classification { n_classes } => TreeTask::Classification { n_classes },
        Task::Regression => TreeTask::Regression,
    }
}

/// The SEA ensemble learner.
pub struct SeaLearner {
    kind: BaseKind,
    task: Task,
    input_dim: usize,
    cfg: LearnerConfig,
    members: Vec<BaseModel>,
    window_counter: u64,
}

impl SeaLearner {
    /// Creates an empty SEA ensemble of capacity `cfg.ensemble_size`.
    pub fn new(kind: BaseKind, task: Task, input_dim: usize, cfg: LearnerConfig) -> SeaLearner {
        SeaLearner {
            kind,
            task,
            input_dim,
            cfg,
            members: Vec::new(),
            window_counter: 0,
        }
    }

    /// Current ensemble size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True before any window was seen.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Mean loss of one model over a window (error rate or MSE).
    fn window_loss(&self, model: &BaseModel, xs: &Matrix, ys: &[f64]) -> f64 {
        let n = xs.rows().max(1);
        let mut loss = 0.0;
        for r in 0..xs.rows() {
            let pred = model.predict(self.task, xs.row(r));
            loss += match self.task {
                Task::Classification { .. } => f64::from(pred != ys[r]),
                Task::Regression => (pred - ys[r]).powi(2),
            };
        }
        loss / n as f64
    }
}

impl StreamLearner for SeaLearner {
    fn name(&self) -> &'static str {
        match self.kind {
            BaseKind::Nn => "SEA-NN",
            BaseKind::Dt => "SEA-DT",
            BaseKind::Gbdt => "SEA-GBDT",
        }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        match self.task {
            Task::Classification { n_classes } => {
                let mut votes = vec![0usize; n_classes];
                for m in &self.members {
                    let c = (m.predict(self.task, x) as usize).min(n_classes - 1);
                    votes[c] += 1;
                }
                let mut best = 0;
                for (c, &v) in votes.iter().enumerate() {
                    if v > votes[best] {
                        best = c;
                    }
                }
                best as f64
            }
            Task::Regression => {
                // Median of the members: the robust analogue of SEA's
                // majority vote (a single diverged member must not poison
                // the ensemble prediction).
                let mut preds: Vec<f64> = self
                    .members
                    .iter()
                    .map(|m| m.predict(self.task, x))
                    .collect();
                preds.sort_by(f64::total_cmp);
                preds[preds.len() / 2]
            }
        }
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        if xs.rows() == 0 {
            return;
        }
        self.window_counter += 1;
        let seed = self
            .cfg
            .seed
            .wrapping_mul(0x100000001B3)
            .wrapping_add(self.window_counter);
        let candidate = BaseModel::fit(
            self.kind,
            self.task,
            self.input_dim,
            xs,
            ys,
            &self.cfg,
            seed,
        );

        if self.members.len() < self.cfg.ensemble_size.max(1) {
            self.members.push(candidate);
            return;
        }
        // Quality check on the current window.
        let candidate_loss = self.window_loss(&candidate, xs, ys);
        let (worst_idx, worst_loss) = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, self.window_loss(m, xs, ys)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty ensemble");
        if candidate_loss < worst_loss {
            self.members[worst_idx] = candidate;
        }
    }

    fn memory_bytes(&self) -> usize {
        self.members.iter().map(BaseModel::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(offset: f64, n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 10) as f64 + offset]).collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| f64::from(r[0] >= offset + 5.0))
            .collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn ensemble_fills_to_capacity_then_replaces() {
        let task = Task::Classification { n_classes: 2 };
        let mut sea = SeaLearner::new(
            BaseKind::Dt,
            task,
            1,
            LearnerConfig {
                ensemble_size: 3,
                ..Default::default()
            },
        );
        for w in 0..5 {
            let (xs, ys) = window(w as f64 * 0.1, 64);
            sea.train_window(&xs, &ys);
        }
        assert_eq!(sea.len(), 3);
    }

    #[test]
    fn majority_vote_classifies() {
        let task = Task::Classification { n_classes: 2 };
        let mut sea = SeaLearner::new(BaseKind::Dt, task, 1, LearnerConfig::default());
        for _ in 0..3 {
            let (xs, ys) = window(0.0, 128);
            sea.train_window(&xs, &ys);
        }
        assert_eq!(sea.predict(&[1.0]), 0.0);
        assert_eq!(sea.predict(&[9.0]), 1.0);
    }

    #[test]
    fn regression_uses_member_median() {
        let task = Task::Regression;
        let mut sea = SeaLearner::new(BaseKind::Dt, task, 1, LearnerConfig::default());
        let rows: Vec<Vec<f64>> = (0..128).map(|i| vec![(i % 10) as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let xs = Matrix::from_rows(&rows);
        for _ in 0..3 {
            sea.train_window(&xs, &ys);
        }
        assert!((sea.predict(&[5.0]) - 15.0).abs() < 1.5);
    }

    #[test]
    fn empty_ensemble_predicts_zero() {
        let sea = SeaLearner::new(BaseKind::Nn, Task::Regression, 2, LearnerConfig::default());
        assert_eq!(sea.predict(&[1.0, 2.0]), 0.0);
        assert_eq!(sea.memory_bytes(), 0);
    }

    #[test]
    fn better_candidate_replaces_worst_member() {
        let task = Task::Classification { n_classes: 2 };
        let mut sea = SeaLearner::new(
            BaseKind::Dt,
            task,
            1,
            LearnerConfig {
                ensemble_size: 2,
                ..Default::default()
            },
        );
        // Fill with models for concept A.
        let (xs_a, ys_a) = window(0.0, 128);
        sea.train_window(&xs_a, &ys_a);
        sea.train_window(&xs_a, &ys_a);
        // A new concept: labels flipped. Candidates trained on B beat old
        // members on B-windows, so the ensemble converges to concept B.
        let ys_b: Vec<f64> = ys_a.iter().map(|y| 1.0 - y).collect();
        for _ in 0..4 {
            sea.train_window(&xs_a, &ys_b);
        }
        assert_eq!(sea.predict(&[1.0]), 1.0);
        assert_eq!(sea.predict(&[9.0]), 0.0);
    }

    #[test]
    fn sea_nn_trains_members() {
        let task = Task::Classification { n_classes: 2 };
        let mut sea = SeaLearner::new(
            BaseKind::Nn,
            task,
            1,
            LearnerConfig {
                epochs: 60,
                lr: 0.05,
                ..Default::default()
            },
        );
        // Normalised inputs, as the harness always feeds the learners.
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![(i % 10) as f64 / 10.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| f64::from(r[0] >= 0.5)).collect();
        let xs = Matrix::from_rows(&rows);
        sea.train_window(&xs, &ys);
        let correct = (0..xs.rows())
            .filter(|&r| sea.predict(xs.row(r)) == ys[r])
            .count();
        assert!(correct > 200, "{correct}/256");
    }
}
