//! The prequential (test-then-train) evaluation harness (§6.1 of the
//! paper).
//!
//! Per dataset: categorical features are one-hot encoded, missing values
//! imputed (KNN k=2 by default), every dimension rescaled with the *first
//! window's* statistics only, and then each window after the warm-up is
//! first tested (error rate for classification, MSE on the z-scored
//! target for regression) and then trained on. The final score averages
//! the per-window losses. The harness also records wall-clock train/test
//! time (Table 5 / Table 10) and peak model memory (Table 6).

use crate::learners::{Algorithm, LearnerConfig, StreamLearner};
use oeb_linalg::Matrix;
use oeb_outlier::{flag_by_sigma, Ecod, IForestConfig, IsolationForest};
use oeb_preprocess::{
    Imputer, KnnImputer, MeanImputer, OneHotEncoder, RegressionImputer, StandardScaler,
    TargetScaler, ZeroImputer,
};
use oeb_tabular::{StreamDataset, Task};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Which imputer fills missing values before testing/training (§6.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImputerChoice {
    /// KNN imputer with the given `k` (paper default k=2).
    Knn(usize),
    /// Ridge-regression imputer.
    Regression,
    /// Column-mean filling.
    Mean,
    /// Zero filling.
    Zero,
}

impl ImputerChoice {
    fn build(&self) -> Box<dyn Imputer> {
        match self {
            ImputerChoice::Knn(k) => Box::new(KnnImputer { k: *k }),
            ImputerChoice::Regression => Box::new(RegressionImputer::default()),
            ImputerChoice::Mean => Box::new(MeanImputer),
            ImputerChoice::Zero => Box::new(ZeroImputer),
        }
    }

    /// Identifier used in reports.
    pub fn name(&self) -> String {
        match self {
            ImputerChoice::Knn(k) => format!("knn(k={k})"),
            ImputerChoice::Regression => "regression".into(),
            ImputerChoice::Mean => "mean".into(),
            ImputerChoice::Zero => "zero".into(),
        }
    }
}

/// Optional outlier removal before test and train (§6.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierRemoval {
    /// Keep all samples.
    None,
    /// Remove samples ECOD flags at 3 sigma within the window.
    Ecod,
    /// Remove samples IForest flags at 3 sigma within the window.
    IForest,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Learner hyper-parameters.
    pub learner: LearnerConfig,
    /// Multiplier on the dataset's default window size (§6.4.2 sweeps
    /// {0.25, 0.5, 1, 2, 4}).
    pub window_factor: f64,
    /// Missing-value imputer.
    pub imputer: ImputerChoice,
    /// Oracle imputation: impute with knowledge of the entire stream
    /// (Figure 5's "Filling (oracle)"); the default imputes from the data
    /// seen so far ("Filling (normal)").
    pub oracle_imputation: bool,
    /// Drop the `n` most-missing feature columns before encoding
    /// (Figure 5's "Discard" variant).
    pub discard_most_missing: usize,
    /// Outlier removal mode.
    pub outlier_removal: OutlierRemoval,
    /// Shuffle the stream first (Figure 15's "no drift" baseline).
    pub shuffle: bool,
    /// Cap on rows kept as the imputation reference (compute bound).
    pub reference_cap: usize,
    /// Run seed (mixed into shuffling and learners).
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            learner: LearnerConfig::default(),
            window_factor: 1.0,
            imputer: ImputerChoice::Knn(2),
            oracle_imputation: false,
            discard_most_missing: 0,
            outlier_removal: OutlierRemoval::None,
            shuffle: false,
            reference_cap: 512,
            seed: 0,
        }
    }
}

/// Result of one prequential run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Per-window test loss (windows after the warm-up window, in order).
    pub per_window_loss: Vec<f64>,
    /// Mean of the per-window losses (NaN when a window diverged to NaN —
    /// the paper reports such runs as N/A).
    pub mean_loss: f64,
    /// Wall-clock seconds spent training.
    pub train_seconds: f64,
    /// Wall-clock seconds spent testing.
    pub test_seconds: f64,
    /// Total items processed (tested + trained).
    pub items: usize,
    /// Items per second over train + test time.
    pub throughput: f64,
    /// Peak model memory in bytes.
    pub memory_bytes: usize,
}

impl RunResult {
    /// True when the run produced a finite, non-diverged mean loss.
    pub fn is_valid(&self) -> bool {
        self.mean_loss.is_finite() && self.mean_loss.abs() < crate::report::DIVERGED
    }
}

/// Runs one `(dataset, algorithm)` pair through the prequential protocol.
/// Returns `None` when the algorithm does not apply (ARF on regression).
pub fn run_stream(
    dataset: &StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
) -> Option<RunResult> {
    let dataset = if config.shuffle {
        let mut order: Vec<usize> = (0..dataset.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ SHUFFLE_SEED);
        order.shuffle(&mut rng);
        std::borrow::Cow::Owned(dataset.permuted(&order))
    } else {
        std::borrow::Cow::Borrowed(dataset)
    };
    let dataset: &StreamDataset = &dataset;

    // Select the feature columns, possibly discarding the most-missing.
    let mut feature_cols = dataset.feature_cols();
    if config.discard_most_missing > 0 {
        feature_cols.sort_by(|&a, &b| {
            let ra = dataset.table.column(a).missing_ratio();
            let rb = dataset.table.column(b).missing_ratio();
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep = feature_cols
            .len()
            .saturating_sub(config.discard_most_missing)
            .max(1);
        feature_cols.truncate(keep);
        feature_cols.sort_unstable();
    }

    let encoder = OneHotEncoder::fit(&dataset.table, &feature_cols);
    let input_dim = encoder.width();
    let windows = dataset.windows_scaled(config.window_factor);
    if windows.len() < 2 {
        return None;
    }

    let mut learner_cfg = config.learner.clone();
    learner_cfg.seed = learner_cfg.seed.wrapping_add(config.seed);
    let mut learner: Box<dyn StreamLearner> =
        algorithm.make(dataset.task, input_dim, &learner_cfg)?;

    let imputer = config.imputer.build();

    // Oracle imputation reference: the whole encoded stream.
    let oracle_reference = if config.oracle_imputation {
        Some(encoder.encode_all(&dataset.table))
    } else {
        None
    };

    // Warm-up window fixes the scalers (§6.1: only first-window statistics
    // are available at the start).
    let mut reference_rows: Vec<Vec<f64>> = Vec::new();
    let first = encoder.encode(&dataset.table, windows[0].clone());
    push_reference(&mut reference_rows, &first, config.reference_cap);
    let mut first_imputed = first;
    impute_window(
        imputer.as_ref(),
        &mut first_imputed,
        oracle_reference.as_ref(),
        &reference_rows,
    );
    let scaler = StandardScaler::fit(&first_imputed);
    let target_scaler = match dataset.task {
        Task::Regression => {
            let t: Vec<f64> = windows[0].clone().map(|r| dataset.target_at(r)).collect();
            Some(TargetScaler::fit(&t))
        }
        Task::Classification { .. } => None,
    };

    let mut per_window_loss = Vec::with_capacity(windows.len() - 1);
    let mut train_seconds = 0.0;
    let mut test_seconds = 0.0;
    let mut items = 0usize;
    let mut memory_peak = 0usize;

    for (k, range) in windows.iter().enumerate() {
        let mut feats = encoder.encode(&dataset.table, range.clone());
        impute_window(
            imputer.as_ref(),
            &mut feats,
            oracle_reference.as_ref(),
            &reference_rows,
        );
        if k > 0 {
            push_reference(&mut reference_rows, &feats, config.reference_cap);
        }
        scaler.transform(&mut feats);
        let mut targets: Vec<f64> = range.clone().map(|r| dataset.target_at(r)).collect();
        if let Some(ts) = &target_scaler {
            for t in &mut targets {
                *t = ts.transform(*t);
            }
        }

        // Optional outlier removal before test and train (§6.8).
        let (feats, targets) = match config.outlier_removal {
            OutlierRemoval::None => (feats, targets),
            OutlierRemoval::Ecod => {
                let scores = Ecod::fit(&feats).score_all(&feats);
                retain_unflagged(feats, targets, &scores)
            }
            OutlierRemoval::IForest => {
                let forest = IsolationForest::fit(
                    &feats,
                    &IForestConfig {
                        n_trees: 25,
                        seed: config.seed ^ k as u64,
                        ..Default::default()
                    },
                );
                let scores = forest.score_all(&feats);
                retain_unflagged(feats, targets, &scores)
            }
        };
        if feats.rows() == 0 {
            continue;
        }

        if k > 0 {
            // Test phase.
            let start = Instant::now();
            let mut loss = 0.0;
            for r in 0..feats.rows() {
                let pred = learner.predict(feats.row(r));
                loss += match dataset.task {
                    Task::Classification { .. } => f64::from(pred != targets[r]),
                    Task::Regression => (pred - targets[r]).powi(2),
                };
            }
            test_seconds += start.elapsed().as_secs_f64();
            per_window_loss.push(loss / feats.rows() as f64);
            items += feats.rows();
        }

        // Train phase.
        let start = Instant::now();
        learner.train_window(&feats, &targets);
        train_seconds += start.elapsed().as_secs_f64();
        items += feats.rows();
        memory_peak = memory_peak.max(learner.memory_bytes());
    }

    let mean_loss = if per_window_loss.is_empty() {
        f64::NAN
    } else {
        per_window_loss.iter().sum::<f64>() / per_window_loss.len() as f64
    };
    let elapsed = (train_seconds + test_seconds).max(1e-9);
    Some(RunResult {
        dataset: dataset.name.clone(),
        algorithm: learner.name().to_string(),
        per_window_loss,
        mean_loss,
        train_seconds,
        test_seconds,
        items,
        throughput: items as f64 / elapsed,
        memory_bytes: memory_peak,
    })
}

/// Runs the same pair for several seeds; returns (mean, std) of the valid
/// mean losses and the individual results. The paper repeats every
/// experiment three times.
pub fn run_seeds(
    dataset_for_seed: impl Fn(u64) -> StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
    seeds: &[u64],
) -> (Option<(f64, f64)>, Vec<RunResult>) {
    let mut results = Vec::new();
    for &seed in seeds {
        let mut cfg = config.clone();
        cfg.seed = seed;
        let dataset = dataset_for_seed(seed);
        if let Some(r) = run_stream(&dataset, algorithm, &cfg) {
            results.push(r);
        }
    }
    let losses: Vec<f64> = results
        .iter()
        .filter(|r| r.is_valid())
        .map(|r| r.mean_loss)
        .collect();
    let summary = if losses.is_empty() {
        None
    } else {
        Some((oeb_linalg::mean(&losses), oeb_linalg::std_dev(&losses)))
    };
    (summary, results)
}

fn impute_window(
    imputer: &dyn Imputer,
    window: &mut Matrix,
    oracle: Option<&Matrix>,
    reference_rows: &[Vec<f64>],
) {
    let has_missing = window.as_slice().iter().any(|x| !x.is_finite());
    if !has_missing {
        return;
    }
    match oracle {
        Some(full) => imputer.impute(window, full),
        None => {
            let reference = if reference_rows.is_empty() {
                window.clone()
            } else {
                Matrix::from_rows(reference_rows)
            };
            imputer.impute(window, &reference);
        }
    }
}

fn push_reference(reference: &mut Vec<Vec<f64>>, window: &Matrix, cap: usize) {
    for r in 0..window.rows() {
        reference.push(window.row(r).to_vec());
    }
    if reference.len() > cap {
        let excess = reference.len() - cap;
        reference.drain(..excess);
    }
}

fn retain_unflagged(feats: Matrix, targets: Vec<f64>, scores: &[f64]) -> (Matrix, Vec<f64>) {
    let flags = flag_by_sigma(scores, 3.0);
    let keep: Vec<usize> = (0..feats.rows()).filter(|&r| !flags[r]).collect();
    if keep.len() == feats.rows() {
        return (feats, targets);
    }
    let rows: Vec<Vec<f64>> = keep.iter().map(|&r| feats.row(r).to_vec()).collect();
    let ys: Vec<f64> = keep.iter().map(|&r| targets[r]).collect();
    (Matrix::from_rows(&rows), ys)
}

/// Seed salt for the Figure 15 shuffled baseline (ASCII "shuf").
const SHUFFLE_SEED: u64 = 0x73687566;

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_synth::{generate, registry_scaled};

    fn small_dataset(kind: &str) -> StreamDataset {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| match kind {
                "clf" => e.spec.name == "Electricity Prices",
                _ => e.spec.name == "Power Consumption of Tetouan City",
            })
            .unwrap();
        generate(&entry.spec, 0)
    }

    #[test]
    fn naive_dt_runs_prequentially_on_classification() {
        let d = small_dataset("clf");
        let r = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        assert!(r.is_valid());
        assert!(!r.per_window_loss.is_empty());
        // Error rate bounded in [0, 1].
        assert!(r.per_window_loss.iter().all(|&l| (0.0..=1.0).contains(&l)));
        assert!(r.throughput > 0.0);
        assert!(r.memory_bytes > 0);
    }

    #[test]
    fn naive_dt_beats_chance_on_classification() {
        let d = small_dataset("clf");
        let r = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        assert!(r.mean_loss < 0.5, "error rate {}", r.mean_loss);
    }

    #[test]
    fn regression_run_produces_finite_mse() {
        let d = small_dataset("reg");
        let mut cfg = HarnessConfig::default();
        cfg.learner.epochs = 3;
        let r = run_stream(&d, Algorithm::NaiveNn, &cfg).unwrap();
        assert!(r.is_valid(), "loss {}", r.mean_loss);
    }

    #[test]
    fn arf_returns_none_on_regression() {
        let d = small_dataset("reg");
        assert!(run_stream(&d, Algorithm::Arf, &HarnessConfig::default()).is_none());
    }

    #[test]
    fn shuffle_changes_the_window_losses() {
        let d = small_dataset("clf");
        let plain = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        let shuffled = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                shuffle: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(plain.per_window_loss, shuffled.per_window_loss);
    }

    #[test]
    fn outlier_removal_modes_run() {
        let d = small_dataset("reg");
        for mode in [OutlierRemoval::Ecod, OutlierRemoval::IForest] {
            let mut cfg = HarnessConfig {
                outlier_removal: mode,
                ..Default::default()
            };
            cfg.learner.epochs = 2;
            let r = run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
            assert!(r.is_valid());
        }
    }

    #[test]
    fn window_factor_changes_window_count() {
        let d = small_dataset("clf");
        let base = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        let halved = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                window_factor: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(halved.per_window_loss.len() > base.per_window_loss.len());
    }

    #[test]
    fn single_window_stream_returns_none() {
        // Fewer than two windows means there is nothing to test on.
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Electricity Prices")
            .unwrap();
        let mut spec = entry.spec.clone();
        spec.default_window = spec.n_rows; // one giant window
        let d = generate(&spec, 0);
        assert!(run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).is_none());
    }

    #[test]
    fn oracle_imputation_runs_and_differs_from_normal() {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Indian Cities Weather Delhi")
            .unwrap();
        let d = generate(&entry.spec, 0);
        let mut cfg = HarnessConfig::default();
        cfg.learner.epochs = 1;
        let normal = run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
        let oracle = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                oracle_imputation: true,
                ..cfg
            },
        )
        .unwrap();
        // High-missing stream: the fill values differ, so the losses do.
        assert_ne!(normal.per_window_loss, oracle.per_window_loss);
    }

    #[test]
    fn discarding_features_shrinks_the_input() {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Beijing Multi-Site Air-Quality Shunyi")
            .unwrap();
        let d = generate(&entry.spec, 0);
        let mut cfg = HarnessConfig {
            discard_most_missing: 3,
            ..Default::default()
        };
        cfg.learner.epochs = 1;
        let r = run_stream(&d, Algorithm::NaiveNn, &cfg).unwrap();
        assert!(!r.per_window_loss.is_empty());
    }

    #[test]
    fn imputer_names_match_configs() {
        assert_eq!(ImputerChoice::Knn(2).name(), "knn(k=2)");
        assert_eq!(ImputerChoice::Mean.name(), "mean");
        assert_eq!(ImputerChoice::Zero.name(), "zero");
        assert_eq!(ImputerChoice::Regression.name(), "regression");
    }

    #[test]
    fn run_seeds_aggregates() {
        let (summary, results) = run_seeds(
            |seed| {
                let entries = registry_scaled(0.03);
                let entry = entries
                    .iter()
                    .find(|e| e.spec.name == "Electricity Prices")
                    .unwrap();
                generate(&entry.spec, seed)
            },
            Algorithm::NaiveDt,
            &HarnessConfig::default(),
            &[0, 1, 2],
        );
        assert_eq!(results.len(), 3);
        let (mean, std) = summary.unwrap();
        assert!(mean.is_finite() && std.is_finite());
    }
}
