//! The prequential (test-then-train) evaluation harness (§6.1 of the
//! paper).
//!
//! Per dataset: categorical features are one-hot encoded, missing values
//! imputed (KNN k=2 by default), every dimension rescaled with the *first
//! window's* statistics only, and then each window after the warm-up is
//! first tested (error rate for classification, MSE on the z-scored
//! target for regression) and then trained on. The final score averages
//! the per-window losses. The harness also records wall-clock train/test
//! time (Table 5 / Table 10) and peak model memory (Table 6).
//!
//! Since the staged-pipeline refactor this module holds the public run
//! API and its configuration types; the actual work happens in two
//! stages in [`crate::prepare`]: [`prepare_cached`](crate::prepare::prepare_cached)
//! materializes a shared, immutable [`PreparedStream`](crate::prepare::PreparedStream)
//! per (dataset, seed, preprocessing config), and
//! [`evaluate_prepared`](crate::prepare::evaluate_prepared) runs one
//! learner over it. [`try_run_stream`] is the composition of the two.
//!
//! The harness consumes [`WindowFrame`](oeb_faults::WindowFrame)s from
//! any [`FrameSource`](oeb_faults::FrameSource) — in particular a
//! [`FaultInjector`](oeb_faults::FaultInjector)-wrapped stream — and
//! degrades gracefully on hostile input per [`DegradePolicy`] instead of
//! panicking: malformed windows can be skipped, imputation falls back to
//! mean/zero filling, and a learner whose loss goes non-finite can be
//! reset a bounded number of times.

use crate::error::HarnessError;
use crate::learners::{Algorithm, LearnerConfig};
use crate::prepare::{evaluate_prepared, evaluate_supervised, prepare_cached, prepare_from_source};
use crate::supervise::CellBudget;
use oeb_faults::{FaultPlan, FrameSource};
use oeb_linalg::Matrix;
use oeb_preprocess::{Imputer, KnnImputer, MeanImputer, RegressionImputer, ZeroImputer};
use oeb_tabular::{StreamDataset, Task};
use oeb_trace::{CellCtx, Counter, SpanDef};
use std::sync::Arc;

/// Completed harness runs (one learner over one prepared stream).
static HARNESS_RUNS: Counter = Counter::new("harness.runs");

/// Cell executions that ran under an installed [`CellCtx`] — i.e. whose
/// spans are attributable to a (dataset, learner, seed) in the trace.
static CELLS_ATTRIBUTED: Counter = Counter::new("profile.cells.attributed");

/// One end-to-end cell execution (prepare + evaluate), recorded with the
/// cell's context attached; `oeb-profile` keys per-cell wall time and the
/// cost-model fit on these events.
static CELL_RUN_SPAN: SpanDef = SpanDef::new("cell.run");

/// Which imputer fills missing values before testing/training (§6.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImputerChoice {
    /// KNN imputer with the given `k` (paper default k=2).
    Knn(usize),
    /// Ridge-regression imputer.
    Regression,
    /// Column-mean filling.
    Mean,
    /// Zero filling.
    Zero,
}

impl ImputerChoice {
    pub(crate) fn build(&self) -> Box<dyn Imputer> {
        match self {
            ImputerChoice::Knn(k) => Box::new(KnnImputer { k: *k }),
            ImputerChoice::Regression => Box::new(RegressionImputer::default()),
            ImputerChoice::Mean => Box::new(MeanImputer),
            ImputerChoice::Zero => Box::new(ZeroImputer),
        }
    }

    /// Identifier used in reports.
    pub fn name(&self) -> String {
        match self {
            ImputerChoice::Knn(k) => format!("knn(k={k})"),
            ImputerChoice::Regression => "regression".into(),
            ImputerChoice::Mean => "mean".into(),
            ImputerChoice::Zero => "zero".into(),
        }
    }
}

/// Optional outlier removal before test and train (§6.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierRemoval {
    /// Keep all samples.
    None,
    /// Remove samples ECOD flags at 3 sigma within the window.
    Ecod,
    /// Remove samples IForest flags at 3 sigma within the window.
    IForest,
}

/// How the harness degrades on hostile input instead of panicking.
///
/// Policies only engage when a window is actually malformed or a learner
/// actually diverges, so on a clean stream every policy combination
/// produces identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Skip (and log) windows with the wrong column count or that cannot
    /// be repaired, instead of failing the run.
    pub skip_bad_windows: bool,
    /// When the configured imputer leaves non-finite cells (e.g. KNN on
    /// an all-missing column with an all-missing reference), fall back to
    /// mean filling, then zero filling.
    pub imputer_fallback: bool,
    /// Re-initialise the learner when a window's loss goes non-finite,
    /// spending one retry from the budget.
    pub reset_on_nonfinite: bool,
    /// Model resets allowed before the run fails with
    /// [`HarnessError::NonFiniteLoss`].
    pub max_retries: usize,
}

impl Default for DegradePolicy {
    /// Skips and repairs malformed windows but preserves the paper's
    /// convention for diverged learners (a non-finite loss propagates to
    /// the mean, reported as N/A) rather than resetting the model.
    fn default() -> Self {
        DegradePolicy {
            skip_bad_windows: true,
            imputer_fallback: true,
            reset_on_nonfinite: false,
            max_retries: 2,
        }
    }
}

impl DegradePolicy {
    /// Everything enabled: survive whatever the stream throws.
    pub fn resilient() -> DegradePolicy {
        DegradePolicy {
            skip_bad_windows: true,
            imputer_fallback: true,
            reset_on_nonfinite: true,
            max_retries: 2,
        }
    }

    /// Nothing enabled: any malformed window fails the run with a typed
    /// error. Useful for validating that a stream *should* be clean.
    pub fn strict() -> DegradePolicy {
        DegradePolicy {
            skip_bad_windows: false,
            imputer_fallback: false,
            reset_on_nonfinite: false,
            max_retries: 0,
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Learner hyper-parameters.
    pub learner: LearnerConfig,
    /// Multiplier on the dataset's default window size (§6.4.2 sweeps
    /// {0.25, 0.5, 1, 2, 4}).
    pub window_factor: f64,
    /// Missing-value imputer.
    pub imputer: ImputerChoice,
    /// Oracle imputation: impute with knowledge of the entire stream
    /// (Figure 5's "Filling (oracle)"); the default imputes from the data
    /// seen so far ("Filling (normal)").
    pub oracle_imputation: bool,
    /// Drop the `n` most-missing feature columns before encoding
    /// (Figure 5's "Discard" variant).
    pub discard_most_missing: usize,
    /// Outlier removal mode.
    pub outlier_removal: OutlierRemoval,
    /// Shuffle the stream first (Figure 15's "no drift" baseline).
    pub shuffle: bool,
    /// Cap on rows kept as the imputation reference (compute bound).
    pub reference_cap: usize,
    /// Run seed (mixed into shuffling and learners).
    pub seed: u64,
    /// Degradation behaviour on malformed windows / diverging learners.
    pub degrade: DegradePolicy,
    /// Optional fault plan: when set, the window stream is routed through
    /// a [`FaultInjector`] before evaluation.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            learner: LearnerConfig::default(),
            window_factor: 1.0,
            imputer: ImputerChoice::Knn(2),
            oracle_imputation: false,
            discard_most_missing: 0,
            outlier_removal: OutlierRemoval::None,
            shuffle: false,
            reference_cap: 512,
            seed: 0,
            degrade: DegradePolicy::default(),
            fault_plan: None,
        }
    }
}

impl HarnessConfig {
    /// Rejects configurations that cannot run (the checks that used to be
    /// asserts deep inside the pipeline).
    pub fn validate(&self) -> Result<(), HarnessError> {
        if !self.window_factor.is_finite() || self.window_factor <= 0.0 {
            return Err(HarnessError::InvalidConfig(format!(
                "window factor {} must be a positive finite number",
                self.window_factor
            )));
        }
        if let ImputerChoice::Knn(0) = self.imputer {
            return Err(HarnessError::InvalidConfig(
                "knn imputer needs k >= 1".into(),
            ));
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate().map_err(HarnessError::InvalidConfig)?;
        }
        Ok(())
    }
}

/// Result of one prequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Per-window test loss (windows after the warm-up window, in order).
    pub per_window_loss: Vec<f64>,
    /// Mean of the per-window losses (NaN when a window diverged to NaN —
    /// the paper reports such runs as N/A).
    pub mean_loss: f64,
    /// Wall-clock seconds spent training.
    pub train_seconds: f64,
    /// Wall-clock seconds spent testing.
    pub test_seconds: f64,
    /// Total items processed (tested + trained).
    pub items: usize,
    /// Items per second over train + test time.
    pub throughput: f64,
    /// Peak model memory in bytes.
    pub memory_bytes: usize,
    /// Degradation events (skipped windows, imputer fallbacks, model
    /// resets) the policy absorbed; empty on a clean run.
    pub degradations: Vec<String>,
}

impl RunResult {
    /// True when the run produced a finite, non-diverged mean loss.
    pub fn is_valid(&self) -> bool {
        self.mean_loss.is_finite() && self.mean_loss.abs() < crate::report::DIVERGED
    }
}

/// Runs one `(dataset, algorithm)` pair through the prequential protocol.
/// Returns `None` when the algorithm does not apply (ARF on regression)
/// or the stream cannot be evaluated; [`try_run_stream`] reports the
/// precise reason.
pub fn run_stream(
    dataset: &StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
) -> Option<RunResult> {
    try_run_stream(dataset, algorithm, config).ok()
}

/// Runs one `(dataset, algorithm)` pair, reporting failures as typed
/// [`HarnessError`]s instead of panicking or silently returning `None`.
///
/// Composition of the two pipeline stages: the prepared stream comes
/// from the keyed cache, so consecutive runs differing only in the
/// learner (a sweep cell's ten algorithms, `run_seeds` callers) share
/// one preprocessing pass.
pub fn try_run_stream(
    dataset: &StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
) -> Result<RunResult, HarnessError> {
    try_run_stream_supervised(dataset, algorithm, config, &CellBudget::unlimited())
}

/// [`try_run_stream`] under a supervision budget: the evaluate stage
/// checks the logical deadlines and the wall-clock cancel flag
/// cooperatively at every window boundary. The (cached, shared) prepare
/// stage runs unbudgeted — its cost belongs to the whole sweep, not to
/// the one cell whose attempt happened to populate the cache.
pub fn try_run_stream_supervised(
    dataset: &StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
    budget: &CellBudget,
) -> Result<RunResult, HarnessError> {
    config.validate()?;
    // Ambient attribution for every span this cell records (the sweep
    // installs the same context around retries; installs nest, so the
    // innermost — this one — wins for the execution itself).
    let _ctx = CellCtx {
        dataset: dataset.name.clone(),
        learner: algorithm.name().to_string(),
        seed: config.seed,
        rows: dataset.n_rows() as u64,
    }
    .install();
    CELLS_ATTRIBUTED.incr();
    let cell_span = CELL_RUN_SPAN.start();
    let prepared = prepare_cached(dataset, config)?;
    let result = evaluate_supervised(&prepared, algorithm, config, budget);
    drop(cell_span);
    if result.is_ok() {
        HARNESS_RUNS.incr();
    }
    result
}

/// Runs the prequential protocol over an arbitrary frame source
/// (uncached — the source is consumed).
///
/// `expected_dim` fixes the feature width the learner is built for; when
/// `None` the first frame defines it. Frames with a different width are
/// skipped or rejected per `config.degrade`.
pub fn try_run_frames<S: FrameSource>(
    source: &mut S,
    task: Task,
    dataset_name: &str,
    algorithm: Algorithm,
    config: &HarnessConfig,
    oracle_reference: Option<&Matrix>,
    expected_dim: Option<usize>,
) -> Result<RunResult, HarnessError> {
    config.validate()?;
    let prepared = prepare_from_source(
        source,
        task,
        dataset_name,
        config,
        oracle_reference,
        expected_dim,
    )?;
    evaluate_prepared(&prepared, algorithm, config)
}

/// Runs the same pair for several seeds; returns (mean, std) of the valid
/// mean losses and the individual results. The paper repeats every
/// experiment three times.
///
/// The closure returns an [`Arc`] so per-seed datasets can come straight
/// from [`oeb_synth::generate_cached`] without cloning the table.
pub fn run_seeds(
    dataset_for_seed: impl Fn(u64) -> Arc<StreamDataset>,
    algorithm: Algorithm,
    config: &HarnessConfig,
    seeds: &[u64],
) -> (Option<(f64, f64)>, Vec<RunResult>) {
    let mut results = Vec::new();
    for &seed in seeds {
        let mut cfg = config.clone();
        cfg.seed = seed;
        let dataset = dataset_for_seed(seed);
        if let Some(r) = run_stream(&dataset, algorithm, &cfg) {
            results.push(r);
        }
    }
    let losses: Vec<f64> = results
        .iter()
        .filter(|r| r.is_valid())
        .map(|r| r.mean_loss)
        .collect();
    let summary = if losses.is_empty() {
        None
    } else {
        Some((oeb_linalg::mean(&losses), oeb_linalg::std_dev(&losses)))
    };
    (summary, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_faults::{FrameVec, WindowFrame};
    use oeb_synth::{generate, registry_scaled};

    fn small_dataset(kind: &str) -> StreamDataset {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| match kind {
                "clf" => e.spec.name == "Electricity Prices",
                _ => e.spec.name == "Power Consumption of Tetouan City",
            })
            .unwrap();
        generate(&entry.spec, 0)
    }

    #[test]
    fn naive_dt_runs_prequentially_on_classification() {
        let d = small_dataset("clf");
        let r = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        assert!(r.is_valid());
        assert!(!r.per_window_loss.is_empty());
        // Error rate bounded in [0, 1].
        assert!(r.per_window_loss.iter().all(|&l| (0.0..=1.0).contains(&l)));
        assert!(r.throughput > 0.0);
        assert!(r.memory_bytes > 0);
        // Clean stream: no degradation policy engaged.
        assert!(r.degradations.is_empty());
    }

    #[test]
    fn naive_dt_beats_chance_on_classification() {
        let d = small_dataset("clf");
        let r = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        assert!(r.mean_loss < 0.5, "error rate {}", r.mean_loss);
    }

    #[test]
    fn regression_run_produces_finite_mse() {
        let d = small_dataset("reg");
        let mut cfg = HarnessConfig::default();
        cfg.learner.epochs = 3;
        let r = run_stream(&d, Algorithm::NaiveNn, &cfg).unwrap();
        assert!(r.is_valid(), "loss {}", r.mean_loss);
    }

    #[test]
    fn arf_returns_none_on_regression() {
        let d = small_dataset("reg");
        assert!(run_stream(&d, Algorithm::Arf, &HarnessConfig::default()).is_none());
        let err = try_run_stream(&d, Algorithm::Arf, &HarnessConfig::default()).unwrap_err();
        assert!(matches!(err, HarnessError::NotApplicable { .. }));
    }

    #[test]
    fn shuffle_changes_the_window_losses() {
        let d = small_dataset("clf");
        let plain = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        let shuffled = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                shuffle: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(plain.per_window_loss, shuffled.per_window_loss);
    }

    #[test]
    fn outlier_removal_modes_run() {
        let d = small_dataset("reg");
        for mode in [OutlierRemoval::Ecod, OutlierRemoval::IForest] {
            let mut cfg = HarnessConfig {
                outlier_removal: mode,
                ..Default::default()
            };
            cfg.learner.epochs = 2;
            let r = run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
            assert!(r.is_valid());
        }
    }

    #[test]
    fn window_factor_changes_window_count() {
        let d = small_dataset("clf");
        let base = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        let halved = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                window_factor: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(halved.per_window_loss.len() > base.per_window_loss.len());
    }

    #[test]
    fn single_window_stream_returns_none() {
        // Fewer than two windows means there is nothing to test on.
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Electricity Prices")
            .unwrap();
        let mut spec = entry.spec.clone();
        spec.default_window = spec.n_rows; // one giant window
        let d = generate(&spec, 0);
        assert!(run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).is_none());
        let err = try_run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            HarnessError::InsufficientWindows { found: 1 }
        ));
    }

    #[test]
    fn oracle_imputation_runs_and_differs_from_normal() {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Indian Cities Weather Delhi")
            .unwrap();
        let d = generate(&entry.spec, 0);
        let mut cfg = HarnessConfig::default();
        cfg.learner.epochs = 1;
        let normal = run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
        let oracle = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                oracle_imputation: true,
                ..cfg
            },
        )
        .unwrap();
        // High-missing stream: the fill values differ, so the losses do.
        assert_ne!(normal.per_window_loss, oracle.per_window_loss);
    }

    #[test]
    fn discarding_features_shrinks_the_input() {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Beijing Multi-Site Air-Quality Shunyi")
            .unwrap();
        let d = generate(&entry.spec, 0);
        let mut cfg = HarnessConfig {
            discard_most_missing: 3,
            ..Default::default()
        };
        cfg.learner.epochs = 1;
        let r = run_stream(&d, Algorithm::NaiveNn, &cfg).unwrap();
        assert!(!r.per_window_loss.is_empty());
    }

    #[test]
    fn imputer_names_match_configs() {
        assert_eq!(ImputerChoice::Knn(2).name(), "knn(k=2)");
        assert_eq!(ImputerChoice::Mean.name(), "mean");
        assert_eq!(ImputerChoice::Zero.name(), "zero");
        assert_eq!(ImputerChoice::Regression.name(), "regression");
    }

    #[test]
    fn run_seeds_aggregates() {
        let (summary, results) = run_seeds(
            |seed| {
                let entries = registry_scaled(0.03);
                let entry = entries
                    .iter()
                    .find(|e| e.spec.name == "Electricity Prices")
                    .unwrap();
                oeb_synth::generate_cached(&entry.spec, seed)
            },
            Algorithm::NaiveDt,
            &HarnessConfig::default(),
            &[0, 1, 2],
        );
        assert_eq!(results.len(), 3);
        let (mean, std) = summary.unwrap();
        assert!(mean.is_finite() && std.is_finite());
    }

    #[test]
    fn invalid_configs_are_rejected_up_front() {
        let d = small_dataset("clf");
        for cfg in [
            HarnessConfig {
                window_factor: 0.0,
                ..Default::default()
            },
            HarnessConfig {
                window_factor: f64::NAN,
                ..Default::default()
            },
            HarnessConfig {
                imputer: ImputerChoice::Knn(0),
                ..Default::default()
            },
        ] {
            let err = try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap_err();
            assert!(matches!(err, HarnessError::InvalidConfig(_)), "{err}");
        }
        let mut bad_plan = FaultPlan::none(0);
        bad_plan.drop_window = 7.0;
        let cfg = HarnessConfig {
            fault_plan: Some(bad_plan),
            ..Default::default()
        };
        assert!(matches!(
            try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap_err(),
            HarnessError::InvalidConfig(_)
        ));
    }

    #[test]
    fn clean_fault_plan_reproduces_the_plain_run() {
        let d = small_dataset("clf");
        let plain = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        let wrapped = run_stream(
            &d,
            Algorithm::NaiveDt,
            &HarnessConfig {
                fault_plan: Some(FaultPlan::none(5)),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.per_window_loss, wrapped.per_window_loss);
        assert_eq!(plain.mean_loss, wrapped.mean_loss);
    }

    #[test]
    fn chaos_fault_plan_survives_and_logs_degradations() {
        let d = small_dataset("clf");
        let cfg = HarnessConfig {
            fault_plan: Some(FaultPlan::chaos(3)),
            degrade: DegradePolicy::resilient(),
            ..Default::default()
        };
        let r = try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
        assert!(!r.per_window_loss.is_empty());
        // Chaos injects schema violations at 8% per window; with dozens of
        // windows at least one lands and is absorbed as a degradation.
        assert!(
            !r.degradations.is_empty(),
            "chaos plan produced no degradations"
        );
    }

    #[test]
    fn strict_policy_fails_on_schema_violation() {
        let d = small_dataset("clf");
        let mut plan = FaultPlan::none(1);
        plan.schema_violation = 1.0;
        let cfg = HarnessConfig {
            fault_plan: Some(plan),
            degrade: DegradePolicy::strict(),
            ..Default::default()
        };
        let err = try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap_err();
        assert!(matches!(err, HarnessError::SchemaMismatch { .. }), "{err}");
    }

    #[test]
    fn all_windows_dropped_is_an_empty_stream() {
        let d = small_dataset("clf");
        let mut plan = FaultPlan::none(1);
        plan.drop_window = 1.0;
        let cfg = HarnessConfig {
            fault_plan: Some(plan),
            ..Default::default()
        };
        assert!(matches!(
            try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap_err(),
            HarnessError::EmptyStream
        ));
    }

    #[test]
    fn all_missing_column_is_absorbed_without_panic() {
        // Satellite regression test: a column that is entirely NaN in
        // every window (plus zero variance after the 0.0 fallback fill)
        // must not panic anywhere in the pipeline.
        let d = small_dataset("clf");
        let mut plan = FaultPlan::none(2);
        plan.all_missing_column = 1.0;
        let cfg = HarnessConfig {
            fault_plan: Some(plan),
            ..Default::default()
        };
        let r = try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
        assert!(!r.per_window_loss.is_empty());
    }

    #[test]
    fn frame_source_with_inconsistent_targets_is_skipped_or_rejected() {
        let frames = vec![
            WindowFrame {
                index: 0,
                features: Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
                targets: vec![0.0, 1.0],
            },
            WindowFrame {
                index: 1,
                features: Matrix::from_rows(&[vec![0.5, 0.5]]),
                targets: vec![0.0, 1.0, 1.0], // ragged
            },
            WindowFrame {
                index: 2,
                features: Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]),
                targets: vec![0.0, 1.0],
            },
        ];
        let task = Task::Classification { n_classes: 2 };
        let cfg = HarnessConfig::default();
        let mut src = FrameVec::new(frames.clone());
        let r =
            try_run_frames(&mut src, task, "toy", Algorithm::NaiveDt, &cfg, None, None).unwrap();
        assert_eq!(r.per_window_loss.len(), 1); // window 1 skipped
        assert_eq!(r.degradations.len(), 1);

        let strict = HarnessConfig {
            degrade: DegradePolicy::strict(),
            ..Default::default()
        };
        let mut src = FrameVec::new(frames);
        let err = try_run_frames(
            &mut src,
            task,
            "toy",
            Algorithm::NaiveDt,
            &strict,
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, HarnessError::InvalidConfig(_)));
    }
}
