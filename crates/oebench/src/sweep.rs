//! Resilient (dataset, learner) sweeps: panic isolation, typed failure
//! reporting, and JSON-lines checkpoint/resume.
//!
//! A benchmark sweep crosses every dataset with every learner; one
//! panicking run (a diverging network, a malformed window) must not take
//! the other hundreds of runs down with it. [`run_sweep`] wraps each run
//! in [`std::panic::catch_unwind`], records the outcome — completed,
//! inapplicable, or failed with a reason — and appends it to a
//! checkpoint file as one JSON object per line. Re-running the same
//! sweep against the same checkpoint skips every pair already recorded,
//! so an interrupted sweep resumes from the last completed pair and
//! produces the same final report as an uninterrupted one.

use crate::cost::CostModel;
use crate::error::HarnessError;
use crate::executor::{parallel_map_watchdog_ordered, WatchdogSlot};
use crate::harness::{try_run_stream_supervised, HarnessConfig, RunResult};
use crate::learners::Algorithm;
use crate::supervise::{cell_seed, supervise_cell, SupervisePolicy};
use oeb_tabular::StreamDataset;
use oeb_trace::{CellCtx, Counter, SpanDef};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

// Sweep cell accounting: grid size, cells resolved from a checkpoint
// (resume), cells actually executed this invocation, and failures. All
// schedule-invariant — they depend on the grid and the checkpoint, never
// on which worker ran what.
static CELLS_TOTAL: Counter = Counter::new("sweep.cells.total");
static CELLS_RESUMED: Counter = Counter::new("sweep.cells.resumed");
static CELLS_EXECUTED: Counter = Counter::new("sweep.cells.executed");
static CELLS_FAILED: Counter = Counter::new("sweep.cells.failed");
/// Cells whose claim order came from a fitted cost model rather than FIFO.
static COST_SCHEDULED: Counter = Counter::new("profile.cells.cost_scheduled");
static CELL_SPAN: SpanDef = SpanDef::new("sweep.cell");

/// Claim-order policy for the cells a sweep is about to execute.
///
/// The schedule only permutes the order in which workers *claim* cells;
/// results are deposited per cell index and the report is assembled in
/// grid order, so every schedule is bit-identical on outputs at any
/// thread count (proven by the `cost_schedule` proptest) and can only
/// move wall-clock utilization.
#[derive(Debug, Clone, Default)]
pub enum Schedule {
    /// Grid order (datasets outer, algorithms inner) — the historical
    /// behaviour.
    #[default]
    Fifo,
    /// Longest-expected-first by the fitted [`CostModel`], FIFO tiebreak
    /// on cell index. Scheduling the expensive tail first shrinks the
    /// end-of-sweep straggler window.
    Cost(CostModel),
}

/// Whether [`run_sweep`] emits a stderr progress line per finished cell.
/// Off by default so library callers and tests stay quiet; the CLI sweep
/// command turns it on.
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Enables/disables the per-cell stderr progress line.
pub fn set_sweep_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

/// Resume-aware progress accounting for one sweep invocation.
///
/// `done` starts at the number of cells resolved from the checkpoint, so
/// a killed-and-resumed sweep reports `done/total` over the *whole* grid
/// instead of recounting the new work from zero.
struct SweepProgress {
    total: usize,
    resumed: usize,
    done: AtomicUsize,
    emit: bool,
}

impl SweepProgress {
    fn new(total: usize, resumed: usize, emit: bool) -> Self {
        SweepProgress {
            total,
            resumed,
            done: AtomicUsize::new(resumed),
            emit,
        }
    }

    /// Records one finished cell; returns the cumulative (done, total).
    fn note_done(&self) -> (usize, usize) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.emit {
            eprintln!(
                "[sweep] {done}/{} cells done ({} resumed from checkpoint)",
                self.total, self.resumed
            );
        }
        (done, self.total)
    }
}

/// What happened to one (dataset, learner) run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run finished and produced a result.
    Completed(RunResult),
    /// The algorithm does not apply to the dataset's task.
    Inapplicable,
    /// The run failed; `reason` is the rendered [`HarnessError`] or
    /// panic message, `kind` the stable failure class.
    Failed {
        /// Stable kebab-case failure class ([`HarnessError::kind`] or
        /// `"panicked"`).
        kind: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The cell exceeded a supervision deadline and was cancelled
    /// cooperatively.
    TimedOut {
        /// Windows entered before the deadline fired.
        windows: usize,
        /// Items tested/trained before the deadline fired.
        items: usize,
        /// `true` for the wall-clock watchdog (machine-dependent),
        /// `false` for a logical budget (deterministic).
        wall: bool,
    },
    /// Every attempt the retry budget allowed failed; the cell is parked
    /// with its last failure instead of aborting the sweep.
    Quarantined {
        /// Attempts spent (first run plus retries).
        attempts: usize,
        /// Stable failure class of the final attempt.
        kind: String,
        /// Human-readable reason of the final attempt.
        reason: String,
    },
}

impl RunOutcome {
    /// True for [`RunOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    /// One-line human-readable summary (for sweep listings).
    pub fn describe(&self) -> String {
        match self {
            RunOutcome::Completed(r) => format!("completed (mean loss {:.4})", r.mean_loss),
            RunOutcome::Inapplicable => "inapplicable".into(),
            RunOutcome::Failed { kind, reason } => format!("failed [{kind}]: {reason}"),
            RunOutcome::TimedOut {
                windows,
                items,
                wall,
            } => format!(
                "timed out [{}] after {windows} windows / {items} items",
                if *wall { "wall-clock" } else { "logical" }
            ),
            RunOutcome::Quarantined {
                attempts,
                kind,
                reason,
            } => format!("quarantined after {attempts} attempts [{kind}]: {reason}"),
        }
    }
}

/// One sweep cell: the pair identity plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name (stable, from [`Algorithm::name`]).
    pub algorithm: String,
    /// What happened.
    pub outcome: RunOutcome,
}

/// Result of a sweep: one record per (dataset, algorithm) pair, in
/// iteration order (datasets outer, algorithms inner).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// All records.
    pub records: Vec<SweepRecord>,
}

impl SweepReport {
    /// Completed runs.
    pub fn completed(&self) -> impl Iterator<Item = (&SweepRecord, &RunResult)> {
        self.records.iter().filter_map(|r| match &r.outcome {
            RunOutcome::Completed(res) => Some((r, res)),
            _ => None,
        })
    }

    /// Failed runs.
    pub fn failed(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::Failed { .. }))
    }

    /// (completed, inapplicable, failed) counts. Timed-out and
    /// quarantined cells count as failed: they produced no result.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.records {
            match r.outcome {
                RunOutcome::Completed(_) => c.0 += 1,
                RunOutcome::Inapplicable => c.1 += 1,
                RunOutcome::Failed { .. }
                | RunOutcome::TimedOut { .. }
                | RunOutcome::Quarantined { .. } => c.2 += 1,
            }
        }
        c
    }

    /// Quarantined cells.
    pub fn quarantined(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::Quarantined { .. }))
    }

    /// Timed-out cells.
    pub fn timed_out(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::TimedOut { .. }))
    }

    /// Supervision accounting derived purely from the serialized records,
    /// so the summary survives checkpoint round-trips and resumes: a
    /// recovered cell carries its `supervision:` degradation line, a
    /// quarantined cell its attempt count.
    pub fn supervision(&self) -> SupervisionSummary {
        let mut s = SupervisionSummary::default();
        for r in &self.records {
            match &r.outcome {
                RunOutcome::Completed(res) => {
                    for d in &res.degradations {
                        if let Some(rest) = d.strip_prefix(RECOVERY_PREFIX) {
                            s.recovered += 1;
                            let attempts: usize = rest
                                .split_whitespace()
                                .next()
                                .and_then(|t| t.parse().ok())
                                .unwrap_or(1);
                            s.retries += attempts.saturating_sub(1);
                        }
                    }
                }
                RunOutcome::TimedOut { wall, .. } => {
                    if *wall {
                        s.wall_timeouts += 1;
                    } else {
                        s.timeouts += 1;
                    }
                }
                RunOutcome::Quarantined { attempts, .. } => {
                    s.quarantined += 1;
                    s.retries += attempts.saturating_sub(1);
                }
                RunOutcome::Inapplicable | RunOutcome::Failed { .. } => {}
            }
        }
        s
    }
}

/// The prefix [`crate::supervise::Supervised::recovery_note`] uses; the
/// attempt count follows it.
const RECOVERY_PREFIX: &str = "supervision: recovered on attempt ";

/// What supervision did across a sweep, derived from its records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionSummary {
    /// Retries spent, across recovered and quarantined cells.
    pub retries: usize,
    /// Cells that failed at least once and then completed.
    pub recovered: usize,
    /// Cells stopped by a logical (deterministic) deadline.
    pub timeouts: usize,
    /// Cells stopped by the wall-clock watchdog (machine-dependent).
    pub wall_timeouts: usize,
    /// Cells parked after exhausting their retry budget.
    pub quarantined: usize,
}

/// Runs `datasets x algorithms` through the harness with panic isolation,
/// optional checkpointing, and up to `threads` parallel workers.
///
/// - `checkpoint`: when set, every finished pair is appended to this
///   JSON-lines file, and pairs already recorded there are *not* re-run —
///   their stored outcome enters the report instead (resume).
/// - `max_new_runs`: when set, stop after this many *new* runs (pairs
///   loaded from the checkpoint do not count). The report then contains
///   only the records finished so far; invoke again with the same
///   checkpoint to continue. This is how an interruption mid-sweep looks
///   to the caller.
/// - `threads`: worker count (resolve with
///   [`crate::executor::resolve_threads`]; 1 = sequential). The report is
///   identical for every thread count: cells are scheduled greedily but
///   collected in cell order, and each cell seeds its RNGs from its own
///   coordinates. Only the *line order* inside the checkpoint file varies
///   with scheduling, and resume never depends on it.
pub fn run_sweep(
    datasets: &[StreamDataset],
    algorithms: &[Algorithm],
    config: &HarnessConfig,
    checkpoint: Option<&Path>,
    max_new_runs: Option<usize>,
    threads: usize,
) -> Result<SweepReport, HarnessError> {
    run_sweep_supervised(
        datasets,
        algorithms,
        config,
        checkpoint,
        max_new_runs,
        threads,
        &SupervisePolicy::unsupervised(),
    )
}

/// [`run_sweep`] under a [`SupervisePolicy`]: per-cell logical deadlines
/// and a wall-clock watchdog produce typed [`RunOutcome::TimedOut`]
/// records, retryable failures are retried with seeded backoff, and
/// cells that exhaust the budget land in [`RunOutcome::Quarantined`].
///
/// Determinism: with no deadline hits and no retries spent, the report
/// and checkpoint are bit-identical to [`run_sweep`]'s at any thread
/// count. All retry decisions derive from [`cell_seed`], so replaying a
/// sweep replays every retry sequence bit-for-bit; only wall-clock
/// timeouts (marked `wall: true`) are machine-dependent.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_supervised(
    datasets: &[StreamDataset],
    algorithms: &[Algorithm],
    config: &HarnessConfig,
    checkpoint: Option<&Path>,
    max_new_runs: Option<usize>,
    threads: usize,
    policy: &SupervisePolicy,
) -> Result<SweepReport, HarnessError> {
    run_sweep_scheduled(
        datasets,
        algorithms,
        config,
        checkpoint,
        max_new_runs,
        threads,
        policy,
        &Schedule::Fifo,
    )
}

/// [`run_sweep_supervised`] with an explicit claim-order [`Schedule`].
///
/// Under [`Schedule::Cost`] the unresolved cells are claimed
/// longest-expected-first (`cost ≈ a + b·rows` per learner class, FIFO
/// tiebreak on cell index). Only the claim order — and therefore the
/// checkpoint line order, which resume never depends on — changes; the
/// returned report is bit-identical to FIFO's.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep_scheduled(
    datasets: &[StreamDataset],
    algorithms: &[Algorithm],
    config: &HarnessConfig,
    checkpoint: Option<&Path>,
    max_new_runs: Option<usize>,
    threads: usize,
    policy: &SupervisePolicy,
    schedule: &Schedule,
) -> Result<SweepReport, HarnessError> {
    config.validate()?;
    let mut done: HashMap<(String, String), RunOutcome> = HashMap::new();
    if let Some(path) = checkpoint {
        for record in load_checkpoint(path)? {
            done.insert(
                (record.dataset.clone(), record.algorithm.clone()),
                record.outcome,
            );
        }
    }

    // The full cell grid in report order (datasets outer, algorithms
    // inner), each cell resolved from the checkpoint where possible.
    let cells: Vec<(usize, usize)> = (0..datasets.len())
        .flat_map(|d| (0..algorithms.len()).map(move |a| (d, a)))
        .collect();
    let mut outcomes: Vec<Option<RunOutcome>> = cells
        .iter()
        .map(|&(d, a)| {
            done.get(&(datasets[d].name.clone(), algorithms[a].name().to_string()))
                .cloned()
        })
        .collect();

    // New work = unresolved cells in order, truncated to the run budget.
    let mut to_run: Vec<usize> = (0..cells.len())
        .filter(|&i| outcomes[i].is_none())
        .collect();
    if let Some(limit) = max_new_runs {
        to_run.truncate(limit);
    }

    let resumed = cells.len() - (outcomes.iter().filter(|o| o.is_none()).count());
    CELLS_TOTAL.add(cells.len() as u64);
    CELLS_RESUMED.add(resumed as u64);
    CELLS_EXECUTED.add(to_run.len() as u64);
    let progress = SweepProgress::new(cells.len(), resumed, PROGRESS.load(Ordering::Relaxed));

    if !to_run.is_empty() {
        // One writer, shared by all workers; appends happen as cells
        // finish, so an interrupt loses at most the in-flight cells.
        let writer: Option<Mutex<std::fs::File>> = match checkpoint {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| HarnessError::Io(format!("open {}: {e}", path.display())))?,
            )),
            None => None,
        };
        let append_error: Mutex<Option<HarnessError>> = Mutex::new(None);

        // Claim order: FIFO, or longest-expected-first under a cost model
        // (stable tiebreak on cell index). Claim positions map to cell
        // indices; results stay slot-addressed, so the order cannot leak
        // into outputs.
        let claim_order: Option<Vec<usize>> = match schedule {
            Schedule::Fifo => None,
            Schedule::Cost(model) => {
                COST_SCHEDULED.add(to_run.len() as u64);
                let mut order: Vec<usize> = (0..to_run.len()).collect();
                let expected: Vec<f64> = to_run
                    .iter()
                    .map(|&cell| {
                        let (d, a) = cells[cell];
                        model.expected_ns(algorithms[a].name(), datasets[d].n_rows() as u64)
                    })
                    .collect();
                order.sort_by(|&x, &y| {
                    expected[y]
                        .total_cmp(&expected[x])
                        .then(to_run[x].cmp(&to_run[y]))
                });
                Some(order)
            }
        };

        let ran: Vec<RunOutcome> = parallel_map_watchdog_ordered(
            to_run.len(),
            threads,
            policy.wall_deadline,
            claim_order.as_deref(),
            |slot, dog| {
                let (d, a) = cells[to_run[slot]];
                // Ambient attribution: every span recorded while this cell
                // runs (prepare stages, evaluate stages, the cell span
                // itself) carries its (dataset, learner, seed, rows).
                let _ctx = CellCtx {
                    dataset: datasets[d].name.clone(),
                    learner: algorithms[a].name().to_string(),
                    seed: cell_seed(config.seed, &datasets[d].name, algorithms[a].name()),
                    rows: datasets[d].n_rows() as u64,
                }
                .install();
                let cell_span = CELL_SPAN.start();
                let outcome = run_supervised(&datasets[d], algorithms[a], config, policy, dog);
                drop(cell_span);
                if matches!(
                    outcome,
                    RunOutcome::Failed { .. }
                        | RunOutcome::TimedOut { .. }
                        | RunOutcome::Quarantined { .. }
                ) {
                    CELLS_FAILED.incr();
                }
                progress.note_done();
                if let Some(writer) = &writer {
                    let record = SweepRecord {
                        dataset: datasets[d].name.clone(),
                        algorithm: algorithms[a].name().to_string(),
                        outcome: outcome.clone(),
                    };
                    if let Err(e) = write_checkpoint_line(writer, &record) {
                        lock_recover(&append_error).get_or_insert(e);
                    }
                }
                outcome
            },
        );
        if let Some(e) = append_error
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
        {
            return Err(e);
        }
        for (slot, outcome) in to_run.iter().zip(ran) {
            outcomes[*slot] = Some(outcome);
        }
    }

    // The report is the prefix of the grid up to the first cell the run
    // budget excluded — exactly where the sequential loop stopped.
    let mut report = SweepReport::default();
    for (&(d, a), outcome) in cells.iter().zip(outcomes) {
        let Some(outcome) = outcome else { break };
        report.records.push(SweepRecord {
            dataset: datasets[d].name.clone(),
            algorithm: algorithms[a].name().to_string(),
            outcome,
        });
    }
    Ok(report)
}

/// One cell under full supervision: each attempt runs with panic
/// isolation and a freshly armed wall-clock deadline; the retry state
/// machine ([`supervise_cell`]) turns the attempt sequence into a single
/// outcome. With the unsupervised policy this reduces exactly to the
/// historical `run_isolated`.
fn run_supervised(
    dataset: &StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
    policy: &SupervisePolicy,
    dog: &WatchdogSlot,
) -> RunOutcome {
    let seed = cell_seed(config.seed, &dataset.name, algorithm.name());
    let supervised = supervise_cell(policy, seed, |_attempt| {
        // A fresh flag per attempt: a retried cell gets its full wall
        // budget back, and a late watchdog firing cannot leak into the
        // next attempt or the worker's next cell.
        let budget = policy.budget(dog.arm());
        let result = catch_unwind(AssertUnwindSafe(|| {
            try_run_stream_supervised(dataset, algorithm, config, &budget)
        }));
        dog.disarm();
        match result {
            Ok(inner) => inner,
            Err(payload) => Err(HarnessError::Panicked(panic_message(payload.as_ref()))),
        }
    });
    let note = supervised.recovery_note();
    match supervised.result {
        Ok(mut run) => {
            if let Some(note) = note {
                run.degradations.push(note);
            }
            RunOutcome::Completed(run)
        }
        Err(HarnessError::NotApplicable { .. }) => RunOutcome::Inapplicable,
        Err(HarnessError::CellTimedOut {
            windows,
            items,
            wall,
        }) => RunOutcome::TimedOut {
            windows,
            items,
            wall,
        },
        Err(HarnessError::Quarantined {
            attempts,
            last_kind,
            reason,
        }) => RunOutcome::Quarantined {
            attempts,
            kind: last_kind,
            reason,
        },
        Err(e) => RunOutcome::Failed {
            kind: e.kind().to_string(),
            reason: e.to_string(),
        },
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked
/// while holding one of these locks either wrote its value completely or
/// not at all, so later cells must keep checkpointing instead of turning
/// every subsequent append into a second panic.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// ---------------------------------------------------------------------
// Checkpoint serialisation (one JSON object per line).

fn outcome_to_json(outcome: &RunOutcome) -> Value {
    match outcome {
        RunOutcome::Completed(r) => json!({
            "status": "completed",
            "per_window_loss": r.per_window_loss,
            "mean_loss": r.mean_loss,
            "train_seconds": r.train_seconds,
            "test_seconds": r.test_seconds,
            "items": r.items as u64,
            "throughput": r.throughput,
            "memory_bytes": r.memory_bytes as u64,
            "degradations": r.degradations,
        }),
        RunOutcome::Inapplicable => json!({ "status": "inapplicable" }),
        RunOutcome::Failed { kind, reason } => json!({
            "status": "failed",
            "kind": kind,
            "reason": reason,
        }),
        RunOutcome::TimedOut {
            windows,
            items,
            wall,
        } => json!({
            "status": "timed-out",
            "windows": *windows as u64,
            "items": *items as u64,
            "wall": wall,
        }),
        RunOutcome::Quarantined {
            attempts,
            kind,
            reason,
        } => json!({
            "status": "quarantined",
            "attempts": *attempts as u64,
            "kind": kind,
            "reason": reason,
        }),
    }
}

fn record_to_json(record: &SweepRecord) -> Value {
    let mut v = outcome_to_json(&record.outcome);
    if let Some(obj) = v.as_object_mut() {
        obj.insert("dataset", Value::from(record.dataset.as_str()));
        obj.insert("algorithm", Value::from(record.algorithm.as_str()));
    }
    v
}

fn field<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a Value, HarnessError> {
    v.get(key)
        .ok_or_else(|| HarnessError::Checkpoint(format!("line {line}: missing field {key:?}")))
}

fn str_field(v: &Value, key: &str, line: usize) -> Result<String, HarnessError> {
    Ok(field(v, key, line)?
        .as_str()
        .ok_or_else(|| HarnessError::Checkpoint(format!("line {line}: {key:?} not a string")))?
        .to_string())
}

fn f64_field(v: &Value, key: &str, line: usize) -> Result<f64, HarnessError> {
    // Non-finite floats serialise as null (JSON has no NaN literal).
    let value = field(v, key, line)?;
    if value.is_null() {
        return Ok(f64::NAN);
    }
    value
        .as_f64()
        .ok_or_else(|| HarnessError::Checkpoint(format!("line {line}: {key:?} not a number")))
}

fn record_from_json(v: &Value, line: usize) -> Result<SweepRecord, HarnessError> {
    let dataset = str_field(v, "dataset", line)?;
    let algorithm = str_field(v, "algorithm", line)?;
    let status = str_field(v, "status", line)?;
    let outcome = match status.as_str() {
        "inapplicable" => RunOutcome::Inapplicable,
        "failed" => RunOutcome::Failed {
            kind: str_field(v, "kind", line)?,
            reason: str_field(v, "reason", line)?,
        },
        "timed-out" => RunOutcome::TimedOut {
            windows: field(v, "windows", line)?.as_u64().unwrap_or(0) as usize,
            items: field(v, "items", line)?.as_u64().unwrap_or(0) as usize,
            wall: field(v, "wall", line)?.as_bool().unwrap_or(false),
        },
        "quarantined" => RunOutcome::Quarantined {
            attempts: field(v, "attempts", line)?.as_u64().unwrap_or(1) as usize,
            kind: str_field(v, "kind", line)?,
            reason: str_field(v, "reason", line)?,
        },
        "completed" => {
            let losses = field(v, "per_window_loss", line)?
                .as_array()
                .ok_or_else(|| {
                    HarnessError::Checkpoint(format!("line {line}: per_window_loss not an array"))
                })?
                .iter()
                .map(|x| {
                    if x.is_null() {
                        f64::NAN
                    } else {
                        x.as_f64().unwrap_or(f64::NAN)
                    }
                })
                .collect();
            let degradations = field(v, "degradations", line)?
                .as_array()
                .map(|xs| {
                    xs.iter()
                        .filter_map(|x| x.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            RunOutcome::Completed(RunResult {
                dataset: dataset.clone(),
                algorithm: algorithm.clone(),
                per_window_loss: losses,
                mean_loss: f64_field(v, "mean_loss", line)?,
                train_seconds: f64_field(v, "train_seconds", line)?,
                test_seconds: f64_field(v, "test_seconds", line)?,
                items: field(v, "items", line)?.as_u64().unwrap_or(0) as usize,
                throughput: f64_field(v, "throughput", line)?,
                memory_bytes: field(v, "memory_bytes", line)?.as_u64().unwrap_or(0) as usize,
                degradations,
            })
        }
        other => {
            return Err(HarnessError::Checkpoint(format!(
                "line {line}: unknown status {other:?}"
            )))
        }
    };
    Ok(SweepRecord {
        dataset,
        algorithm,
        outcome,
    })
}

/// Reads every record of a JSON-lines checkpoint file. A missing file is
/// an empty checkpoint (fresh sweep), a malformed one a typed error —
/// with one exception: exactly one malformed *trailing* line is treated
/// as a torn write (the process died mid-`write_checkpoint_line`). The
/// torn line is physically truncated from the file — so later appends
/// cannot merge with the fragment into a corrupt mid-file line — a
/// warning goes to stderr, and that cell simply re-runs.
pub fn load_checkpoint(path: &Path) -> Result<Vec<SweepRecord>, HarnessError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(HarnessError::Io(format!("read {}: {e}", path.display()))),
    };
    let mut records = Vec::new();
    // Candidate torn line: (line number, byte offset of its start, error).
    let mut torn: Option<(usize, usize, HarnessError)> = None;
    let mut offset = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line_start = offset;
        offset += line.len() + 1;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str(line)
            .map_err(|e| HarnessError::Checkpoint(format!("line {}: {e}", i + 1)))
            .and_then(|value| record_from_json(&value, i + 1));
        match parsed {
            Ok(record) => {
                if let Some((_, _, e)) = torn {
                    // A malformed line *followed by* a valid record is
                    // mid-file corruption, not a torn tail.
                    return Err(e);
                }
                records.push(record);
            }
            Err(e) => {
                if let Some((_, _, first)) = torn {
                    // Two malformed lines cannot both be the torn tail.
                    return Err(first);
                }
                torn = Some((i + 1, line_start, e));
            }
        }
    }
    if let Some((line_no, line_start, e)) = torn {
        eprintln!(
            "[sweep] checkpoint {}: dropping torn trailing line {line_no} ({e}); its cell will re-run",
            path.display()
        );
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| HarnessError::Io(format!("open {}: {e}", path.display())))?;
        file.set_len(line_start as u64)
            .map_err(|e| HarnessError::Io(format!("truncate {}: {e}", path.display())))?;
    }
    Ok(records)
}

/// Serialises one record through the shared sweep writer (one line per
/// record; the mutex keeps concurrent workers' lines from interleaving).
fn write_checkpoint_line(
    writer: &Mutex<std::fs::File>,
    record: &SweepRecord,
) -> Result<(), HarnessError> {
    let line = serde_json::to_string(&record_to_json(record))
        .map_err(|e| HarnessError::Checkpoint(e.to_string()))?;
    // Recover a poisoned writer: `writeln!` appends the whole line in one
    // call, so a panicking holder left the file either untouched or with
    // a complete line — at worst a torn trailing line, which
    // `load_checkpoint` drops on resume.
    let mut file = lock_recover(writer);
    writeln!(file, "{line}").map_err(|e| HarnessError::Io(format!("write checkpoint: {e}")))
}

#[cfg(test)]
fn append_checkpoint(path: &Path, record: &SweepRecord) -> Result<(), HarnessError> {
    let line = serde_json::to_string(&record_to_json(record))
        .map_err(|e| HarnessError::Checkpoint(e.to_string()))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| HarnessError::Io(format!("open {}: {e}", path.display())))?;
    writeln!(file, "{line}").map_err(|e| HarnessError::Io(format!("write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_synth::{generate, registry_scaled};

    fn tiny_datasets() -> Vec<StreamDataset> {
        let entries = registry_scaled(0.03);
        ["Electricity Prices", "Power Consumption of Tetouan City"]
            .iter()
            .map(|name| {
                let entry = entries.iter().find(|e| e.spec.name == *name).unwrap();
                generate(&entry.spec, 0)
            })
            .collect()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("oeb_sweep_{tag}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Outcome equality that ignores wall-clock fields.
    fn same_modulo_timing(a: &SweepReport, b: &SweepReport) -> bool {
        a.records.len() == b.records.len()
            && a.records.iter().zip(&b.records).all(|(x, y)| {
                x.dataset == y.dataset
                    && x.algorithm == y.algorithm
                    && match (&x.outcome, &y.outcome) {
                        (RunOutcome::Completed(p), RunOutcome::Completed(q)) => {
                            let bits =
                                |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                            bits(&p.per_window_loss) == bits(&q.per_window_loss)
                                && p.mean_loss.to_bits() == q.mean_loss.to_bits()
                                && p.items == q.items
                                && p.degradations == q.degradations
                        }
                        (o1, o2) => o1 == o2,
                    }
            })
    }

    #[test]
    fn progress_starts_at_the_resumed_count_not_zero() {
        // The regression this guards: a killed-and-resumed sweep used to
        // recount completed cells from zero. done/total must cover the
        // whole grid, seeded by the checkpoint.
        let p = SweepProgress::new(10, 4, false);
        assert_eq!(p.note_done(), (5, 10));
        assert_eq!(p.note_done(), (6, 10));
    }

    #[test]
    fn sweep_records_every_pair() {
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::Arf];
        let report = run_sweep(
            &datasets,
            &algorithms,
            &HarnessConfig::default(),
            None,
            None,
            1,
        )
        .unwrap();
        assert_eq!(report.records.len(), 4);
        let (completed, inapplicable, failed) = report.counts();
        // ARF does not apply to the regression dataset.
        assert_eq!(completed, 3);
        assert_eq!(inapplicable, 1);
        assert_eq!(failed, 0);
    }

    #[test]
    fn checkpoint_roundtrips_all_outcome_kinds() {
        let path = temp_path("roundtrip");
        let records = vec![
            SweepRecord {
                dataset: "A".into(),
                algorithm: "Naive(DT)".into(),
                outcome: RunOutcome::Completed(RunResult {
                    dataset: "A".into(),
                    algorithm: "Naive(DT)".into(),
                    per_window_loss: vec![0.25, f64::NAN, 0.5],
                    mean_loss: f64::NAN,
                    train_seconds: 1.5,
                    test_seconds: 0.5,
                    items: 100,
                    throughput: 50.0,
                    memory_bytes: 4096,
                    degradations: vec!["window 3: skipped".into()],
                }),
            },
            SweepRecord {
                dataset: "B".into(),
                algorithm: "ARF".into(),
                outcome: RunOutcome::Inapplicable,
            },
            SweepRecord {
                dataset: "C \"quoted\"".into(),
                algorithm: "EWC".into(),
                outcome: RunOutcome::Failed {
                    kind: "panicked".into(),
                    reason: "index out of bounds: len 3".into(),
                },
            },
        ];
        for r in &records {
            append_checkpoint(&path, r).unwrap();
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[1], records[1]);
        assert_eq!(loaded[2], records[2]);
        match (&loaded[0].outcome, &records[0].outcome) {
            (RunOutcome::Completed(a), RunOutcome::Completed(b)) => {
                assert_eq!(a.per_window_loss[0], b.per_window_loss[0]);
                assert!(a.per_window_loss[1].is_nan());
                assert!(a.mean_loss.is_nan());
                assert_eq!(a.items, b.items);
                assert_eq!(a.degradations, b.degradations);
            }
            _ => panic!("outcome kind changed in roundtrip"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_checkpoint_is_a_fresh_sweep() {
        let path = temp_path("missing");
        assert!(load_checkpoint(&path).unwrap().is_empty());
    }

    #[test]
    fn midfile_corruption_is_still_a_typed_error() {
        // Torn-write tolerance must not mask real corruption: a
        // malformed line *followed by* a valid record fails the resume.
        let path = temp_path("corrupt");
        std::fs::write(
            &path,
            "{ not json\n{\"dataset\":\"A\",\"algorithm\":\"ARF\",\"status\":\"inapplicable\"}\n",
        )
        .unwrap();
        assert!(matches!(
            load_checkpoint(&path).unwrap_err(),
            HarnessError::Checkpoint(_)
        ));
        // Two malformed lines cannot both be the torn tail either.
        std::fs::write(&path, "{ not json\n{ also not json").unwrap();
        assert!(matches!(
            load_checkpoint(&path).unwrap_err(),
            HarnessError::Checkpoint(_)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_truncated() {
        use std::io::Write as _;
        let path = temp_path("torn");
        let valid = SweepRecord {
            dataset: "A".into(),
            algorithm: "ARF".into(),
            outcome: RunOutcome::Inapplicable,
        };
        append_checkpoint(&path, &valid).unwrap();
        // Simulate a crash mid-write: half a serialized record, no
        // trailing newline.
        let full = serde_json::to_string(&record_to_json(&valid)).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{}", &full[..full.len() / 2]).unwrap();
        drop(f);

        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded, vec![valid.clone()]);
        // The fragment is physically gone: a later append starts a clean
        // line instead of merging with it.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "fragment survived: {text:?}");
        let next = SweepRecord {
            dataset: "B".into(),
            algorithm: "EWC".into(),
            outcome: RunOutcome::Inapplicable,
        };
        append_checkpoint(&path, &next).unwrap();
        assert_eq!(load_checkpoint(&path).unwrap(), vec![valid, next]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_killed_mid_write_resumes_past_the_torn_line() {
        // End-to-end regression for the torn tail: run a checkpointed
        // sweep, tear its last line in half (the on-disk state a
        // mid-`write_checkpoint_line` kill leaves), and resume. The torn
        // cell re-runs and the merged report equals the uninterrupted one.
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::Arf];
        let cfg = HarnessConfig::default();
        let uninterrupted = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();

        let path = temp_path("killmid");
        run_sweep(&datasets, &algorithms, &cfg, Some(&path), None, 1).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.trim_end().len() - text.trim_end().len() / 4;
        std::fs::write(&path, &text[..keep]).unwrap();

        let resumed = run_sweep(&datasets, &algorithms, &cfg, Some(&path), None, 2).unwrap();
        assert!(
            same_modulo_timing(&resumed, &uninterrupted),
            "resume after a torn write diverged"
        );
        // Every line of the repaired checkpoint parses again.
        assert_eq!(load_checkpoint(&path).unwrap().len(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poisoned_checkpoint_writer_recovers() {
        let path = temp_path("poison");
        let writer = Mutex::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap(),
        );
        // Poison the mutex the way a panicking worker would: die while
        // holding the lock.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = writer.lock().unwrap();
            panic!("worker died mid-checkpoint");
        }));
        assert!(writer.lock().is_err(), "mutex should be poisoned");
        let record = SweepRecord {
            dataset: "A".into(),
            algorithm: "ARF".into(),
            outcome: RunOutcome::Inapplicable,
        };
        write_checkpoint_line(&writer, &record).expect("poisoned writer must recover");
        drop(writer);
        assert_eq!(load_checkpoint(&path).unwrap(), vec![record]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_roundtrips_supervision_outcomes() {
        let path = temp_path("supervision_roundtrip");
        let records = vec![
            SweepRecord {
                dataset: "A".into(),
                algorithm: "ARF".into(),
                outcome: RunOutcome::TimedOut {
                    windows: 7,
                    items: 280,
                    wall: false,
                },
            },
            SweepRecord {
                dataset: "B".into(),
                algorithm: "EWC".into(),
                outcome: RunOutcome::Quarantined {
                    attempts: 3,
                    kind: "panicked".into(),
                    reason: "run panicked: boom".into(),
                },
            },
        ];
        for r in &records {
            append_checkpoint(&path, r).unwrap();
        }
        assert_eq!(load_checkpoint(&path).unwrap(), records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveGbdt, Algorithm::Arf];
        let cfg = HarnessConfig::default();
        let seq = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        let par = run_sweep(&datasets, &algorithms, &cfg, None, None, 4).unwrap();
        assert!(
            same_modulo_timing(&seq, &par),
            "4-worker sweep diverged from the sequential one"
        );
    }

    #[test]
    fn interrupted_sweep_resumes_to_the_same_report() {
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveGbdt];
        let cfg = HarnessConfig::default();

        let uninterrupted = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        assert_eq!(uninterrupted.records.len(), 4);

        // "Kill" the sweep after two runs, then resume from the
        // checkpoint — on two workers, to cross resume with parallelism.
        let path = temp_path("resume");
        let partial = run_sweep(&datasets, &algorithms, &cfg, Some(&path), Some(2), 2).unwrap();
        assert_eq!(partial.records.len(), 2);
        let resumed = run_sweep(&datasets, &algorithms, &cfg, Some(&path), None, 2).unwrap();
        assert!(
            same_modulo_timing(&resumed, &uninterrupted),
            "resumed report differs from uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }
}
