//! Resilient (dataset, learner) sweeps: panic isolation, typed failure
//! reporting, and JSON-lines checkpoint/resume.
//!
//! A benchmark sweep crosses every dataset with every learner; one
//! panicking run (a diverging network, a malformed window) must not take
//! the other hundreds of runs down with it. [`run_sweep`] wraps each run
//! in [`std::panic::catch_unwind`], records the outcome — completed,
//! inapplicable, or failed with a reason — and appends it to a
//! checkpoint file as one JSON object per line. Re-running the same
//! sweep against the same checkpoint skips every pair already recorded,
//! so an interrupted sweep resumes from the last completed pair and
//! produces the same final report as an uninterrupted one.

use crate::error::HarnessError;
use crate::executor::parallel_map;
use crate::harness::{try_run_stream, HarnessConfig, RunResult};
use crate::learners::Algorithm;
use oeb_tabular::StreamDataset;
use oeb_trace::{Counter, SpanDef};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

// Sweep cell accounting: grid size, cells resolved from a checkpoint
// (resume), cells actually executed this invocation, and failures. All
// schedule-invariant — they depend on the grid and the checkpoint, never
// on which worker ran what.
static CELLS_TOTAL: Counter = Counter::new("sweep.cells.total");
static CELLS_RESUMED: Counter = Counter::new("sweep.cells.resumed");
static CELLS_EXECUTED: Counter = Counter::new("sweep.cells.executed");
static CELLS_FAILED: Counter = Counter::new("sweep.cells.failed");
static CELL_SPAN: SpanDef = SpanDef::new("sweep.cell");

/// Whether [`run_sweep`] emits a stderr progress line per finished cell.
/// Off by default so library callers and tests stay quiet; the CLI sweep
/// command turns it on.
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Enables/disables the per-cell stderr progress line.
pub fn set_sweep_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

/// Resume-aware progress accounting for one sweep invocation.
///
/// `done` starts at the number of cells resolved from the checkpoint, so
/// a killed-and-resumed sweep reports `done/total` over the *whole* grid
/// instead of recounting the new work from zero.
struct SweepProgress {
    total: usize,
    resumed: usize,
    done: AtomicUsize,
    emit: bool,
}

impl SweepProgress {
    fn new(total: usize, resumed: usize, emit: bool) -> Self {
        SweepProgress {
            total,
            resumed,
            done: AtomicUsize::new(resumed),
            emit,
        }
    }

    /// Records one finished cell; returns the cumulative (done, total).
    fn note_done(&self) -> (usize, usize) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.emit {
            eprintln!(
                "[sweep] {done}/{} cells done ({} resumed from checkpoint)",
                self.total, self.resumed
            );
        }
        (done, self.total)
    }
}

/// What happened to one (dataset, learner) run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run finished and produced a result.
    Completed(RunResult),
    /// The algorithm does not apply to the dataset's task.
    Inapplicable,
    /// The run failed; `reason` is the rendered [`HarnessError`] or
    /// panic message, `kind` the stable failure class.
    Failed {
        /// Stable kebab-case failure class ([`HarnessError::kind`] or
        /// `"panicked"`).
        kind: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl RunOutcome {
    /// True for [`RunOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed(_))
    }

    /// One-line human-readable summary (for sweep listings).
    pub fn describe(&self) -> String {
        match self {
            RunOutcome::Completed(r) => format!("completed (mean loss {:.4})", r.mean_loss),
            RunOutcome::Inapplicable => "inapplicable".into(),
            RunOutcome::Failed { kind, reason } => format!("failed [{kind}]: {reason}"),
        }
    }
}

/// One sweep cell: the pair identity plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm name (stable, from [`Algorithm::name`]).
    pub algorithm: String,
    /// What happened.
    pub outcome: RunOutcome,
}

/// Result of a sweep: one record per (dataset, algorithm) pair, in
/// iteration order (datasets outer, algorithms inner).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// All records.
    pub records: Vec<SweepRecord>,
}

impl SweepReport {
    /// Completed runs.
    pub fn completed(&self) -> impl Iterator<Item = (&SweepRecord, &RunResult)> {
        self.records.iter().filter_map(|r| match &r.outcome {
            RunOutcome::Completed(res) => Some((r, res)),
            _ => None,
        })
    }

    /// Failed runs.
    pub fn failed(&self) -> impl Iterator<Item = &SweepRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, RunOutcome::Failed { .. }))
    }

    /// (completed, inapplicable, failed) counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.records {
            match r.outcome {
                RunOutcome::Completed(_) => c.0 += 1,
                RunOutcome::Inapplicable => c.1 += 1,
                RunOutcome::Failed { .. } => c.2 += 1,
            }
        }
        c
    }
}

/// Runs `datasets x algorithms` through the harness with panic isolation,
/// optional checkpointing, and up to `threads` parallel workers.
///
/// - `checkpoint`: when set, every finished pair is appended to this
///   JSON-lines file, and pairs already recorded there are *not* re-run —
///   their stored outcome enters the report instead (resume).
/// - `max_new_runs`: when set, stop after this many *new* runs (pairs
///   loaded from the checkpoint do not count). The report then contains
///   only the records finished so far; invoke again with the same
///   checkpoint to continue. This is how an interruption mid-sweep looks
///   to the caller.
/// - `threads`: worker count (resolve with
///   [`crate::executor::resolve_threads`]; 1 = sequential). The report is
///   identical for every thread count: cells are scheduled greedily but
///   collected in cell order, and each cell seeds its RNGs from its own
///   coordinates. Only the *line order* inside the checkpoint file varies
///   with scheduling, and resume never depends on it.
pub fn run_sweep(
    datasets: &[StreamDataset],
    algorithms: &[Algorithm],
    config: &HarnessConfig,
    checkpoint: Option<&Path>,
    max_new_runs: Option<usize>,
    threads: usize,
) -> Result<SweepReport, HarnessError> {
    config.validate()?;
    let mut done: HashMap<(String, String), RunOutcome> = HashMap::new();
    if let Some(path) = checkpoint {
        for record in load_checkpoint(path)? {
            done.insert(
                (record.dataset.clone(), record.algorithm.clone()),
                record.outcome,
            );
        }
    }

    // The full cell grid in report order (datasets outer, algorithms
    // inner), each cell resolved from the checkpoint where possible.
    let cells: Vec<(usize, usize)> = (0..datasets.len())
        .flat_map(|d| (0..algorithms.len()).map(move |a| (d, a)))
        .collect();
    let mut outcomes: Vec<Option<RunOutcome>> = cells
        .iter()
        .map(|&(d, a)| {
            done.get(&(datasets[d].name.clone(), algorithms[a].name().to_string()))
                .cloned()
        })
        .collect();

    // New work = unresolved cells in order, truncated to the run budget.
    let mut to_run: Vec<usize> = (0..cells.len())
        .filter(|&i| outcomes[i].is_none())
        .collect();
    if let Some(limit) = max_new_runs {
        to_run.truncate(limit);
    }

    let resumed = cells.len() - (outcomes.iter().filter(|o| o.is_none()).count());
    CELLS_TOTAL.add(cells.len() as u64);
    CELLS_RESUMED.add(resumed as u64);
    CELLS_EXECUTED.add(to_run.len() as u64);
    let progress = SweepProgress::new(cells.len(), resumed, PROGRESS.load(Ordering::Relaxed));

    if !to_run.is_empty() {
        // One writer, shared by all workers; appends happen as cells
        // finish, so an interrupt loses at most the in-flight cells.
        let writer: Option<Mutex<std::fs::File>> = match checkpoint {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| HarnessError::Io(format!("open {}: {e}", path.display())))?,
            )),
            None => None,
        };
        let append_error: Mutex<Option<HarnessError>> = Mutex::new(None);

        let ran: Vec<RunOutcome> = parallel_map(to_run.len(), threads, |slot| {
            let (d, a) = cells[to_run[slot]];
            let cell_span = CELL_SPAN.start();
            let outcome = run_isolated(&datasets[d], algorithms[a], config);
            drop(cell_span);
            if matches!(outcome, RunOutcome::Failed { .. }) {
                CELLS_FAILED.incr();
            }
            progress.note_done();
            if let Some(writer) = &writer {
                let record = SweepRecord {
                    dataset: datasets[d].name.clone(),
                    algorithm: algorithms[a].name().to_string(),
                    outcome: outcome.clone(),
                };
                if let Err(e) = write_checkpoint_line(writer, &record) {
                    append_error
                        .lock()
                        .expect("error slot poisoned")
                        .get_or_insert(e);
                }
            }
            outcome
        });
        if let Some(e) = append_error.into_inner().expect("error slot poisoned") {
            return Err(e);
        }
        for (slot, outcome) in to_run.iter().zip(ran) {
            outcomes[*slot] = Some(outcome);
        }
    }

    // The report is the prefix of the grid up to the first cell the run
    // budget excluded — exactly where the sequential loop stopped.
    let mut report = SweepReport::default();
    for (&(d, a), outcome) in cells.iter().zip(outcomes) {
        let Some(outcome) = outcome else { break };
        report.records.push(SweepRecord {
            dataset: datasets[d].name.clone(),
            algorithm: algorithms[a].name().to_string(),
            outcome,
        });
    }
    Ok(report)
}

/// One run, with panics converted into a failed outcome.
fn run_isolated(
    dataset: &StreamDataset,
    algorithm: Algorithm,
    config: &HarnessConfig,
) -> RunOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| {
        try_run_stream(dataset, algorithm, config)
    }));
    match result {
        Ok(Ok(run)) => RunOutcome::Completed(run),
        Ok(Err(HarnessError::NotApplicable { .. })) => RunOutcome::Inapplicable,
        Ok(Err(e)) => RunOutcome::Failed {
            kind: e.kind().to_string(),
            reason: e.to_string(),
        },
        Err(payload) => RunOutcome::Failed {
            kind: "panicked".into(),
            reason: panic_message(payload.as_ref()),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

// ---------------------------------------------------------------------
// Checkpoint serialisation (one JSON object per line).

fn outcome_to_json(outcome: &RunOutcome) -> Value {
    match outcome {
        RunOutcome::Completed(r) => json!({
            "status": "completed",
            "per_window_loss": r.per_window_loss,
            "mean_loss": r.mean_loss,
            "train_seconds": r.train_seconds,
            "test_seconds": r.test_seconds,
            "items": r.items as u64,
            "throughput": r.throughput,
            "memory_bytes": r.memory_bytes as u64,
            "degradations": r.degradations,
        }),
        RunOutcome::Inapplicable => json!({ "status": "inapplicable" }),
        RunOutcome::Failed { kind, reason } => json!({
            "status": "failed",
            "kind": kind,
            "reason": reason,
        }),
    }
}

fn record_to_json(record: &SweepRecord) -> Value {
    let mut v = outcome_to_json(&record.outcome);
    if let Some(obj) = v.as_object_mut() {
        obj.insert("dataset", Value::from(record.dataset.as_str()));
        obj.insert("algorithm", Value::from(record.algorithm.as_str()));
    }
    v
}

fn field<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a Value, HarnessError> {
    v.get(key)
        .ok_or_else(|| HarnessError::Checkpoint(format!("line {line}: missing field {key:?}")))
}

fn str_field(v: &Value, key: &str, line: usize) -> Result<String, HarnessError> {
    Ok(field(v, key, line)?
        .as_str()
        .ok_or_else(|| HarnessError::Checkpoint(format!("line {line}: {key:?} not a string")))?
        .to_string())
}

fn f64_field(v: &Value, key: &str, line: usize) -> Result<f64, HarnessError> {
    // Non-finite floats serialise as null (JSON has no NaN literal).
    let value = field(v, key, line)?;
    if value.is_null() {
        return Ok(f64::NAN);
    }
    value
        .as_f64()
        .ok_or_else(|| HarnessError::Checkpoint(format!("line {line}: {key:?} not a number")))
}

fn record_from_json(v: &Value, line: usize) -> Result<SweepRecord, HarnessError> {
    let dataset = str_field(v, "dataset", line)?;
    let algorithm = str_field(v, "algorithm", line)?;
    let status = str_field(v, "status", line)?;
    let outcome = match status.as_str() {
        "inapplicable" => RunOutcome::Inapplicable,
        "failed" => RunOutcome::Failed {
            kind: str_field(v, "kind", line)?,
            reason: str_field(v, "reason", line)?,
        },
        "completed" => {
            let losses = field(v, "per_window_loss", line)?
                .as_array()
                .ok_or_else(|| {
                    HarnessError::Checkpoint(format!("line {line}: per_window_loss not an array"))
                })?
                .iter()
                .map(|x| {
                    if x.is_null() {
                        f64::NAN
                    } else {
                        x.as_f64().unwrap_or(f64::NAN)
                    }
                })
                .collect();
            let degradations = field(v, "degradations", line)?
                .as_array()
                .map(|xs| {
                    xs.iter()
                        .filter_map(|x| x.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            RunOutcome::Completed(RunResult {
                dataset: dataset.clone(),
                algorithm: algorithm.clone(),
                per_window_loss: losses,
                mean_loss: f64_field(v, "mean_loss", line)?,
                train_seconds: f64_field(v, "train_seconds", line)?,
                test_seconds: f64_field(v, "test_seconds", line)?,
                items: field(v, "items", line)?.as_u64().unwrap_or(0) as usize,
                throughput: f64_field(v, "throughput", line)?,
                memory_bytes: field(v, "memory_bytes", line)?.as_u64().unwrap_or(0) as usize,
                degradations,
            })
        }
        other => {
            return Err(HarnessError::Checkpoint(format!(
                "line {line}: unknown status {other:?}"
            )))
        }
    };
    Ok(SweepRecord {
        dataset,
        algorithm,
        outcome,
    })
}

/// Reads every record of a JSON-lines checkpoint file. A missing file is
/// an empty checkpoint (fresh sweep), a malformed one a typed error.
pub fn load_checkpoint(path: &Path) -> Result<Vec<SweepRecord>, HarnessError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(HarnessError::Io(format!("read {}: {e}", path.display()))),
    };
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::from_str(line)
            .map_err(|e| HarnessError::Checkpoint(format!("line {}: {e}", i + 1)))?;
        records.push(record_from_json(&value, i + 1)?);
    }
    Ok(records)
}

/// Serialises one record through the shared sweep writer (one line per
/// record; the mutex keeps concurrent workers' lines from interleaving).
fn write_checkpoint_line(
    writer: &Mutex<std::fs::File>,
    record: &SweepRecord,
) -> Result<(), HarnessError> {
    let line = serde_json::to_string(&record_to_json(record))
        .map_err(|e| HarnessError::Checkpoint(e.to_string()))?;
    let mut file = writer.lock().expect("checkpoint writer poisoned");
    writeln!(file, "{line}").map_err(|e| HarnessError::Io(format!("write checkpoint: {e}")))
}

#[cfg(test)]
fn append_checkpoint(path: &Path, record: &SweepRecord) -> Result<(), HarnessError> {
    let line = serde_json::to_string(&record_to_json(record))
        .map_err(|e| HarnessError::Checkpoint(e.to_string()))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| HarnessError::Io(format!("open {}: {e}", path.display())))?;
    writeln!(file, "{line}").map_err(|e| HarnessError::Io(format!("write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_synth::{generate, registry_scaled};

    fn tiny_datasets() -> Vec<StreamDataset> {
        let entries = registry_scaled(0.03);
        ["Electricity Prices", "Power Consumption of Tetouan City"]
            .iter()
            .map(|name| {
                let entry = entries.iter().find(|e| e.spec.name == *name).unwrap();
                generate(&entry.spec, 0)
            })
            .collect()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("oeb_sweep_{tag}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Outcome equality that ignores wall-clock fields.
    fn same_modulo_timing(a: &SweepReport, b: &SweepReport) -> bool {
        a.records.len() == b.records.len()
            && a.records.iter().zip(&b.records).all(|(x, y)| {
                x.dataset == y.dataset
                    && x.algorithm == y.algorithm
                    && match (&x.outcome, &y.outcome) {
                        (RunOutcome::Completed(p), RunOutcome::Completed(q)) => {
                            let bits =
                                |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                            bits(&p.per_window_loss) == bits(&q.per_window_loss)
                                && p.mean_loss.to_bits() == q.mean_loss.to_bits()
                                && p.items == q.items
                                && p.degradations == q.degradations
                        }
                        (o1, o2) => o1 == o2,
                    }
            })
    }

    #[test]
    fn progress_starts_at_the_resumed_count_not_zero() {
        // The regression this guards: a killed-and-resumed sweep used to
        // recount completed cells from zero. done/total must cover the
        // whole grid, seeded by the checkpoint.
        let p = SweepProgress::new(10, 4, false);
        assert_eq!(p.note_done(), (5, 10));
        assert_eq!(p.note_done(), (6, 10));
    }

    #[test]
    fn sweep_records_every_pair() {
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::Arf];
        let report = run_sweep(
            &datasets,
            &algorithms,
            &HarnessConfig::default(),
            None,
            None,
            1,
        )
        .unwrap();
        assert_eq!(report.records.len(), 4);
        let (completed, inapplicable, failed) = report.counts();
        // ARF does not apply to the regression dataset.
        assert_eq!(completed, 3);
        assert_eq!(inapplicable, 1);
        assert_eq!(failed, 0);
    }

    #[test]
    fn checkpoint_roundtrips_all_outcome_kinds() {
        let path = temp_path("roundtrip");
        let records = vec![
            SweepRecord {
                dataset: "A".into(),
                algorithm: "Naive(DT)".into(),
                outcome: RunOutcome::Completed(RunResult {
                    dataset: "A".into(),
                    algorithm: "Naive(DT)".into(),
                    per_window_loss: vec![0.25, f64::NAN, 0.5],
                    mean_loss: f64::NAN,
                    train_seconds: 1.5,
                    test_seconds: 0.5,
                    items: 100,
                    throughput: 50.0,
                    memory_bytes: 4096,
                    degradations: vec!["window 3: skipped".into()],
                }),
            },
            SweepRecord {
                dataset: "B".into(),
                algorithm: "ARF".into(),
                outcome: RunOutcome::Inapplicable,
            },
            SweepRecord {
                dataset: "C \"quoted\"".into(),
                algorithm: "EWC".into(),
                outcome: RunOutcome::Failed {
                    kind: "panicked".into(),
                    reason: "index out of bounds: len 3".into(),
                },
            },
        ];
        for r in &records {
            append_checkpoint(&path, r).unwrap();
        }
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[1], records[1]);
        assert_eq!(loaded[2], records[2]);
        match (&loaded[0].outcome, &records[0].outcome) {
            (RunOutcome::Completed(a), RunOutcome::Completed(b)) => {
                assert_eq!(a.per_window_loss[0], b.per_window_loss[0]);
                assert!(a.per_window_loss[1].is_nan());
                assert!(a.mean_loss.is_nan());
                assert_eq!(a.items, b.items);
                assert_eq!(a.degradations, b.degradations);
            }
            _ => panic!("outcome kind changed in roundtrip"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_checkpoint_is_a_fresh_sweep() {
        let path = temp_path("missing");
        assert!(load_checkpoint(&path).unwrap().is_empty());
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            load_checkpoint(&path).unwrap_err(),
            HarnessError::Checkpoint(_)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveGbdt, Algorithm::Arf];
        let cfg = HarnessConfig::default();
        let seq = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        let par = run_sweep(&datasets, &algorithms, &cfg, None, None, 4).unwrap();
        assert!(
            same_modulo_timing(&seq, &par),
            "4-worker sweep diverged from the sequential one"
        );
    }

    #[test]
    fn interrupted_sweep_resumes_to_the_same_report() {
        let datasets = tiny_datasets();
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveGbdt];
        let cfg = HarnessConfig::default();

        let uninterrupted = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        assert_eq!(uninterrupted.records.len(), 4);

        // "Kill" the sweep after two runs, then resume from the
        // checkpoint — on two workers, to cross resume with parallelism.
        let path = temp_path("resume");
        let partial = run_sweep(&datasets, &algorithms, &cfg, Some(&path), Some(2), 2).unwrap();
        assert_eq!(partial.records.len(), 2);
        let resumed = run_sweep(&datasets, &algorithms, &cfg, Some(&path), None, 2).unwrap();
        assert!(
            same_modulo_timing(&resumed, &uninterrupted),
            "resumed report differs from uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }
}
