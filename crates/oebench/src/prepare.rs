//! The prepare stage of the staged pipeline: everything that happens to
//! a stream *before* any learner sees it — windowing, one-hot encoding,
//! imputation, scaling, outlier removal, optional shuffling and fault
//! injection — materialized once into an immutable [`PreparedStream`].
//!
//! The paper treats preprocessing (§4.2) and evaluation (§5) as separate
//! phases, and prequential comparison is only fair when every algorithm
//! consumes an *identical* stream. Materializing the prepared windows
//! once and sharing them behind [`Arc`]s enforces that by construction:
//! the ten learners of a sweep cell read the same buffers, zero-copy,
//! instead of each re-running the full preprocessing pipeline.
//!
//! [`prepare_cached`] adds a bounded, process-wide cache keyed on the
//! dataset's content fingerprint plus the preprocessing-relevant half of
//! the [`HarnessConfig`], so `run_sweep`, `run_seeds` and the
//! `experiments/*` drivers fetch rather than regenerate.
//!
//! One deliberate divergence from the old monolithic loop: prepare-stage
//! errors (e.g. a strict-policy schema mismatch in window 5) now surface
//! even when the learner would have failed first with `NotApplicable`
//! on window 0, because the stages run to completion independently. On
//! any stream that prepares cleanly the results are bit-identical.

use crate::error::HarnessError;
use crate::harness::{HarnessConfig, OutlierRemoval, RunResult};
use crate::learners::{Algorithm, StreamLearner};
use crate::supervise::CellBudget;
use oeb_faults::{DatasetFrames, FaultInjector, FrameSource, WindowFrame};
use oeb_linalg::Matrix;
use oeb_outlier::{flag_by_sigma, Ecod, IForestConfig, IsolationForest};
use oeb_preprocess::{Imputer, MeanImputer, StandardScaler, TargetScaler, ZeroImputer};
use oeb_tabular::{StreamDataset, Task};
use oeb_trace::{enabled, Counter, Histogram, SpanDef, Stopwatch};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

// Prepare/evaluate instruments. The cache counters are schedule-invariant:
// slot creation is serialised under the global cache lock, so exactly one
// caller per key records the miss regardless of thread count.
static CACHE_HIT: Counter = Counter::new("prepare.cache.hit");
static CACHE_MISS: Counter = Counter::new("prepare.cache.miss");
static CACHE_EVICT: Counter = Counter::new("prepare.cache.evict");
static WINDOWS_PREPARED: Counter = Counter::new("prepare.windows");
static ROWS_PREPARED: Counter = Counter::new("prepare.rows");
static IMPUTE_SPAN: SpanDef = SpanDef::new("prepare.impute");
static SCALE_SPAN: SpanDef = SpanDef::new("prepare.scale");
static DETECT_SPAN: SpanDef = SpanDef::new("prepare.detect");
static TEST_SPAN: SpanDef = SpanDef::new("evaluate.test");
static TRAIN_SPAN: SpanDef = SpanDef::new("evaluate.train");
static WINDOW_UPDATES: Counter = Counter::new("learner.window_updates");
static ITEMS_TESTED: Counter = Counter::new("learner.items_tested");
/// Per-window test-then-train latency in microseconds (log buckets) — the
/// window-level counterpart of `prequential.item.latency_us`, with
/// deterministic p50/p95/p99 derived from the bucket bounds. Sampled only
/// while tracing is enabled; the untraced path adds no clock reads.
static WINDOW_LATENCY: Histogram = Histogram::new(
    "evaluate.window.latency_us",
    &[
        10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000,
    ],
);

/// One fully preprocessed window, ready for test-then-train. Feature and
/// target buffers sit behind [`Arc`]s so every learner evaluating the
/// same stream shares them without copying.
#[derive(Debug, Clone)]
pub struct PreparedWindow {
    /// Window index in the *source* stream (fault injectors may drop or
    /// duplicate windows, so indices need not be consecutive).
    pub index: usize,
    /// Imputed, scaled, outlier-filtered feature rows. May have zero
    /// rows when outlier removal emptied the window; such windows still
    /// advance the warm-up accounting, exactly like the monolithic loop.
    pub features: Arc<Matrix>,
    /// One target per feature row (z-scored for regression tasks).
    pub targets: Arc<Vec<f64>>,
    /// Degradations the prepare stage recorded since the previous
    /// emitted window (skipped windows, imputer fallbacks). The evaluate
    /// stage replays them into [`RunResult::degradations`] in order.
    pub pre_degradations: Vec<String>,
}

/// The shared, immutable artifact between the prepare and evaluate
/// stages: one `(dataset, seed, preprocessing config)` key's worth of
/// preprocessed windows.
#[derive(Debug, Clone)]
pub struct PreparedStream {
    /// Dataset name as it should appear in results (shuffled streams
    /// carry the generator's "(shuffled)" suffix).
    pub dataset: String,
    /// Learning task.
    pub task: Task,
    /// Feature width every learner is built for.
    pub dim: usize,
    /// The preprocessed windows in stream order.
    pub windows: Vec<PreparedWindow>,
    /// Degradations recorded after the last emitted window (e.g. a
    /// trailing run of skipped windows).
    pub trailing_degradations: Vec<String>,
}

impl PreparedStream {
    /// Total samples across all prepared windows.
    pub fn n_items(&self) -> usize {
        self.windows.iter().map(|w| w.features.rows()).sum()
    }
}

/// Runs the full prepare pipeline for one dataset + config: shuffling,
/// feature selection, windowed encoding, and [`prepare_from_source`]
/// over the (optionally fault-injected) frame stream.
pub fn prepare_stream(
    dataset: &StreamDataset,
    config: &HarnessConfig,
) -> Result<PreparedStream, HarnessError> {
    config.validate()?;
    let dataset = if config.shuffle {
        let mut order: Vec<usize> = (0..dataset.n_rows()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ SHUFFLE_SEED);
        order.shuffle(&mut rng);
        std::borrow::Cow::Owned(dataset.permuted(&order))
    } else {
        std::borrow::Cow::Borrowed(dataset)
    };
    let dataset: &StreamDataset = &dataset;

    // Select the feature columns, possibly discarding the most-missing.
    let mut feature_cols = dataset.feature_cols();
    if config.discard_most_missing > 0 {
        feature_cols.sort_by(|&a, &b| {
            let ra = dataset.table.column(a).missing_ratio();
            let rb = dataset.table.column(b).missing_ratio();
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep = feature_cols
            .len()
            .saturating_sub(config.discard_most_missing)
            .max(1);
        feature_cols.truncate(keep);
        feature_cols.sort_unstable();
    }

    let mut frames = DatasetFrames::new(dataset, &feature_cols, config.window_factor);
    let input_dim = frames.width();
    let found = frames.n_windows();
    if found < 2 {
        return Err(HarnessError::InsufficientWindows { found });
    }

    // Oracle imputation reference: the whole encoded stream.
    let oracle_reference = if config.oracle_imputation {
        Some(frames.encoder().encode_all(&dataset.table))
    } else {
        None
    };

    match &config.fault_plan {
        Some(plan) => {
            let mut injected = FaultInjector::new(frames, plan.clone());
            prepare_from_source(
                &mut injected,
                dataset.task,
                &dataset.name,
                config,
                oracle_reference.as_ref(),
                Some(input_dim),
            )
        }
        None => prepare_from_source(
            &mut frames,
            dataset.task,
            &dataset.name,
            config,
            oracle_reference.as_ref(),
            Some(input_dim),
        ),
    }
}

/// Prepares an arbitrary frame source: imputes, scales and
/// outlier-filters every window per `config`, recording degradations.
///
/// `expected_dim` fixes the feature width; when `None` the first frame
/// defines it. Frames with a different width are skipped or rejected per
/// `config.degrade`. The per-window order of operations replicates the
/// old monolithic test-then-train loop exactly, so evaluating the result
/// is bit-identical to the pre-split harness.
pub fn prepare_from_source<S: FrameSource>(
    source: &mut S,
    task: Task,
    dataset_name: &str,
    config: &HarnessConfig,
    oracle_reference: Option<&Matrix>,
    expected_dim: Option<usize>,
) -> Result<PreparedStream, HarnessError> {
    config.validate()?;
    let policy = config.degrade;
    let imputer = config.imputer.build();

    let mut expected = expected_dim;
    let mut scaler: Option<StandardScaler> = None;
    let mut target_scaler: Option<TargetScaler> = None;
    let mut reference = ReferenceBuffer::new();
    let mut windows: Vec<PreparedWindow> = Vec::new();
    // Degradations since the last emitted window; flushed into the next
    // emission so evaluate replays them in chronological order.
    let mut pending: Vec<String> = Vec::new();

    while let Some(frame) = source.next_frame() {
        let dim = *expected.get_or_insert_with(|| frame.cols());
        if frame.cols() != dim {
            if policy.skip_bad_windows {
                pending.push(format!(
                    "window {}: skipped, schema mismatch ({} columns, expected {dim})",
                    frame.index,
                    frame.cols()
                ));
                continue;
            }
            return Err(HarnessError::SchemaMismatch {
                window: frame.index,
                expected: dim,
                got: frame.cols(),
            });
        }
        if frame.rows() != frame.targets.len() {
            if policy.skip_bad_windows {
                pending.push(format!(
                    "window {}: skipped, {} rows vs {} targets",
                    frame.index,
                    frame.rows(),
                    frame.targets.len()
                ));
                continue;
            }
            return Err(HarnessError::InvalidConfig(format!(
                "window {}: {} feature rows but {} targets",
                frame.index,
                frame.rows(),
                frame.targets.len()
            )));
        }
        if frame.rows() == 0 {
            continue;
        }

        let is_first = windows.is_empty();
        let WindowFrame {
            index,
            features: mut feats,
            mut targets,
        } = frame;

        // Warm-up window enters the imputation reference raw (§6.1);
        // later windows enter imputed, below.
        if is_first {
            reference.push_window(&feats, config.reference_cap);
        }
        // The guard also covers the fallback path below: early `continue`
        // / `return` still record the span via RAII drop.
        let impute_span = IMPUTE_SPAN.start();
        impute_window(imputer.as_ref(), &mut feats, oracle_reference, &reference);
        if !feats.is_finite() {
            if policy.imputer_fallback {
                let fallback_ref = if reference.is_empty() {
                    feats.clone()
                } else {
                    reference.to_matrix()
                };
                MeanImputer.impute(&mut feats, &fallback_ref);
                if !feats.is_finite() {
                    ZeroImputer.impute(&mut feats, &fallback_ref);
                }
                pending.push(format!(
                    "window {index}: {} left non-finite cells, fell back to mean/zero",
                    imputer.name()
                ));
            } else if policy.skip_bad_windows {
                pending.push(format!(
                    "window {index}: skipped, {} left non-finite cells",
                    imputer.name()
                ));
                continue;
            } else {
                return Err(HarnessError::ImputationFailed {
                    window: index,
                    detail: format!("{} left non-finite cells", imputer.name()),
                });
            }
        }

        drop(impute_span);

        let scale_span = SCALE_SPAN.start();
        if is_first {
            // First-window statistics fix the scalers for the whole run.
            scaler = Some(StandardScaler::fit(&feats));
            target_scaler = match task {
                Task::Regression => Some(TargetScaler::fit(&targets)),
                Task::Classification { .. } => None,
            };
        } else {
            reference.push_window(&feats, config.reference_cap);
        }

        scaler
            .as_ref()
            .expect("scaler set on warm-up")
            .transform(&mut feats);
        if let Some(ts) = &target_scaler {
            for t in &mut targets {
                *t = ts.transform(*t);
            }
        }
        drop(scale_span);

        // Optional outlier removal before test and train (§6.8).
        let (feats, targets) = match config.outlier_removal {
            OutlierRemoval::None => (feats, targets),
            OutlierRemoval::Ecod => {
                let _detect = DETECT_SPAN.start();
                let scores = Ecod::fit(&feats).score_all(&feats);
                retain_unflagged(feats, targets, &scores)
            }
            OutlierRemoval::IForest => {
                let _detect = DETECT_SPAN.start();
                let forest = IsolationForest::fit(
                    &feats,
                    &IForestConfig {
                        n_trees: 25,
                        seed: config.seed ^ index as u64,
                        ..Default::default()
                    },
                );
                let scores = forest.score_all(&feats);
                retain_unflagged(feats, targets, &scores)
            }
        };

        // A window emptied by removal is still emitted: it advances the
        // warm-up accounting without training, like the old loop.
        WINDOWS_PREPARED.incr();
        ROWS_PREPARED.add(feats.rows() as u64);
        windows.push(PreparedWindow {
            index,
            features: Arc::new(feats),
            targets: Arc::new(targets),
            pre_degradations: std::mem::take(&mut pending),
        });
    }

    Ok(PreparedStream {
        dataset: dataset_name.to_string(),
        task,
        dim: expected.unwrap_or(0),
        windows,
        trailing_degradations: pending,
    })
}

/// The evaluate stage: runs one learner prequentially over a prepared
/// stream. Only learner work (predict / train) is timed; the shared
/// preprocessing cost never enters the per-run wall-clock columns.
pub fn evaluate_prepared(
    prepared: &PreparedStream,
    algorithm: Algorithm,
    config: &HarnessConfig,
) -> Result<RunResult, HarnessError> {
    evaluate_supervised(prepared, algorithm, config, &CellBudget::unlimited())
}

/// [`evaluate_prepared`] under a supervision budget: the deadline is
/// checked cooperatively at the top of every window, before any work on
/// it, so a given budget stops at the same window on every replay. The
/// budget covers only the evaluate stage — the prepare stage is a
/// shared, cached artifact whose cost is amortised across the sweep and
/// cannot be attributed to one cell.
pub fn evaluate_supervised(
    prepared: &PreparedStream,
    algorithm: Algorithm,
    config: &HarnessConfig,
    budget: &CellBudget,
) -> Result<RunResult, HarnessError> {
    config.validate()?;
    let policy = config.degrade;
    let mut learner_cfg = config.learner.clone();
    learner_cfg.seed = learner_cfg.seed.wrapping_add(config.seed);

    let mut learner: Option<Box<dyn StreamLearner>> = None;
    let mut per_window_loss = Vec::new();
    let mut degradations: Vec<String> = Vec::new();
    let mut resets = 0usize;
    // Windows that entered the pipeline (the old loop's positional `k`):
    // window 0 is the warm-up, every later one is tested before training.
    let mut seen = 0usize;
    let mut train_seconds = 0.0;
    let mut test_seconds = 0.0;
    let mut items = 0usize;
    let mut memory_peak = 0usize;

    for window in &prepared.windows {
        budget.check(seen, items)?;
        degradations.extend(window.pre_degradations.iter().cloned());
        if learner.is_none() {
            learner = Some(
                algorithm
                    .make(prepared.task, prepared.dim, &learner_cfg)
                    .ok_or_else(|| HarnessError::NotApplicable {
                        algorithm: algorithm.name().to_string(),
                        task: format!("{:?}", prepared.task),
                    })?,
            );
        }
        let feats = &window.features;
        let targets = &window.targets;
        if feats.rows() == 0 {
            seen += 1;
            continue;
        }

        let model = learner.as_mut().expect("learner set on warm-up");
        let window_watch = enabled().then(Stopwatch::start);
        if seen > 0 {
            // Test phase. The stopwatch's value flows into the reported
            // test-seconds metric; the span it records on stop is
            // trace-channel only.
            let watch = Stopwatch::start();
            let mut loss = 0.0;
            for r in 0..feats.rows() {
                let pred = model.predict(feats.row(r));
                loss += match prepared.task {
                    Task::Classification { .. } => f64::from(pred != targets[r]),
                    Task::Regression => (pred - targets[r]).powi(2),
                };
            }
            test_seconds += watch.stop(&TEST_SPAN);
            let window_loss = loss / feats.rows() as f64;
            if !window_loss.is_finite() && policy.reset_on_nonfinite {
                resets += 1;
                if resets > policy.max_retries {
                    return Err(HarnessError::NonFiniteLoss {
                        window: window.index,
                        retries: policy.max_retries,
                    });
                }
                degradations.push(format!(
                    "window {}: non-finite loss, model reset ({resets}/{})",
                    window.index, policy.max_retries
                ));
                *model = algorithm
                    .make(prepared.task, prepared.dim, &learner_cfg)
                    .expect("algorithm applied on warm-up");
            } else {
                per_window_loss.push(window_loss);
                items += feats.rows();
                ITEMS_TESTED.add(feats.rows() as u64);
            }
        }

        // Train phase.
        let watch = Stopwatch::start();
        model.train_window(feats, targets);
        train_seconds += watch.stop(&TRAIN_SPAN);
        if let Some(watch) = window_watch {
            WINDOW_LATENCY.record(watch.elapsed_micros());
        }
        WINDOW_UPDATES.incr();
        items += feats.rows();
        memory_peak = memory_peak.max(model.memory_bytes());
        seen += 1;
    }
    degradations.extend(prepared.trailing_degradations.iter().cloned());

    let learner = match learner {
        Some(l) => l,
        None => return Err(HarnessError::EmptyStream),
    };
    let mean_loss = if per_window_loss.is_empty() {
        f64::NAN
    } else {
        per_window_loss.iter().sum::<f64>() / per_window_loss.len() as f64
    };
    let elapsed = (train_seconds + test_seconds).max(1e-9);
    Ok(RunResult {
        dataset: prepared.dataset.clone(),
        algorithm: learner.name().to_string(),
        per_window_loss,
        mean_loss,
        train_seconds,
        test_seconds,
        items,
        throughput: items as f64 / elapsed,
        memory_bytes: memory_peak,
        degradations,
    })
}

// ---------------------------------------------------------------------
// Keyed prepare cache.

type CachedPrepare = Result<Arc<PreparedStream>, HarnessError>;
type CacheSlot = Arc<Mutex<Option<CachedPrepare>>>;

struct PrepareCache {
    map: HashMap<String, CacheSlot>,
    order: VecDeque<String>,
    capacity: usize,
}

static CACHE: Mutex<Option<PrepareCache>> = Mutex::new(None);

/// Default number of prepared streams kept resident. Sharing is
/// temporally local (one dataset crosses all algorithms and seeds before
/// the sweep moves on), so a small window suffices; override with
/// `OEBENCH_PREPARE_CACHE` (0 disables caching).
const DEFAULT_CAPACITY: usize = 8;

fn capacity() -> usize {
    std::env::var("OEBENCH_PREPARE_CACHE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_CAPACITY)
}

/// Cache key: dataset content fingerprint plus every config field the
/// prepare stage reads. Learner hyper-parameters are deliberately
/// excluded — ten learners on one (dataset, seed) share one entry.
fn prepare_key(dataset: &StreamDataset, config: &HarnessConfig) -> String {
    format!(
        "{:016x}|{}|wf={}|imp={:?}|oracle={}|discard={}|out={:?}|shuf={}|cap={}|seed={}|deg={:?}|fault={:?}",
        dataset.fingerprint(),
        dataset.name,
        config.window_factor.to_bits(),
        config.imputer,
        config.oracle_imputation,
        config.discard_most_missing,
        config.outlier_removal,
        config.shuffle,
        config.reference_cap,
        config.seed,
        config.degrade,
        config.fault_plan,
    )
}

/// [`prepare_stream`] behind the process-wide keyed cache: the first
/// caller for a key prepares, every later caller (typically another
/// algorithm on the same cell) fetches the shared artifact. Concurrent
/// callers for the same key block on a per-entry mutex instead of
/// duplicating the work; errors are cached like successes.
pub fn prepare_cached(
    dataset: &StreamDataset,
    config: &HarnessConfig,
) -> Result<Arc<PreparedStream>, HarnessError> {
    let cap = capacity();
    if cap == 0 {
        return prepare_stream(dataset, config).map(Arc::new);
    }
    let key = prepare_key(dataset, config);
    let slot: CacheSlot = {
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(|| PrepareCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: cap,
        });
        match cache.map.get(&key) {
            Some(slot) => {
                CACHE_HIT.incr();
                slot.clone()
            }
            None => {
                CACHE_MISS.incr();
                let slot: CacheSlot = Arc::new(Mutex::new(None));
                cache.map.insert(key.clone(), slot.clone());
                cache.order.push_back(key);
                while cache.order.len() > cache.capacity {
                    if let Some(evicted) = cache.order.pop_front() {
                        cache.map.remove(&evicted);
                        CACHE_EVICT.incr();
                    }
                }
                slot
            }
        }
    };
    let mut entry = slot.lock();
    if let Some(cached) = entry.as_ref() {
        return cached.clone();
    }
    let computed = prepare_stream(dataset, config).map(Arc::new);
    *entry = Some(computed.clone());
    computed
}

/// Rolling imputation reference held as one flat row-major buffer.
///
/// The historical `Vec<Vec<f64>>` allocated one `Vec` per pushed row and
/// re-packed the whole window history into a fresh `Matrix` on every
/// window; this keeps the same rows (same order, same trimming) in a
/// single contiguous buffer that materialises with one memcpy.
struct ReferenceBuffer {
    dim: usize,
    data: Vec<f64>,
}

impl ReferenceBuffer {
    fn new() -> Self {
        ReferenceBuffer {
            dim: 0,
            data: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Appends every row of `window`, then trims the oldest rows above
    /// `cap` (the same FIFO semantics as the historical per-row push).
    fn push_window(&mut self, window: &Matrix, cap: usize) {
        if window.rows() == 0 {
            return;
        }
        self.dim = window.cols();
        self.data.extend_from_slice(window.as_slice());
        let rows = self.rows();
        if rows > cap {
            let excess = rows - cap;
            self.data.drain(..excess * self.dim);
        }
    }

    /// Materialises the buffer as a matrix for the imputer.
    fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows(), self.dim, self.data.clone())
    }
}

fn impute_window(
    imputer: &dyn Imputer,
    window: &mut Matrix,
    oracle: Option<&Matrix>,
    reference: &ReferenceBuffer,
) {
    let has_missing = window.as_slice().iter().any(|x| !x.is_finite());
    if !has_missing {
        return;
    }
    match oracle {
        Some(full) => imputer.impute(window, full),
        None => {
            if reference.is_empty() {
                let self_ref = window.clone();
                imputer.impute(window, &self_ref);
            } else {
                imputer.impute(window, &reference.to_matrix());
            }
        }
    }
}

fn retain_unflagged(feats: Matrix, targets: Vec<f64>, scores: &[f64]) -> (Matrix, Vec<f64>) {
    let flags = flag_by_sigma(scores, 3.0);
    let keep: Vec<usize> = (0..feats.rows()).filter(|&r| !flags[r]).collect();
    if keep.len() == feats.rows() {
        return (feats, targets);
    }
    let rows: Vec<Vec<f64>> = keep.iter().map(|&r| feats.row(r).to_vec()).collect();
    let ys: Vec<f64> = keep.iter().map(|&r| targets[r]).collect();
    (Matrix::from_rows(&rows), ys)
}

/// Seed salt for the Figure 15 shuffled baseline (ASCII "shuf").
pub(crate) const SHUFFLE_SEED: u64 = 0x73687566;

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_faults::SharedFrames;
    use oeb_synth::{generate, registry_scaled};

    fn small_dataset() -> StreamDataset {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Electricity Prices")
            .unwrap();
        generate(&entry.spec, 0)
    }

    #[test]
    fn prepare_cached_shares_one_artifact_across_learner_configs() {
        let d = small_dataset();
        let cfg = HarnessConfig::default();
        let a = prepare_cached(&d, &cfg).unwrap();
        // A different learner config must hit the same prepared stream:
        // prepare does not depend on learner hyper-parameters.
        let mut other = cfg.clone();
        other.learner.epochs = 17;
        let b = prepare_cached(&d, &other).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "prepare key must ignore learner config"
        );
        // A different seed is a different prepared stream.
        let mut seeded = cfg.clone();
        seeded.seed = 1;
        let c = prepare_cached(&d, &seeded).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn evaluate_over_cached_stream_matches_direct_run() {
        let d = small_dataset();
        let cfg = HarnessConfig::default();
        let prepared = prepare_cached(&d, &cfg).unwrap();
        let staged = evaluate_prepared(&prepared, Algorithm::NaiveDt, &cfg).unwrap();
        let direct = crate::harness::try_run_stream(&d, Algorithm::NaiveDt, &cfg).unwrap();
        assert_eq!(staged.per_window_loss, direct.per_window_loss);
        assert_eq!(staged.mean_loss.to_bits(), direct.mean_loss.to_bits());
        assert_eq!(staged.items, direct.items);
        assert_eq!(staged.degradations, direct.degradations);
    }

    #[test]
    fn prepared_windows_are_shared_zero_copy() {
        let d = small_dataset();
        let cfg = HarnessConfig::default();
        let prepared = prepare_stream(&d, &cfg).unwrap();
        let clone = prepared.clone();
        for (a, b) in prepared.windows.iter().zip(&clone.windows) {
            assert!(Arc::ptr_eq(&a.features, &b.features));
            assert!(Arc::ptr_eq(&a.targets, &b.targets));
        }
        assert!(prepared.n_items() > 0);
    }

    #[test]
    fn prepare_errors_are_cached_and_cloned() {
        let entries = registry_scaled(0.03);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Electricity Prices")
            .unwrap();
        let mut spec = entry.spec.clone();
        spec.default_window = spec.n_rows; // one giant window
        let d = generate(&spec, 0);
        let cfg = HarnessConfig::default();
        let first = prepare_cached(&d, &cfg).unwrap_err();
        let second = prepare_cached(&d, &cfg).unwrap_err();
        assert_eq!(first, second);
        assert!(matches!(
            first,
            HarnessError::InsufficientWindows { found: 1 }
        ));
    }

    #[test]
    fn shared_frame_replay_prepares_identically() {
        // Capturing the raw frame stream once and preparing from the
        // shared replay produces the same artifact as preparing from the
        // dataset directly — the FrameSource seam is lossless.
        let d = small_dataset();
        let cfg = HarnessConfig::default();
        let direct = prepare_stream(&d, &cfg).unwrap();

        let feature_cols = d.feature_cols();
        let mut frames = DatasetFrames::new(&d, &feature_cols, cfg.window_factor);
        let dim = frames.width();
        let captured = SharedFrames::capture(&mut frames);
        let mut replay = SharedFrames::new(captured);
        let replayed =
            prepare_from_source(&mut replay, d.task, &d.name, &cfg, None, Some(dim)).unwrap();

        assert_eq!(direct.windows.len(), replayed.windows.len());
        for (a, b) in direct.windows.iter().zip(&replayed.windows) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.features.as_slice(), b.features.as_slice());
            assert_eq!(a.targets, b.targets);
        }
    }
}
