//! Minimal SVG line charts for the figure artifacts.
//!
//! The `repro` harness renders the per-window curve figures (4, 5, 7, 8,
//! 15, 16) as standalone SVG files next to their text/JSON artifacts, so
//! the reproduction produces actual figures without any plotting
//! dependency.

/// One line series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Y values (X is the index). Non-finite values break the polyline.
    pub values: Vec<f64>,
}

/// A simple line plot.
#[derive(Debug, Clone)]
pub struct LinePlot {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
    /// Vertical marker positions (drift windows, event windows).
    pub markers: Vec<usize>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;
const PALETTE: [&str; 6] = [
    "#2f6fde", "#d9552c", "#2d9a57", "#8e44ad", "#b8860b", "#555555",
];

impl LinePlot {
    /// Creates an empty plot.
    pub fn new(title: impl Into<String>) -> LinePlot {
        LinePlot {
            title: title.into(),
            x_label: "window".into(),
            y_label: "loss".into(),
            series: Vec::new(),
            markers: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn series(mut self, label: impl Into<String>, values: Vec<f64>) -> LinePlot {
        self.series.push(Series {
            label: label.into(),
            values,
        });
        self
    }

    /// Adds vertical markers at the given x positions.
    pub fn markers(mut self, positions: Vec<usize>) -> LinePlot {
        self.markers = positions;
        self
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        let n = self
            .series
            .iter()
            .map(|s| s.values.len())
            .max()
            .unwrap_or(0);
        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.values.iter())
            .copied()
            .filter(|v| v.is_finite())
            .collect();
        let (y_lo, y_hi) = bounds(&finite);
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let x_of = |i: usize| -> f64 {
            if n <= 1 {
                MARGIN_L + plot_w / 2.0
            } else {
                MARGIN_L + plot_w * i as f64 / (n - 1) as f64
            }
        };
        let y_of =
            |v: f64| -> f64 { MARGIN_T + plot_h * (1.0 - (v - y_lo) / (y_hi - y_lo).max(1e-12)) };

        let mut svg = String::new();
        svg.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        ));
        svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
        svg.push_str(&format!(
            r#"<text x="{}" y="24" font-size="15" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        ));

        // Axes.
        svg.push_str(&format!(
            r##"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="#333"/>"##,
            HEIGHT - MARGIN_B
        ));
        svg.push_str(&format!(
            r##"<line x1="{MARGIN_L}" y1="{0}" x2="{1}" y2="{0}" stroke="#333"/>"##,
            HEIGHT - MARGIN_B,
            WIDTH - MARGIN_R
        ));
        // Y ticks.
        for t in 0..=4 {
            let v = y_lo + (y_hi - y_lo) * t as f64 / 4.0;
            let y = y_of(v);
            svg.push_str(&format!(
                r##"<line x1="{}" y1="{y}" x2="{MARGIN_L}" y2="{y}" stroke="#333"/>"##,
                MARGIN_L - 4.0
            ));
            svg.push_str(&format!(
                r#"<text x="{}" y="{}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_L - 8.0,
                y + 4.0,
                fmt_tick(v)
            ));
        }
        // Axis labels.
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        ));
        svg.push_str(&format!(
            r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            HEIGHT / 2.0,
            HEIGHT / 2.0,
            escape(&self.y_label)
        ));

        // Event/drift markers.
        for &m in &self.markers {
            if m < n {
                let x = x_of(m);
                svg.push_str(&format!(
                    r##"<line x1="{x}" y1="{MARGIN_T}" x2="{x}" y2="{}" stroke="#bbbbbb" stroke-dasharray="4 3"/>"##,
                    HEIGHT - MARGIN_B
                ));
            }
        }

        // Series.
        for (si, s) in self.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let mut path = String::new();
            let mut pen_down = false;
            for (i, &v) in s.values.iter().enumerate() {
                if v.is_finite() {
                    let cmd = if pen_down { 'L' } else { 'M' };
                    path.push_str(&format!(
                        "{cmd}{:.1},{:.1} ",
                        x_of(i),
                        y_of(v.clamp(y_lo, y_hi))
                    ));
                    pen_down = true;
                } else {
                    pen_down = false;
                }
            }
            if !path.is_empty() {
                svg.push_str(&format!(
                    r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    path.trim_end()
                ));
            }
            // Legend entry.
            let ly = MARGIN_T + 16.0 * si as f64;
            svg.push_str(&format!(
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
                WIDTH - MARGIN_R - 150.0,
                WIDTH - MARGIN_R - 126.0
            ));
            svg.push_str(&format!(
                r#"<text x="{}" y="{}" font-size="11">{}</text>"#,
                WIDTH - MARGIN_R - 120.0,
                ly + 4.0,
                escape(&s.label)
            ));
        }
        svg.push_str("</svg>");
        svg
    }
}

fn bounds(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 1.0);
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi > lo {
        let pad = (hi - lo) * 0.05;
        (lo - pad, hi + pad)
    } else {
        (lo - 0.5, lo + 0.5)
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = LinePlot::new("test & demo")
            .series("a", vec![1.0, 2.0, 3.0])
            .series("b", vec![3.0, 2.0, 1.0])
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("test &amp; demo"));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn non_finite_values_break_the_line() {
        let svg = LinePlot::new("gap")
            .series("s", vec![1.0, f64::NAN, 3.0, 4.0])
            .render();
        // Two pen-down segments -> two M commands inside one path.
        let path = svg.split("<path").nth(1).unwrap();
        let d = path
            .split("d=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap();
        assert_eq!(d.matches('M').count(), 2);
    }

    #[test]
    fn markers_draw_dashed_lines() {
        let svg = LinePlot::new("m")
            .series("s", vec![0.0; 10])
            .markers(vec![2, 5, 99])
            .render();
        // The out-of-range marker (99) is skipped.
        assert_eq!(svg.matches("stroke-dasharray").count(), 2);
    }

    #[test]
    fn empty_plot_is_still_valid() {
        let svg = LinePlot::new("empty").render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn constant_series_has_nonzero_range() {
        let svg = LinePlot::new("const").series("s", vec![5.0; 8]).render();
        assert!(svg.contains("<path"));
        // Ticks around 5.0 (padded range 4.5..5.5).
        assert!(svg.contains("4.50") || svg.contains("5.50"));
    }
}
