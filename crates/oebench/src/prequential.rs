//! Item-level prequential evaluation (test-then-train on every single
//! item), the protocol of the MOA / Souza et al. line of work the paper
//! builds on (§3.2). The window-level harness in [`crate::harness`] is
//! the paper's own protocol; this module complements it for the truly
//! incremental learners (Hoeffding trees, ARF), where per-item
//! prequential accuracy is the conventional metric.

use crate::error::HarnessError;
use crate::supervise::CellBudget;
use oeb_linalg::Matrix;
use oeb_tabular::{StreamDataset, Task};
use oeb_trace::{enabled, Counter, Histogram, Stopwatch};
use oeb_tree::{AdaptiveRandomForest, HoeffdingTree};

/// One `learn_one` call per item — the item-level analogue of the
/// window-level `learner.window_updates` counter.
static ITEM_UPDATES: Counter = Counter::new("learner.item_updates");

/// Per-item test-then-train latency in microseconds (log buckets), the
/// groundwork for a serving-style p99 contract: deterministic p50/p95/p99
/// come from the bucket bounds via [`oeb_trace::HistogramSnapshot`].
/// Sampled only while tracing is enabled — the untraced loop performs no
/// clock reads.
static ITEM_LATENCY: Histogram = Histogram::new(
    "prequential.item.latency_us",
    &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000],
);

/// A model that can be tested and trained one item at a time.
pub trait IncrementalClassifier {
    /// Predicted class for one sample.
    fn predict_one(&self, x: &[f64]) -> usize;

    /// Learns one labelled sample.
    fn learn_one(&mut self, x: &[f64], y: usize);
}

impl IncrementalClassifier for HoeffdingTree {
    fn predict_one(&self, x: &[f64]) -> usize {
        self.predict(x)
    }

    fn learn_one(&mut self, x: &[f64], y: usize) {
        HoeffdingTree::learn_one(self, x, y);
    }
}

impl IncrementalClassifier for AdaptiveRandomForest {
    fn predict_one(&self, x: &[f64]) -> usize {
        self.predict(x)
    }

    fn learn_one(&mut self, x: &[f64], y: usize) {
        AdaptiveRandomForest::learn_one(self, x, y);
    }
}

/// Result of an item-level prequential run.
#[derive(Debug, Clone)]
pub struct PrequentialResult {
    /// Items processed.
    pub items: usize,
    /// Final prequential accuracy (correct / items).
    pub accuracy: f64,
    /// Running accuracy sampled every `sample_every` items.
    pub accuracy_curve: Vec<f64>,
}

/// Runs test-then-train over every item of an encoded stream.
///
/// `xs` carries one already-encoded sample per row; `ys` the class
/// labels. `sample_every` controls the resolution of the returned curve.
pub fn prequential_items<M: IncrementalClassifier>(
    model: &mut M,
    xs: &Matrix,
    ys: &[f64],
    sample_every: usize,
) -> PrequentialResult {
    assert_eq!(xs.rows(), ys.len(), "feature/target length mismatch");
    try_prequential_items(model, xs, ys, sample_every).expect("lengths validated above")
}

/// [`prequential_items`] with a typed error instead of a panic when the
/// feature and target lengths disagree.
pub fn try_prequential_items<M: IncrementalClassifier>(
    model: &mut M,
    xs: &Matrix,
    ys: &[f64],
    sample_every: usize,
) -> Result<PrequentialResult, HarnessError> {
    try_prequential_items_budgeted(model, xs, ys, sample_every, &CellBudget::unlimited())
}

/// [`try_prequential_items`] under a supervision budget, checked
/// cooperatively before every item: an item-level run against a
/// [`CellBudget`] with `max_items` stops test-then-train at exactly that
/// item on every replay, and a fired wall-clock watchdog is honoured at
/// item granularity instead of hanging until the stream ends.
pub fn try_prequential_items_budgeted<M: IncrementalClassifier>(
    model: &mut M,
    xs: &Matrix,
    ys: &[f64],
    sample_every: usize,
    budget: &CellBudget,
) -> Result<PrequentialResult, HarnessError> {
    if xs.rows() != ys.len() {
        return Err(HarnessError::InvalidConfig(format!(
            "{} feature rows but {} targets",
            xs.rows(),
            ys.len()
        )));
    }
    let sample_every = sample_every.max(1);
    let mut correct = 0usize;
    let mut curve = Vec::new();
    for r in 0..xs.rows() {
        budget.check(0, r)?;
        let x = xs.row(r);
        let y = ys[r] as usize;
        let watch = enabled().then(Stopwatch::start);
        if model.predict_one(x) == y {
            correct += 1;
        }
        model.learn_one(x, y);
        if let Some(watch) = watch {
            ITEM_LATENCY.record(watch.elapsed_micros());
        }
        if (r + 1) % sample_every == 0 {
            curve.push(correct as f64 / (r + 1) as f64);
        }
    }
    let items = xs.rows();
    ITEM_UPDATES.add(items as u64);
    Ok(PrequentialResult {
        items,
        accuracy: if items > 0 {
            correct as f64 / items as f64
        } else {
            0.0
        },
        accuracy_curve: curve,
    })
}

/// Convenience wrapper: encodes a classification [`StreamDataset`]
/// (numeric view, NaN as 0) and runs [`prequential_items`].
///
/// # Panics
/// Panics on regression datasets.
pub fn prequential_dataset<M: IncrementalClassifier>(
    model: &mut M,
    dataset: &StreamDataset,
    sample_every: usize,
) -> PrequentialResult {
    assert!(
        matches!(dataset.task, Task::Classification { .. }),
        "item-level prequential accuracy is a classification metric"
    );
    try_prequential_dataset(model, dataset, sample_every).expect("task validated above")
}

/// [`prequential_dataset`] with a typed error instead of a panic on
/// regression datasets.
pub fn try_prequential_dataset<M: IncrementalClassifier>(
    model: &mut M,
    dataset: &StreamDataset,
    sample_every: usize,
) -> Result<PrequentialResult, HarnessError> {
    if !matches!(dataset.task, Task::Classification { .. }) {
        return Err(HarnessError::NotApplicable {
            algorithm: "item-level prequential accuracy".into(),
            task: format!("{:?}", dataset.task),
        });
    }
    let feature_cols = dataset.feature_cols();
    let rows: Vec<Vec<f64>> = (0..dataset.n_rows())
        .map(|r| {
            feature_cols
                .iter()
                .map(|&c| {
                    let v = dataset.table.column(c).numeric_at(r);
                    if v.is_finite() {
                        v
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let xs = Matrix::from_rows(&rows);
    let ys = dataset.targets();
    try_prequential_items(model, &xs, &ys, sample_every)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_tree::{ArfConfig, HoeffdingConfig};

    fn stream(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 50) as f64, ((i * 3) % 7) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| f64::from(r[0] >= 25.0)).collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn accuracy_improves_as_the_tree_learns() {
        let (xs, ys) = stream(6000);
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        let result = prequential_items(&mut tree, &xs, &ys, 1000);
        assert_eq!(result.items, 6000);
        assert_eq!(result.accuracy_curve.len(), 6);
        let first = result.accuracy_curve[0];
        let last = *result.accuracy_curve.last().unwrap();
        assert!(last > first, "no learning: {first} -> {last}");
        // Cumulative prequential accuracy includes the early untrained
        // phase; the tail of the curve shows the converged model.
        assert!(result.accuracy > 0.7, "final accuracy {}", result.accuracy);
        assert!(last > 0.74, "converged accuracy {last}");
    }

    #[test]
    fn arf_reaches_high_prequential_accuracy() {
        let (xs, ys) = stream(4000);
        let mut arf = AdaptiveRandomForest::new(2, 2, ArfConfig::default());
        let result = prequential_items(&mut arf, &xs, &ys, 500);
        assert!(result.accuracy > 0.8, "accuracy {}", result.accuracy);
    }

    #[test]
    fn dataset_wrapper_runs_on_registry_stream() {
        // Scale 0.05 keeps the stream long enough (~2.3k rows against a
        // 200-row window) for cumulative prequential accuracy to clear
        // the beats-chance bar across generator seeds; at 0.02 the
        // stream is shorter than five windows and the margin is luck.
        let entries = oeb_synth::registry_scaled(0.05);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Electricity Prices")
            .unwrap();
        let d = oeb_synth::generate(&entry.spec, 0);
        let mut tree = HoeffdingTree::new(d.n_features(), 2, HoeffdingConfig::default());
        let result = prequential_dataset(&mut tree, &d, 200);
        assert_eq!(result.items, d.n_rows());
        assert!(result.accuracy > 0.5);
    }

    #[test]
    #[should_panic(expected = "classification metric")]
    fn regression_dataset_panics() {
        let entries = oeb_synth::registry_scaled(0.02);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Power Consumption of Tetouan City")
            .unwrap();
        let d = oeb_synth::generate(&entry.spec, 0);
        let mut tree = HoeffdingTree::new(d.n_features(), 2, HoeffdingConfig::default());
        let _ = prequential_dataset(&mut tree, &d, 100);
    }

    #[test]
    fn mismatched_lengths_are_a_typed_error() {
        let (xs, _) = stream(10);
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        let err = try_prequential_items(&mut tree, &xs, &[0.0; 3], 5).unwrap_err();
        assert!(matches!(err, HarnessError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn regression_dataset_is_a_typed_error() {
        let entries = oeb_synth::registry_scaled(0.02);
        let entry = entries
            .iter()
            .find(|e| e.spec.name == "Power Consumption of Tetouan City")
            .unwrap();
        let d = oeb_synth::generate(&entry.spec, 0);
        let mut tree = HoeffdingTree::new(d.n_features(), 2, HoeffdingConfig::default());
        let err = try_prequential_dataset(&mut tree, &d, 100).unwrap_err();
        assert!(matches!(err, HarnessError::NotApplicable { .. }), "{err}");
    }

    #[test]
    fn item_budget_stops_at_the_exact_item() {
        let (xs, ys) = stream(100);
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        let budget = CellBudget {
            max_items: Some(37),
            ..CellBudget::unlimited()
        };
        let err = try_prequential_items_budgeted(&mut tree, &xs, &ys, 10, &budget).unwrap_err();
        assert!(
            matches!(
                err,
                HarnessError::CellTimedOut {
                    items: 37,
                    wall: false,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn cancelled_flag_stops_an_item_run() {
        let (xs, ys) = stream(100);
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        let flag = crate::executor::CancelFlag::armed();
        flag.cancel();
        let budget = CellBudget {
            cancel: flag,
            ..CellBudget::unlimited()
        };
        let err = try_prequential_items_budgeted(&mut tree, &xs, &ys, 10, &budget).unwrap_err();
        assert!(matches!(err, HarnessError::CellTimedOut { wall: true, .. }));
    }

    #[test]
    fn empty_stream_is_harmless() {
        let xs = Matrix::zeros(0, 2);
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingConfig::default());
        let result = prequential_items(&mut tree, &xs, &[], 10);
        assert_eq!(result.items, 0);
        assert_eq!(result.accuracy, 0.0);
    }
}
