//! Extensions beyond the paper's ten benchmarked algorithms.
//!
//! §2.2 of the paper suggests — without evaluating — that distribution
//! drifts could be handled by "applying drift detectors and re-training
//! the model after drift alerts". [`DriftResetLearner`] implements that
//! suggestion as a wrapper around any [`StreamLearner`]: a concept-drift
//! detector monitors the wrapped model's prequential error stream, and a
//! confirmed drift discards the model so the next window trains a fresh
//! one. The `repro` harness does not include it in the paper tables; it
//! is available through the library API and compared in this module's
//! tests.

use crate::learners::{Algorithm, LearnerConfig, StreamLearner};
use oeb_drift::{Adwin, ConceptDriftDetector};
use oeb_linalg::Matrix;
use oeb_tabular::Task;

/// A drift-aware wrapper: monitors its own prequential error with ADWIN
/// and rebuilds the wrapped learner when drift is confirmed.
pub struct DriftResetLearner {
    inner: Box<dyn StreamLearner>,
    algorithm: Algorithm,
    task: Task,
    input_dim: usize,
    cfg: LearnerConfig,
    detector: Adwin,
    /// Number of resets triggered so far.
    pub n_resets: usize,
    /// True once at least one window has been trained (fresh models are
    /// not monitored — their errors say nothing about drift).
    warmed_up: bool,
}

impl DriftResetLearner {
    /// Wraps `algorithm`; returns `None` when the algorithm does not
    /// apply to the task (ARF on regression).
    pub fn new(
        algorithm: Algorithm,
        task: Task,
        input_dim: usize,
        cfg: LearnerConfig,
    ) -> Option<DriftResetLearner> {
        let inner = algorithm.make(task, input_dim, &cfg)?;
        Some(DriftResetLearner {
            inner,
            algorithm,
            task,
            input_dim,
            cfg,
            detector: Adwin::new(0.002),
            n_resets: 0,
            warmed_up: false,
        })
    }

    /// Bounded per-item error signal for the detector: 0/1
    /// misclassification, or a clipped squared error for regression.
    fn error_signal(&self, x: &[f64], y: f64) -> f64 {
        let pred = self.inner.predict(x);
        match self.task {
            Task::Classification { .. } => f64::from(pred != y),
            Task::Regression => {
                let e = (pred - y).powi(2);
                if e.is_finite() {
                    (e / (1.0 + e)).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            }
        }
    }
}

impl StreamLearner for DriftResetLearner {
    fn name(&self) -> &'static str {
        "DriftReset"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.inner.predict(x)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        // Monitor the pre-training (prequential) errors of this window,
        // mirroring how the harness tests before training.
        if self.warmed_up {
            let mut drifted = false;
            let pre_mean = self.detector.mean();
            for r in 0..xs.rows() {
                let e = self.error_signal(xs.row(r), ys[r]);
                if self.detector.update(e).is_drift() && self.detector.mean() > pre_mean {
                    drifted = true;
                }
            }
            if drifted {
                self.inner = self
                    .algorithm
                    .make(self.task, self.input_dim, &self.cfg)
                    .expect("algorithm applied before");
                self.detector.reset();
                self.n_resets += 1;
            }
        }
        self.inner.train_window(xs, ys);
        self.warmed_up = true;
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + 512
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_stream, HarnessConfig};
    use oeb_synth::{Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
    use oeb_tabular::Domain;

    fn abrupt_spec() -> StreamSpec {
        StreamSpec {
            name: "abrupt-ext".into(),
            domain: Domain::Others,
            n_rows: 3000,
            n_numeric: 4,
            categorical: vec![],
            task: TaskSpec::Classification {
                n_classes: 2,
                mechanism: LabelMechanism::XToY,
                balance: Balance::Balanced,
                label_noise: 0.02,
            },
            drift_pattern: DriftPattern::Abrupt {
                breaks: [0.5, 0.0, 0.0],
                n_breaks: 1,
            },
            drift_level: Level::High,
            anomaly_level: Level::Low,
            anomaly_events: vec![],
            missing_level: Level::Low,
            availability: vec![],
            seasonal_cycles: 0.0,
            default_window: 150,
            seed: 31,
        }
    }

    #[test]
    fn resets_fire_on_a_label_flip() {
        // A guaranteed concept drift: the label function inverts halfway
        // through the stream, so any model trained pre-flip is ~90% wrong
        // afterwards.
        let mut spec = abrupt_spec();
        spec.drift_pattern = DriftPattern::Stationary;
        let d = oeb_synth::generate(&spec, 0);
        let windows = d.windows();
        let flip_from = windows.len() / 2;
        let mut learner =
            DriftResetLearner::new(Algorithm::NaiveDt, d.task, 4, LearnerConfig::default())
                .expect("classification");
        for (k, range) in windows.iter().enumerate() {
            let rows: Vec<Vec<f64>> = range
                .clone()
                .map(|r| {
                    d.table.numeric_row(r)[..4]
                        .iter()
                        .map(|&v| if v.is_finite() { v } else { 0.0 })
                        .collect()
                })
                .collect();
            let mut ys: Vec<f64> = range.clone().map(|r| d.target_at(r)).collect();
            if k >= flip_from {
                for y in &mut ys {
                    *y = 1.0 - *y;
                }
            }
            learner.train_window(&Matrix::from_rows(&rows), &ys);
        }
        assert!(learner.n_resets >= 1, "no resets on a hard label flip");
    }

    #[test]
    fn regression_wrapping_works() {
        let mut spec = abrupt_spec();
        spec.task = TaskSpec::Regression { noise: 0.1 };
        let d = oeb_synth::generate(&spec, 0);
        let learner =
            DriftResetLearner::new(Algorithm::NaiveNn, d.task, 4, LearnerConfig::default());
        assert!(learner.is_some());
        // ARF still refuses regression through the wrapper.
        assert!(
            DriftResetLearner::new(Algorithm::Arf, d.task, 4, LearnerConfig::default()).is_none()
        );
    }

    #[test]
    fn wrapped_learner_tracks_baseline_on_stationary_stream() {
        let mut spec = abrupt_spec();
        spec.drift_pattern = DriftPattern::Stationary;
        spec.drift_level = Level::Low;
        let d = oeb_synth::generate(&spec, 0);
        // On a stationary stream the wrapper should behave like the
        // wrapped learner (no spurious resets destroying the model).
        let baseline = run_stream(&d, Algorithm::NaiveDt, &HarnessConfig::default()).unwrap();
        let mut learner =
            DriftResetLearner::new(Algorithm::NaiveDt, d.task, 4, LearnerConfig::default())
                .unwrap();
        for range in d.windows() {
            let rows: Vec<Vec<f64>> = range
                .clone()
                .map(|r| {
                    d.table.numeric_row(r)[..4]
                        .iter()
                        .map(|&v| if v.is_finite() { v } else { 0.0 })
                        .collect()
                })
                .collect();
            let ys: Vec<f64> = range.clone().map(|r| d.target_at(r)).collect();
            learner.train_window(&Matrix::from_rows(&rows), &ys);
        }
        assert!(
            learner.n_resets <= 2,
            "{} spurious resets",
            learner.n_resets
        );
        assert!(baseline.mean_loss.is_finite());
    }
}
