//! Plain-text table rendering and level assignment for the experiment
//! reports: every `repro` target prints its paper artifact as an aligned
//! ASCII table, and the Table 3/4/9 level labels (Low / Medium low /
//! Medium high / High) are assigned by quartile across the dataset
//! collection, mirroring how the paper buckets its per-dataset scores.

use oeb_synth::Level;

/// A simple aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..n {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + (2 * n).saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Loss magnitude beyond which a run counts as diverged (the paper
/// reports such runs as N/A; a z-scored loss of 1e9 carries no
/// information beyond "the model exploded").
pub const DIVERGED: f64 = 1e9;

/// Formats `mean ± std` with three decimals, or `N/A` for non-finite or
/// diverged means (the paper's convention for exploded runs).
pub fn fmt_mean_std(mean: f64, std: f64) -> String {
    if !mean.is_finite() || mean.abs() >= DIVERGED {
        return "N/A".into();
    }
    format!("{mean:.3}±{std:.3}")
}

/// Formats an optional `(mean, std)` summary.
pub fn fmt_summary(summary: Option<(f64, f64)>) -> String {
    match summary {
        Some((m, s)) => fmt_mean_std(m, s),
        None => "N/A".into(),
    }
}

/// Assigns Low / Medium low / Medium high / High labels by quartile of
/// `values` across the collection (the paper's per-dataset level labels).
pub fn assign_levels(values: &[f64]) -> Vec<Level> {
    if values.is_empty() {
        return Vec::new();
    }
    let q1 = oeb_linalg::quantile(values, 0.25);
    let q2 = oeb_linalg::quantile(values, 0.5);
    let q3 = oeb_linalg::quantile(values, 0.75);
    values
        .iter()
        .map(|&v| {
            if v <= q1 {
                Level::Low
            } else if v <= q2 {
                Level::MediumLow
            } else if v <= q3 {
                Level::MediumHigh
            } else {
                Level::High
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        // Columns align: "value"/"1"/"22" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn empty_table_renders_without_underflow() {
        let t = TextTable::new(Vec::<String>::new());
        let s = t.render();
        assert_eq!(s, "\n\n");
    }

    #[test]
    fn mean_std_formatting() {
        assert_eq!(fmt_mean_std(0.31415, 0.001), "0.314±0.001");
        assert_eq!(fmt_mean_std(f64::NAN, 0.0), "N/A");
        assert_eq!(fmt_summary(None), "N/A");
    }

    #[test]
    fn quartile_levels() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let levels = assign_levels(&values);
        assert_eq!(levels[0], Level::Low);
        assert_eq!(levels[30], Level::MediumLow);
        assert_eq!(levels[60], Level::MediumHigh);
        assert_eq!(levels[99], Level::High);
    }

    #[test]
    fn constant_values_are_all_low() {
        let levels = assign_levels(&[0.5; 10]);
        assert!(levels.iter().all(|&l| l == Level::Low));
    }
}
