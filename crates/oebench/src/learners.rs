//! The ten stream-learning algorithms the paper benchmarks (§4.5, Table
//! 4): Naive-NN, EWC, LwF, iCaRL, SEA-NN, Naive-DT, Naive-GBDT, SEA-DT,
//! SEA-GBDT and ARF, behind one [`StreamLearner`] trait consumed by the
//! prequential harness.
//!
//! Conventions follow the paper's §6.1 setups: NN learners share the
//! [32, 16, 8] MLP trained 10 epochs per window at batch 64 / lr 0.01;
//! EWC and LwF regularise against the most recent window's model only;
//! iCaRL keeps a 100-exemplar herding buffer and (for regression) treats
//! the stream as a single class; tree learners refit per window without
//! epochs; ARF is classification-only (N/A on regression).

use crate::sea::{BaseKind, SeaLearner};
use oeb_linalg::Matrix;
use oeb_nn::{train_window, Mlp, Objective, Regularizer, SgdConfig};
use oeb_tabular::Task;
use oeb_tree::{
    AdaptiveRandomForest, ArfConfig, DecisionTree, Gbdt, GbdtConfig, TreeConfig, TreeTask,
};

/// Hyper-parameters shared by the learner implementations (paper §6.1
/// defaults).
#[derive(Debug, Clone)]
pub struct LearnerConfig {
    /// MLP hidden sizes.
    pub hidden: Vec<usize>,
    /// Local epochs per window.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// iCaRL exemplar-buffer capacity.
    pub buffer_size: usize,
    /// SEA ensemble capacity / GBDT boosting rounds.
    pub ensemble_size: usize,
    /// EWC regularisation factor (paper tunes within {1e3, 1e4, 1e5}).
    pub ewc_lambda: f64,
    /// LwF regularisation factor (paper tunes within {0.01, 0.1, 1}).
    pub lwf_lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            hidden: vec![32, 16, 8],
            epochs: 10,
            batch_size: 64,
            lr: 0.01,
            buffer_size: 100,
            ensemble_size: 5,
            ewc_lambda: 1e3,
            lwf_lambda: 0.1,
            seed: 0,
        }
    }
}

/// A model that learns window-by-window in the prequential protocol.
pub trait StreamLearner {
    /// Algorithm name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Predicts for one (encoded, imputed, scaled) sample: a class index
    /// for classification or a value for regression.
    fn predict(&self, x: &[f64]) -> f64;

    /// Trains on one window of samples.
    fn train_window(&mut self, xs: &Matrix, ys: &[f64]);

    /// Approximate model state size in bytes (Table 6 accounting).
    fn memory_bytes(&self) -> usize;
}

fn objective(task: Task) -> Objective {
    match task {
        Task::Classification { .. } => Objective::CrossEntropy,
        Task::Regression => Objective::SquaredError,
    }
}

fn tree_task(task: Task) -> TreeTask {
    match task {
        Task::Classification { n_classes } => TreeTask::Classification { n_classes },
        Task::Regression => TreeTask::Regression,
    }
}

fn mlp_for(task: Task, input_dim: usize, cfg: &LearnerConfig) -> Mlp {
    Mlp::new(
        input_dim,
        &cfg.hidden,
        task.output_width(),
        objective(task),
        cfg.seed,
    )
}

fn sgd(cfg: &LearnerConfig) -> SgdConfig {
    SgdConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        seed: cfg.seed,
    }
}

fn nn_predict(mlp: &Mlp, task: Task, x: &[f64]) -> f64 {
    match task {
        Task::Classification { .. } => mlp.predict_class(x) as f64,
        Task::Regression => mlp.forward(x)[0],
    }
}

/// Plain SGD-per-window neural network.
pub struct NaiveNn {
    mlp: Mlp,
    task: Task,
    cfg: LearnerConfig,
}

impl NaiveNn {
    /// Creates the learner.
    pub fn new(task: Task, input_dim: usize, cfg: LearnerConfig) -> NaiveNn {
        NaiveNn {
            mlp: mlp_for(task, input_dim, &cfg),
            task,
            cfg,
        }
    }
}

impl StreamLearner for NaiveNn {
    fn name(&self) -> &'static str {
        "Naive-NN"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        nn_predict(&self.mlp, self.task, x)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        train_window(&mut self.mlp, xs, ys, &sgd(&self.cfg), &Regularizer::None);
    }

    fn memory_bytes(&self) -> usize {
        self.mlp.memory_bytes()
    }
}

/// EWC: quadratic penalty around the previous window's parameters,
/// weighted by that window's Fisher diagonal.
pub struct EwcNn {
    mlp: Mlp,
    task: Task,
    cfg: LearnerConfig,
    anchor: Option<(Vec<f64>, Vec<f64>)>,
}

impl EwcNn {
    /// Creates the learner.
    pub fn new(task: Task, input_dim: usize, cfg: LearnerConfig) -> EwcNn {
        EwcNn {
            mlp: mlp_for(task, input_dim, &cfg),
            task,
            cfg,
            anchor: None,
        }
    }
}

impl StreamLearner for EwcNn {
    fn name(&self) -> &'static str {
        "EWC"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        nn_predict(&self.mlp, self.task, x)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        let reg = match &self.anchor {
            Some((anchor, fisher)) => Regularizer::Ewc {
                anchor: anchor.clone(),
                fisher: fisher.clone(),
                lambda: self.cfg.ewc_lambda,
            },
            None => Regularizer::None,
        };
        train_window(&mut self.mlp, xs, ys, &sgd(&self.cfg), &reg);
        // Anchor to this window (the paper keeps only the most recent
        // window's model, §6.1). The Fisher diagonal is normalised to a
        // maximum of 1e-3: the paper observes the raw EWC penalty is tiny
        // (1e-11..1e-6), factors below 1e3 act like the naive method, and
        // explosions start beyond 1e5 — with SGD stability requiring
        // lr * lambda * F < 2, a 1e-3 Fisher ceiling reproduces exactly
        // that regime (lambda 1e3 -> marginal, 1e5 -> strong, beyond ->
        // divergent).
        let mut fisher = self.mlp.fisher_diagonal(xs, ys, 500);
        let max = fisher.iter().copied().fold(0.0f64, f64::max);
        if max > 0.0 {
            for f in &mut fisher {
                *f *= 1e-3 / max;
            }
        }
        self.anchor = Some((self.mlp.get_params(), fisher));
    }

    fn memory_bytes(&self) -> usize {
        // Model + stored anchor parameters + Fisher diagonal.
        self.mlp.memory_bytes() * if self.anchor.is_some() { 3 } else { 1 }
    }
}

/// LwF: distillation toward the previous window's model.
pub struct LwfNn {
    mlp: Mlp,
    task: Task,
    cfg: LearnerConfig,
    prev: Option<Mlp>,
}

impl LwfNn {
    /// Creates the learner.
    pub fn new(task: Task, input_dim: usize, cfg: LearnerConfig) -> LwfNn {
        LwfNn {
            mlp: mlp_for(task, input_dim, &cfg),
            task,
            cfg,
            prev: None,
        }
    }
}

impl StreamLearner for LwfNn {
    fn name(&self) -> &'static str {
        "LwF"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        nn_predict(&self.mlp, self.task, x)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        let reg = match &self.prev {
            Some(prev) => Regularizer::Lwf {
                prev: Box::new(prev.clone()),
                lambda: self.cfg.lwf_lambda,
            },
            None => Regularizer::None,
        };
        train_window(&mut self.mlp, xs, ys, &sgd(&self.cfg), &reg);
        self.prev = Some(self.mlp.clone());
    }

    fn memory_bytes(&self) -> usize {
        self.mlp.memory_bytes() * if self.prev.is_some() { 2 } else { 1 }
    }
}

/// iCaRL's exemplar-replay adaptation: train on the window plus the
/// herding buffer, then refresh the buffer.
pub struct IcarlNn {
    mlp: Mlp,
    task: Task,
    cfg: LearnerConfig,
    buffer: oeb_nn::ExemplarBuffer,
}

impl IcarlNn {
    /// Creates the learner.
    pub fn new(task: Task, input_dim: usize, cfg: LearnerConfig) -> IcarlNn {
        IcarlNn {
            mlp: mlp_for(task, input_dim, &cfg),
            task,
            buffer: oeb_nn::ExemplarBuffer::new(cfg.buffer_size),
            cfg,
        }
    }
}

impl StreamLearner for IcarlNn {
    fn name(&self) -> &'static str {
        "iCaRL"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        nn_predict(&self.mlp, self.task, x)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        // Window plus replayed exemplars, concatenated flat (the old
        // per-row Vec-of-Vec staging allocated one Vec per sample per
        // window before re-packing).
        let (train_x, train_y) = match self.buffer.as_training_data() {
            Some((bx, by)) => {
                let mut flat = Vec::with_capacity((xs.rows() + bx.rows()) * xs.cols());
                flat.extend_from_slice(xs.as_slice());
                flat.extend_from_slice(bx.as_slice());
                let mut targets = ys.to_vec();
                targets.extend(by);
                (
                    Matrix::from_vec(xs.rows() + bx.rows(), xs.cols(), flat),
                    targets,
                )
            }
            None => (xs.clone(), ys.to_vec()),
        };
        train_window(
            &mut self.mlp,
            &train_x,
            &train_y,
            &sgd(&self.cfg),
            &Regularizer::None,
        );
        self.buffer
            .update(&self.mlp, xs, ys, self.task.is_classification());
    }

    fn memory_bytes(&self) -> usize {
        self.mlp.memory_bytes() + self.buffer.memory_bytes()
    }
}

/// Per-window decision tree (trees are refit, not fine-tuned; the paper
/// notes tree methods need no epochs or batches).
pub struct NaiveDt {
    tree: Option<DecisionTree>,
    task: Task,
    seed: u64,
}

impl NaiveDt {
    /// Creates the learner.
    pub fn new(task: Task, cfg: &LearnerConfig) -> NaiveDt {
        NaiveDt {
            tree: None,
            task,
            seed: cfg.seed,
        }
    }
}

impl StreamLearner for NaiveDt {
    fn name(&self) -> &'static str {
        "Naive-DT"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.tree.as_ref().map(|t| t.predict(x)).unwrap_or(0.0)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        if xs.rows() == 0 {
            return;
        }
        self.tree = Some(DecisionTree::fit(
            xs,
            ys,
            tree_task(self.task),
            &TreeConfig {
                seed: self.seed,
                ..Default::default()
            },
        ));
    }

    fn memory_bytes(&self) -> usize {
        self.tree.as_ref().map(|t| t.memory_bytes()).unwrap_or(0)
    }
}

/// Per-window gradient-boosted ensemble.
pub struct NaiveGbdt {
    model: Option<Gbdt>,
    task: Task,
    n_rounds: usize,
    seed: u64,
}

impl NaiveGbdt {
    /// Creates the learner; `cfg.ensemble_size` sets the boosting rounds
    /// (the paper uses 5 trees).
    pub fn new(task: Task, cfg: &LearnerConfig) -> NaiveGbdt {
        NaiveGbdt {
            model: None,
            task,
            n_rounds: cfg.ensemble_size,
            seed: cfg.seed,
        }
    }
}

impl StreamLearner for NaiveGbdt {
    fn name(&self) -> &'static str {
        "Naive-GBDT"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.model.as_ref().map(|m| m.predict(x)).unwrap_or(0.0)
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        if xs.rows() == 0 {
            return;
        }
        self.model = Some(Gbdt::fit(
            xs,
            ys,
            tree_task(self.task),
            &GbdtConfig {
                n_rounds: self.n_rounds,
                tree: TreeConfig {
                    max_depth: 6,
                    seed: self.seed,
                    ..Default::default()
                },
                ..Default::default()
            },
        ));
    }

    fn memory_bytes(&self) -> usize {
        self.model.as_ref().map(|m| m.memory_bytes()).unwrap_or(0)
    }
}

/// ARF wrapper (classification only).
pub struct ArfLearner {
    forest: AdaptiveRandomForest,
}

impl ArfLearner {
    /// Creates the learner; returns `None` for regression tasks, matching
    /// the paper's N/A entries.
    pub fn new(task: Task, input_dim: usize, cfg: &LearnerConfig) -> Option<ArfLearner> {
        match task {
            Task::Classification { n_classes } => Some(ArfLearner {
                forest: AdaptiveRandomForest::new(
                    input_dim,
                    n_classes,
                    ArfConfig {
                        n_trees: cfg.ensemble_size,
                        seed: cfg.seed.wrapping_add(0x617266),
                        ..Default::default()
                    },
                ),
            }),
            Task::Regression => None,
        }
    }
}

impl StreamLearner for ArfLearner {
    fn name(&self) -> &'static str {
        "ARF"
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.forest.predict(x) as f64
    }

    fn train_window(&mut self, xs: &Matrix, ys: &[f64]) {
        crate::arf_train::arf_train_window(&mut self.forest, xs, ys, None);
    }

    fn memory_bytes(&self) -> usize {
        self.forest.memory_bytes()
    }
}

/// The algorithm roster of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    NaiveNn,
    Ewc,
    Lwf,
    Icarl,
    SeaNn,
    NaiveDt,
    NaiveGbdt,
    SeaDt,
    SeaGbdt,
    Arf,
}

impl Algorithm {
    /// All ten algorithms in the paper's column order.
    pub fn all() -> [Algorithm; 10] {
        [
            Algorithm::NaiveNn,
            Algorithm::Ewc,
            Algorithm::Lwf,
            Algorithm::Icarl,
            Algorithm::SeaNn,
            Algorithm::NaiveDt,
            Algorithm::NaiveGbdt,
            Algorithm::SeaDt,
            Algorithm::SeaGbdt,
            Algorithm::Arf,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::NaiveNn => "Naive-NN",
            Algorithm::Ewc => "EWC",
            Algorithm::Lwf => "LwF",
            Algorithm::Icarl => "iCaRL",
            Algorithm::SeaNn => "SEA-NN",
            Algorithm::NaiveDt => "Naive-DT",
            Algorithm::NaiveGbdt => "Naive-GBDT",
            Algorithm::SeaDt => "SEA-DT",
            Algorithm::SeaGbdt => "SEA-GBDT",
            Algorithm::Arf => "ARF",
        }
    }

    /// True for the NN-family algorithms.
    pub fn is_nn_based(&self) -> bool {
        matches!(
            self,
            Algorithm::NaiveNn
                | Algorithm::Ewc
                | Algorithm::Lwf
                | Algorithm::Icarl
                | Algorithm::SeaNn
        )
    }

    /// Instantiates the learner; `None` when the algorithm does not apply
    /// to the task (ARF on regression).
    pub fn make(
        &self,
        task: Task,
        input_dim: usize,
        cfg: &LearnerConfig,
    ) -> Option<Box<dyn StreamLearner>> {
        let cfg = cfg.clone();
        Some(match self {
            Algorithm::NaiveNn => Box::new(NaiveNn::new(task, input_dim, cfg)),
            Algorithm::Ewc => Box::new(EwcNn::new(task, input_dim, cfg)),
            Algorithm::Lwf => Box::new(LwfNn::new(task, input_dim, cfg)),
            Algorithm::Icarl => Box::new(IcarlNn::new(task, input_dim, cfg)),
            Algorithm::SeaNn => Box::new(SeaLearner::new(BaseKind::Nn, task, input_dim, cfg)),
            Algorithm::NaiveDt => Box::new(NaiveDt::new(task, &cfg)),
            Algorithm::NaiveGbdt => Box::new(NaiveGbdt::new(task, &cfg)),
            Algorithm::SeaDt => Box::new(SeaLearner::new(BaseKind::Dt, task, input_dim, cfg)),
            Algorithm::SeaGbdt => Box::new(SeaLearner::new(BaseKind::Gbdt, task, input_dim, cfg)),
            Algorithm::Arf => {
                return ArfLearner::new(task, input_dim, &cfg)
                    .map(|l| Box::new(l) as Box<dyn StreamLearner>)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_clf() -> (Matrix, Vec<f64>, Task) {
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![(i % 8) as f64, 1.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| f64::from(r[0] >= 4.0)).collect();
        (
            Matrix::from_rows(&rows),
            ys,
            Task::Classification { n_classes: 2 },
        )
    }

    fn toy_reg() -> (Matrix, Vec<f64>, Task) {
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![(i % 16) as f64 / 16.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
        (Matrix::from_rows(&rows), ys, Task::Regression)
    }

    #[test]
    fn every_algorithm_instantiates_for_classification() {
        let (xs, ys, task) = toy_clf();
        for alg in Algorithm::all() {
            let mut learner = alg
                .make(task, xs.cols(), &LearnerConfig::default())
                .unwrap_or_else(|| panic!("{} missing for classification", alg.name()));
            learner.train_window(&xs, &ys);
            let p = learner.predict(xs.row(0));
            assert!(p == 0.0 || p == 1.0, "{} predicted {p}", learner.name());
            assert!(learner.memory_bytes() > 0);
        }
    }

    #[test]
    fn arf_is_none_for_regression_others_work() {
        let (xs, ys, task) = toy_reg();
        for alg in Algorithm::all() {
            match alg.make(task, xs.cols(), &LearnerConfig::default()) {
                None => assert_eq!(alg, Algorithm::Arf),
                Some(mut learner) => {
                    learner.train_window(&xs, &ys);
                    assert!(learner.predict(xs.row(3)).is_finite());
                }
            }
        }
    }

    #[test]
    fn trained_learners_beat_chance_on_separable_data() {
        let (xs, ys, task) = toy_clf();
        for alg in [Algorithm::NaiveNn, Algorithm::NaiveDt, Algorithm::NaiveGbdt] {
            let mut learner = alg
                .make(task, xs.cols(), &LearnerConfig::default())
                .unwrap();
            for _ in 0..3 {
                learner.train_window(&xs, &ys);
            }
            let correct = (0..xs.rows())
                .filter(|&r| learner.predict(xs.row(r)) == ys[r])
                .count();
            assert!(correct > 230, "{}: {correct}/256 correct", learner.name());
        }
    }

    #[test]
    fn ewc_memory_triples_after_anchoring() {
        let (xs, ys, task) = toy_clf();
        let mut ewc = EwcNn::new(task, xs.cols(), LearnerConfig::default());
        let before = ewc.memory_bytes();
        ewc.train_window(&xs, &ys);
        assert_eq!(ewc.memory_bytes(), before * 3);
    }

    #[test]
    fn lwf_memory_doubles_after_snapshot() {
        let (xs, ys, task) = toy_clf();
        let mut lwf = LwfNn::new(task, xs.cols(), LearnerConfig::default());
        let before = lwf.memory_bytes();
        lwf.train_window(&xs, &ys);
        assert_eq!(lwf.memory_bytes(), before * 2);
    }

    #[test]
    fn icarl_buffer_persists_across_windows() {
        let (xs, ys, task) = toy_clf();
        let mut icarl = IcarlNn::new(task, xs.cols(), LearnerConfig::default());
        icarl.train_window(&xs, &ys);
        assert!(!icarl.buffer.is_empty());
        assert!(icarl.memory_bytes() > icarl.mlp.memory_bytes());
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::all().len(), 10);
        assert!(Algorithm::SeaNn.is_nn_based());
        assert!(!Algorithm::SeaDt.is_nn_based());
        assert_eq!(Algorithm::NaiveGbdt.name(), "Naive-GBDT");
    }
}
