//! The headline result tables: Table 4 (test loss of all ten algorithms
//! on the five representative datasets), Table 5 (throughput), Table 6
//! (memory), Table 9 (the full 55-dataset sweep) and Figure 9 (the
//! recommendation decision tree).

use super::datasets::level_labels;
use super::{json_f64, ExpContext, ExperimentOutput};
use crate::harness::{run_seeds, HarnessConfig};
use crate::learners::Algorithm;
use crate::recommend::render_tree;
use crate::report::{fmt_summary, TextTable};
use crate::stats::OeStats;
use oeb_synth::DatasetEntry;
use parking_lot::Mutex;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

/// One `(dataset, algorithm)` cell of a result matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// `(mean, std)` of the mean loss over seeds; `None` = N/A.
    pub summary: Option<(f64, f64)>,
    /// Mean throughput (items/s) over seeds.
    pub throughput: f64,
    /// Mean peak memory (KB) over seeds.
    pub memory_kb: f64,
}

/// Runs a dataset x algorithm result matrix under the prequential
/// harness; results are memoized per (scale, seeds, dataset-set) within
/// the process so Table 4/5/6 share one sweep.
pub fn run_matrix(
    ctx: &ExpContext,
    entries: &[DatasetEntry],
    algorithms: &[Algorithm],
) -> Arc<Vec<MatrixCell>> {
    static CACHE: Mutex<Option<HashMap<String, Arc<Vec<MatrixCell>>>>> = Mutex::new(None);
    let key = format!(
        "{:.4}|{:?}|{}|{}",
        ctx.scale,
        ctx.seeds,
        entries
            .iter()
            .map(|e| e.spec.name.as_str())
            .collect::<Vec<_>>()
            .join(","),
        algorithms.len(),
    );
    if let Some(cached) = CACHE.lock().get_or_insert_with(HashMap::new).get(&key) {
        return cached.clone();
    }

    // Fan the (dataset x algorithm) grid across workers; collection is
    // in grid order, so the matrix is identical for every worker count.
    // Workers crossing the same dataset share its prepared stream
    // through the prepare cache instead of preprocessing it per learner.
    let threads = crate::executor::resolve_threads(None);
    let grid: Vec<(usize, usize)> = (0..entries.len())
        .flat_map(|e| (0..algorithms.len()).map(move |a| (e, a)))
        .collect();
    let cells = crate::executor::parallel_map(grid.len(), threads, |i| {
        let (e, a) = grid[i];
        let (entry, alg) = (&entries[e], algorithms[a]);
        let cfg = HarnessConfig::default();
        let (summary, results) = run_seeds(
            |seed| oeb_synth::generate_cached(&entry.spec, seed),
            alg,
            &cfg,
            &ctx.seeds,
        );
        let throughput = if results.is_empty() {
            0.0
        } else {
            results.iter().map(|r| r.throughput).sum::<f64>() / results.len() as f64
        };
        let memory_kb = if results.is_empty() {
            0.0
        } else {
            results.iter().map(|r| r.memory_bytes as f64).sum::<f64>()
                / results.len() as f64
                / 1024.0
        };
        MatrixCell {
            dataset: entry.spec.name.clone(),
            algorithm: alg,
            summary,
            throughput,
            memory_kb,
        }
    });
    let arc = Arc::new(cells);
    CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(key, arc.clone());
    arc
}

fn short_name(entry: &DatasetEntry) -> String {
    entry
        .selected
        .map(str::to_string)
        .unwrap_or_else(|| entry.spec.name.clone())
}

fn matrix_table(
    entries: &[DatasetEntry],
    algorithms: &[Algorithm],
    cells: &[MatrixCell],
    value_of: impl Fn(&MatrixCell) -> String,
) -> TextTable {
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name().to_string()));
    let mut t = TextTable::new(headers);
    for entry in entries {
        let mut row = vec![short_name(entry)];
        for &alg in algorithms {
            let cell = cells
                .iter()
                .find(|c| c.dataset == entry.spec.name && c.algorithm == alg)
                .expect("matrix covers all pairs");
            row.push(value_of(cell));
        }
        t.row(row);
    }
    t
}

fn matrix_json(cells: &[MatrixCell]) -> serde_json::Value {
    serde_json::Value::Array(
        cells
            .iter()
            .map(|c| {
                json!({
                    "dataset": c.dataset,
                    "algorithm": c.algorithm.name(),
                    "loss_mean": c.summary.map(|(m, _)| json_f64(m)),
                    "loss_std": c.summary.map(|(_, s)| json_f64(s)),
                    "throughput": json_f64(c.throughput),
                    "memory_kb": json_f64(c.memory_kb),
                })
            })
            .collect(),
    )
}

/// Table 4: test loss / error of the ten algorithms on the five
/// representative datasets (mean ± std over the context seeds).
pub fn table4(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let algorithms = Algorithm::all();
    let cells = run_matrix(ctx, &entries, &algorithms);
    let t = matrix_table(&entries, &algorithms, &cells, |c| fmt_summary(c.summary));
    ExperimentOutput {
        id: "table4",
        title: "Test loss / error of stream learning algorithms (5 selected datasets)",
        text: t.render(),
        json: json!({ "cells": matrix_json(&cells) }),
    }
}

/// Table 5: throughput (items/s) of the algorithms on the five selected
/// datasets.
pub fn table5(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let algorithms = Algorithm::all();
    let cells = run_matrix(ctx, &entries, &algorithms);
    let t = matrix_table(&entries, &algorithms, &cells, |c| {
        if c.throughput > 0.0 {
            format!("{:.0}", c.throughput)
        } else {
            "N/A".into()
        }
    });
    ExperimentOutput {
        id: "table5",
        title: "Throughput (items/s) of stream learning algorithms",
        text: t.render(),
        json: json!({ "cells": matrix_json(&cells) }),
    }
}

/// Table 6: peak model memory (KB) of the algorithms on the five
/// selected datasets.
pub fn table6(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let algorithms = Algorithm::all();
    let cells = run_matrix(ctx, &entries, &algorithms);
    let t = matrix_table(&entries, &algorithms, &cells, |c| {
        if c.memory_kb > 0.0 {
            format!("{:.1}", c.memory_kb)
        } else {
            "N/A".into()
        }
    });
    ExperimentOutput {
        id: "table6",
        title: "Memory consumption (KB) of stream learning algorithms",
        text: t.render(),
        json: json!({ "cells": matrix_json(&cells) }),
    }
}

/// Table 9: the appendix sweep over all 55 datasets and the nine
/// algorithm columns the paper reports there (ARF excluded).
pub fn table9(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.registry();
    let algorithms: Vec<Algorithm> = Algorithm::all()
        .into_iter()
        .filter(|a| *a != Algorithm::Arf)
        .collect();
    let cells = run_matrix(ctx, &entries, &algorithms);
    let t = matrix_table(&entries, &algorithms, &cells, |c| fmt_summary(c.summary));

    // Per-dataset winner counts, the evidence for "no silver bullet".
    // Every algorithm within 2% of the dataset's best loss counts as a
    // co-winner — declaring a single winner over a 0.296-vs-0.300 gap
    // would overstate how decisive the differences are.
    let mut wins: HashMap<&'static str, usize> = HashMap::new();
    for entry in &entries {
        let scored: Vec<(Algorithm, f64)> = algorithms
            .iter()
            .filter_map(|&a| {
                cells
                    .iter()
                    .find(|c| c.dataset == entry.spec.name && c.algorithm == a)
                    .and_then(|c| c.summary.map(|(m, _)| (a, m)))
            })
            .collect();
        let Some(best) = scored
            .iter()
            .map(|&(_, m)| m)
            .min_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
        else {
            continue;
        };
        for (alg, m) in scored {
            if m <= best * 1.02 + 1e-9 {
                *wins.entry(alg.name()).or_default() += 1;
            }
        }
    }
    let mut win_rows: Vec<(&str, usize)> = wins.iter().map(|(k, v)| (*k, *v)).collect();
    // Total sort key: `Reverse(count)` alone would leave co-winners with
    // equal counts in HashMap iteration order, which varies run to run.
    win_rows.sort_by_key(|&(name, n)| (std::cmp::Reverse(n), name));
    let mut wins_text =
        String::from("\nCo-winner counts (within 2% of each dataset's best; no silver bullet):\n");
    for (alg, n) in &win_rows {
        wins_text.push_str(&format!("  {alg}: {n}\n"));
    }

    ExperimentOutput {
        id: "table9",
        title: "Test loss / error on all 55 datasets",
        text: format!("{}{}", t.render(), wins_text),
        json: json!({
            "cells": matrix_json(&cells),
            "wins": win_rows.iter().map(|(a, n)| json!({"algorithm": a, "wins": n})).collect::<Vec<_>>(),
        }),
    }
}

/// Figure 9: the recommendation decision tree, plus the concrete
/// recommendation for each dataset's measured scenario.
pub fn fig9(ctx: &ExpContext, stats: &[OeStats]) -> ExperimentOutput {
    let registry = ctx.registry();
    let (drift, anomaly, missing) = level_labels(stats);
    let level_of = |label: &str| match label {
        "Low" => oeb_synth::Level::Low,
        "Medium low" => oeb_synth::Level::MediumLow,
        "Medium high" => oeb_synth::Level::MediumHigh,
        _ => oeb_synth::Level::High,
    };
    let mut t = TextTable::new(vec![
        "Dataset",
        "Task",
        "Drift",
        "Anomaly",
        "Missing",
        "Recommended",
    ]);
    let mut rows_json = Vec::new();
    for (i, e) in registry.iter().enumerate() {
        let scenario = crate::recommend::Scenario {
            classification: e.is_classification(),
            drift: level_of(drift[i]),
            anomaly: level_of(anomaly[i]),
            missing: level_of(missing[i]),
            resource_constrained: false,
        };
        let recs = crate::recommend::recommend(&scenario);
        let names: Vec<&str> = recs.iter().map(|a| a.name()).collect();
        t.row(vec![
            e.spec.name.clone(),
            if e.is_classification() { "clf" } else { "reg" }.to_string(),
            drift[i].to_string(),
            anomaly[i].to_string(),
            missing[i].to_string(),
            names.join(", "),
        ]);
        rows_json.push(json!({
            "dataset": e.spec.name,
            "drift": drift[i], "anomaly": anomaly[i], "missing": missing[i],
            "recommended": names,
        }));
    }
    ExperimentOutput {
        id: "fig9",
        title: "Recommended algorithms per open-environment scenario",
        text: format!("{}\n{}", render_tree(), t.render()),
        json: json!({ "recommendations": rows_json }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        ExpContext {
            scale: 0.02,
            seeds: vec![0],
        }
    }

    #[test]
    fn table4_has_50_cells_with_two_na() {
        let out = table4(&tiny_ctx());
        let cells = out.json["cells"].as_array().unwrap();
        assert_eq!(cells.len(), 50);
        // ARF on the two regression datasets (AIR, POWER) is N/A.
        let na = cells
            .iter()
            .filter(|c| c["algorithm"] == "ARF" && c["loss_mean"].is_null())
            .count();
        assert_eq!(na, 2);
    }

    #[test]
    fn run_matrix_is_memoized() {
        let ctx = tiny_ctx();
        let entries = ctx.selected_five();
        let a = run_matrix(&ctx, &entries, &Algorithm::all());
        let b = run_matrix(&ctx, &entries, &Algorithm::all());
        assert!(Arc::ptr_eq(&a, &b), "second call should hit the cache");
    }

    #[test]
    fn trees_dominate_nn_throughput() {
        let ctx = tiny_ctx();
        let entries = ctx.selected_five();
        let cells = run_matrix(&ctx, &entries, &Algorithm::all());
        let mean_tp = |alg: Algorithm| {
            let v: Vec<f64> = cells
                .iter()
                .filter(|c| c.algorithm == alg && c.throughput > 0.0)
                .map(|c| c.throughput)
                .collect();
            oeb_linalg::mean(&v)
        };
        // The paper's Table 5 ordering: DT >> NN. (The full DT >> ARF gap
        // also holds, but only at realistic scales — window sizes at this
        // test's 2% scale are too small for wall-clock comparisons, so
        // that ordering is verified by the `repro table5` run instead.)
        assert!(mean_tp(Algorithm::NaiveDt) > mean_tp(Algorithm::NaiveNn));
    }

    #[test]
    fn nn_memory_is_constant_and_trees_small() {
        let ctx = tiny_ctx();
        let entries = ctx.selected_five();
        let cells = run_matrix(&ctx, &entries, &Algorithm::all());
        let nn: Vec<f64> = cells
            .iter()
            .filter(|c| c.algorithm == Algorithm::NaiveNn)
            .map(|c| c.memory_kb)
            .collect();
        // NN model size varies only with input width, not dataset length.
        assert!(nn.iter().all(|&m| m > 1.0 && m < 200.0));
        let sea_nn = cells
            .iter()
            .find(|c| c.algorithm == Algorithm::SeaNn)
            .unwrap();
        let naive_nn = cells
            .iter()
            .find(|c| c.algorithm == Algorithm::NaiveNn && c.dataset == sea_nn.dataset)
            .unwrap();
        assert!(sea_nn.memory_kb > 2.0 * naive_nn.memory_kb);
    }
}
