//! Dataset-collection experiments: Table 2 (size/feature histograms),
//! Table 3 (the five selected representatives), Figure 2 (clustering
//! coordinates), Figure 3 (box-plot statistics), and Table 13 (the
//! drift-type audit of the case-study streams).

use super::{ExpContext, ExperimentOutput};
use crate::report::{assign_levels, TextTable};
use crate::select::select_representatives;
use crate::stats::OeStats;
use oeb_linalg::five_number;
use oeb_synth::DriftPattern;
use serde_json::json;

/// Table 2: histogram of the collected datasets by paper-reported
/// instance count and feature count.
pub fn table2(ctx: &ExpContext) -> ExperimentOutput {
    let registry = ctx.registry();
    let size_bucket = |n: usize| match n {
        0..=20_000 => 0,
        20_001..=50_000 => 1,
        50_001..=200_000 => 2,
        _ => 3,
    };
    let feat_bucket = |n: usize| match n {
        0..=10 => 0,
        11..=20 => 1,
        21..=50 => 2,
        _ => 3,
    };
    let mut sizes = [0usize; 4];
    let mut feats = [0usize; 4];
    for e in &registry {
        sizes[size_bucket(e.paper_rows)] += 1;
        feats[feat_bucket(e.paper_features)] += 1;
    }
    let mut t = TextTable::new(vec![
        "Size",
        "5,000-20,000",
        "20,001-50,000",
        "50,001-200,000",
        ">200,000",
    ]);
    t.row(vec![
        "#Datasets (OEBench-rs)".to_string(),
        sizes[0].to_string(),
        sizes[1].to_string(),
        sizes[2].to_string(),
        sizes[3].to_string(),
    ]);
    let mut f = TextTable::new(vec!["#Features", "5-10", "11-20", "21-50", ">50"]);
    f.row(vec![
        "#Datasets (OEBench-rs)".to_string(),
        feats[0].to_string(),
        feats[1].to_string(),
        feats[2].to_string(),
        feats[3].to_string(),
    ]);
    ExperimentOutput {
        id: "table2",
        title: "Histogram information of the collected datasets",
        text: format!("{}\n{}", t.render(), f.render()),
        json: json!({"size_histogram": sizes.to_vec(), "feature_histogram": feats.to_vec()}),
    }
}

/// The drift / anomaly / missing level labels of each dataset, assigned
/// by quartile across the collection.
pub fn level_labels(
    stats: &[OeStats],
) -> (Vec<&'static str>, Vec<&'static str>, Vec<&'static str>) {
    let drift: Vec<f64> = stats
        .iter()
        .map(|s| (s.drift_score() + s.concept_score()) / 2.0)
        .collect();
    let anomaly: Vec<f64> = stats.iter().map(OeStats::anomaly_score).collect();
    let missing: Vec<f64> = stats.iter().map(OeStats::missing_score).collect();
    (
        assign_levels(&drift).iter().map(|l| l.label()).collect(),
        assign_levels(&anomaly).iter().map(|l| l.label()).collect(),
        assign_levels(&missing).iter().map(|l| l.label()).collect(),
    )
}

/// Table 3: the five selected representative datasets with their
/// open-environment level labels.
pub fn table3(ctx: &ExpContext, stats: &[OeStats]) -> ExperimentOutput {
    let registry = ctx.registry();
    let (drift, anomaly, missing) = level_labels(stats);
    let mut t = TextTable::new(vec![
        "Dataset",
        "Instances (paper)",
        "Features",
        "Type",
        "Task",
        "Missing value ratio",
        "Drift ratio",
        "Anomaly ratio",
    ]);
    let mut rows_json = Vec::new();
    for (i, e) in registry.iter().enumerate() {
        if e.selected.is_none() {
            continue;
        }
        let task = if e.is_classification() {
            "Classification"
        } else {
            "Regression"
        };
        t.row(vec![
            e.spec.name.clone(),
            e.paper_rows.to_string(),
            e.paper_features.to_string(),
            e.spec.domain.name().to_string(),
            task.to_string(),
            missing[i].to_string(),
            drift[i].to_string(),
            anomaly[i].to_string(),
        ]);
        rows_json.push(json!({
            "name": e.spec.name,
            "short": e.selected,
            "missing": missing[i],
            "drift": drift[i],
            "anomaly": anomaly[i],
        }));
    }
    ExperimentOutput {
        id: "table3",
        title: "Five selected representative datasets",
        text: t.render(),
        json: json!({ "selected": rows_json }),
    }
}

/// Figure 2: 3-D PCA coordinates per open-environment dimension with the
/// K-Means cluster assignment and the selected representatives.
pub fn fig2(ctx: &ExpContext, stats: &[OeStats]) -> ExperimentOutput {
    let registry = ctx.registry();
    let sel = select_representatives(stats, 5, 42);
    let group_names = ["basic", "missing", "data-drift", "concept-drift", "outlier"];
    let mut t = TextTable::new(vec![
        "Dataset",
        "Cluster",
        "Representative",
        "Task",
        "missing-xyz",
        "drift-xyz",
        "outlier-xyz",
    ]);
    let mut rows_json = Vec::new();
    for (i, s) in stats.iter().enumerate() {
        let coords = |g: usize| -> String {
            let row = sel.group_coords[g].row(i);
            format!("({:.2}, {:.2}, {:.2})", row[0], row[1], row[2])
        };
        let rep = if sel.representatives.contains(&i) {
            "*"
        } else {
            ""
        };
        t.row(vec![
            s.name.clone(),
            sel.assignments[i].to_string(),
            rep.to_string(),
            if s.classification { "clf" } else { "reg" }.to_string(),
            coords(1),
            coords(2),
            coords(4),
        ]);
        rows_json.push(json!({
            "name": s.name,
            "cluster": sel.assignments[i],
            "representative": sel.representatives.contains(&i),
            "coords": group_names
                .iter()
                .enumerate()
                .map(|(g, n)| (n.to_string(), sel.group_coords[g].row(i).to_vec()))
                .collect::<std::collections::BTreeMap<_, _>>(),
        }));
    }
    let reps: Vec<String> = sel
        .representatives
        .iter()
        .map(|&i| registry[i].spec.name.clone())
        .collect();
    ExperimentOutput {
        id: "fig2",
        title: "Clustering of datasets in the open-environment feature space",
        text: format!("{}\nRepresentatives: {}\n", t.render(), reps.join(", ")),
        json: json!({"datasets": rows_json, "representatives": reps}),
    }
}

/// Figure 3: box-plot statistics (five-number summaries) of the
/// open-environment scores, full collection vs the selected five.
pub fn fig3(ctx: &ExpContext, stats: &[OeStats]) -> ExperimentOutput {
    let registry = ctx.registry();
    let selected_idx: Vec<usize> = registry
        .iter()
        .enumerate()
        .filter(|(_, e)| e.selected.is_some())
        .map(|(i, _)| i)
        .collect();

    let score = |name: &str, s: &OeStats| -> f64 {
        match name {
            "missing" => s.missing_score(),
            "drift" => s.drift_score(),
            "concept" => s.concept_score(),
            _ => s.anomaly_score(),
        }
    };
    let mut t = TextTable::new(vec![
        "Statistic",
        "Group",
        "min",
        "q1",
        "median",
        "q3",
        "max",
    ]);
    let mut json_rows = Vec::new();
    for stat_name in ["missing", "drift", "concept", "anomaly"] {
        let all: Vec<f64> = stats.iter().map(|s| score(stat_name, s)).collect();
        let sel: Vec<f64> = selected_idx
            .iter()
            .map(|&i| score(stat_name, &stats[i]))
            .collect();
        for (group, values) in [("explored", &all), ("selected", &sel)] {
            let f = five_number(values);
            t.row(vec![
                stat_name.to_string(),
                group.to_string(),
                format!("{:.3}", f.min),
                format!("{:.3}", f.q1),
                format!("{:.3}", f.median),
                format!("{:.3}", f.q3),
                format!("{:.3}", f.max),
            ]);
            json_rows.push(json!({
                "statistic": stat_name, "group": group,
                "min": f.min, "q1": f.q1, "median": f.median, "q3": f.q3, "max": f.max,
            }));
        }
    }
    ExperimentOutput {
        id: "fig3",
        title: "Distribution of open-environment statistics (explored vs selected)",
        text: t.render(),
        json: json!({ "boxes": json_rows }),
    }
}

/// Table 13: drift-type audit of the case-study datasets — the declared
/// generator pattern vs what the detectors measure.
pub fn table13(ctx: &ExpContext) -> ExperimentOutput {
    let case_names = [
        "Italian City Air Quality",
        "Beijing Multi-Site Air-Quality Tiantan",
        "Beijing PM2.5",
        "5 cities PM2.5 (Beijing)",
        "Power Consumption of Tetouan City",
        "Household Electric Consumption",
        "BitcoinHeistRansomwareAddress",
        "BLE RSSI Indoor Localization",
        "Electricity Prices",
        "Airlines",
    ];
    let registry = ctx.registry();
    let cfg = crate::stats::StatsConfig::default();
    let mut t = TextTable::new(vec![
        "Dataset",
        "Problem type",
        "Pattern (generator)",
        "Drift frequency (measured)",
        "Concept drift (measured)",
    ]);
    let mut json_rows = Vec::new();
    for name in case_names {
        let entry = registry
            .iter()
            .find(|e| e.spec.name == name)
            .expect("case-study dataset in registry");
        let stats = crate::stats::extract_stats(&ctx.dataset(entry, 0), &cfg);
        let pattern = match entry.spec.drift_pattern {
            DriftPattern::Stationary => "stationary",
            DriftPattern::Gradual => "gradual",
            DriftPattern::Abrupt { .. } => "abrupt",
            DriftPattern::Incremental => "incremental",
            DriftPattern::Recurrent { .. } => "gradual, recurrent",
            DriftPattern::IncrementalReoccurring { .. } => "incremental, reoccurring",
        };
        let mechanism = if matches!(
            entry.spec.task,
            oeb_synth::TaskSpec::Classification {
                mechanism: oeb_synth::LabelMechanism::YToX,
                ..
            }
        ) {
            "Y -> X"
        } else {
            "X -> Y"
        };
        let freq = if stats.drift_score() > 0.25 {
            "HIGH"
        } else {
            "LOW"
        };
        t.row(vec![
            name.to_string(),
            mechanism.to_string(),
            pattern.to_string(),
            format!("{} ({:.2})", freq, stats.drift_score()),
            format!("{:.2}", stats.concept_score()),
        ]);
        json_rows.push(json!({
            "name": name, "mechanism": mechanism, "pattern": pattern,
            "drift_score": stats.drift_score(), "concept_score": stats.concept_score(),
        }));
    }
    ExperimentOutput {
        id: "table13",
        title: "Summary of drift types on the case-study datasets",
        text: t.render(),
        json: json!({ "cases": json_rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        ExpContext {
            scale: 0.02,
            seeds: vec![0],
        }
    }

    #[test]
    fn table2_matches_paper_histogram() {
        let out = table2(&tiny_ctx());
        assert_eq!(
            out.json["size_histogram"],
            serde_json::json!([13, 17, 13, 12])
        );
        assert!(out.text.contains("OEBench-rs"));
    }

    #[test]
    fn table3_lists_exactly_five() {
        let ctx = tiny_ctx();
        let stats = ctx.stats_all();
        let out = table3(&ctx, &stats);
        assert_eq!(out.json["selected"].as_array().unwrap().len(), 5);
        assert!(out.text.contains("Room Occupancy Estimation"));
    }

    #[test]
    fn fig2_selects_five_representatives() {
        let ctx = tiny_ctx();
        let stats = ctx.stats_all();
        let out = fig2(&ctx, &stats);
        assert_eq!(out.json["representatives"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn fig3_produces_eight_boxes() {
        let ctx = tiny_ctx();
        let stats = ctx.stats_all();
        let out = fig3(&ctx, &stats);
        assert_eq!(out.json["boxes"].as_array().unwrap().len(), 8);
    }
}
