//! Hyper-parameter and ablation sweeps: Figures 10–19 and Table 10 of
//! the paper.

use super::{json_f64, json_series, ExpContext, ExperimentOutput};
use crate::harness::{run_seeds, run_stream, HarnessConfig, ImputerChoice, OutlierRemoval};
use crate::learners::Algorithm;
use crate::report::{fmt_summary, TextTable};
use oeb_synth::DatasetEntry;
use serde_json::json;

/// One sweep cell.
struct SweepCell {
    dataset: String,
    algorithm: Algorithm,
    variant: String,
    summary: Option<(f64, f64)>,
    train_seconds: f64,
}

/// Runs `algorithms x variants` over `entries`, averaging over the
/// context seeds.
fn sweep(
    ctx: &ExpContext,
    entries: &[DatasetEntry],
    algorithms: &[Algorithm],
    variants: &[(String, HarnessConfig)],
) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for entry in entries {
        for &alg in algorithms {
            for (variant, cfg) in variants {
                let (summary, results) = run_seeds(
                    |seed| oeb_synth::generate_cached(&entry.spec, seed),
                    alg,
                    cfg,
                    &ctx.seeds,
                );
                let train_seconds = if results.is_empty() {
                    0.0
                } else {
                    results.iter().map(|r| r.train_seconds).sum::<f64>() / results.len() as f64
                };
                cells.push(SweepCell {
                    dataset: entry
                        .selected
                        .map(str::to_string)
                        .unwrap_or_else(|| entry.spec.name.clone()),
                    algorithm: alg,
                    variant: variant.clone(),
                    summary,
                    train_seconds,
                });
            }
        }
    }
    cells
}

/// Renders a sweep as `dataset x algorithm` rows with one column per
/// variant.
fn sweep_output(
    id: &'static str,
    title: &'static str,
    variants: &[String],
    cells: &[SweepCell],
) -> ExperimentOutput {
    let mut headers = vec!["Dataset".to_string(), "Algorithm".to_string()];
    headers.extend(variants.iter().cloned());
    let mut t = TextTable::new(headers);
    let mut seen: Vec<(String, Algorithm)> = Vec::new();
    for c in cells {
        let key = (c.dataset.clone(), c.algorithm);
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    for (dataset, alg) in &seen {
        let mut row = vec![dataset.clone(), alg.name().to_string()];
        for v in variants {
            let cell = cells
                .iter()
                .find(|c| &c.dataset == dataset && c.algorithm == *alg && &c.variant == v)
                .expect("sweep covers all variants");
            row.push(fmt_summary(cell.summary));
        }
        t.row(row);
    }
    let json_cells: Vec<serde_json::Value> = cells
        .iter()
        .map(|c| {
            json!({
                "dataset": c.dataset,
                "algorithm": c.algorithm.name(),
                "variant": c.variant,
                "loss_mean": c.summary.map(|(m, _)| json_f64(m)),
                "loss_std": c.summary.map(|(_, s)| json_f64(s)),
                "train_seconds": json_f64(c.train_seconds),
            })
        })
        .collect();
    ExperimentOutput {
        id,
        title,
        text: t.render(),
        json: json!({ "cells": json_cells }),
    }
}

const NN_ALGS: [Algorithm; 5] = [
    Algorithm::NaiveNn,
    Algorithm::Ewc,
    Algorithm::Lwf,
    Algorithm::Icarl,
    Algorithm::SeaNn,
];

/// Figure 10: number of local epochs {1, 5, 10, 20} for the NN family.
pub fn fig10(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let variants: Vec<(String, HarnessConfig)> = [1usize, 5, 10, 20]
        .iter()
        .map(|&e| {
            let mut cfg = HarnessConfig::default();
            cfg.learner.epochs = e;
            (format!("epochs={e}"), cfg)
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let cells = sweep(ctx, &entries, &NN_ALGS, &variants);
    sweep_output(
        "fig10",
        "Test error / loss vs local epochs per window",
        &names,
        &cells,
    )
}

/// Figure 11: window-size factor {0.25, 0.5, 1, 2, 4} for NN and tree
/// families.
pub fn fig11(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let algs = [
        Algorithm::NaiveNn,
        Algorithm::SeaNn,
        Algorithm::NaiveDt,
        Algorithm::NaiveGbdt,
        Algorithm::SeaDt,
    ];
    let variants: Vec<(String, HarnessConfig)> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&f| {
            (
                format!("window x{f}"),
                HarnessConfig {
                    window_factor: f,
                    ..Default::default()
                },
            )
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let cells = sweep(ctx, &entries, &algs, &variants);
    sweep_output("fig11", "Test error / loss vs window size", &names, &cells)
}

/// Figure 12: batch size {16, 32, 64, 128} for the NN family.
pub fn fig12(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let variants: Vec<(String, HarnessConfig)> = [16usize, 32, 64, 128]
        .iter()
        .map(|&b| {
            let mut cfg = HarnessConfig::default();
            cfg.learner.batch_size = b;
            (format!("batch={b}"), cfg)
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let cells = sweep(ctx, &entries, &NN_ALGS, &variants);
    sweep_output("fig12", "Test error / loss vs batch size", &names, &cells)
}

/// Figure 13: MLP depth — 3, 5 and 7 hidden layers with the paper's
/// layer widths.
pub fn fig13(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let depths: [(&str, Vec<usize>); 3] = [
        ("3 layers", vec![32, 16, 8]),
        ("5 layers", vec![32, 32, 16, 16, 8]),
        ("7 layers", vec![32, 32, 32, 16, 16, 16, 8]),
    ];
    let variants: Vec<(String, HarnessConfig)> = depths
        .iter()
        .map(|(name, hidden)| {
            let mut cfg = HarnessConfig::default();
            cfg.learner.hidden = hidden.clone();
            (name.to_string(), cfg)
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let algs = [Algorithm::NaiveNn, Algorithm::Icarl, Algorithm::SeaNn];
    let cells = sweep(ctx, &entries, &algs, &variants);
    sweep_output(
        "fig13",
        "Test error / loss vs number of hidden layers",
        &names,
        &cells,
    )
}

/// Figure 14: imputation methods on the AIR dataset — KNN with
/// k ∈ {2, 5, 10, 20}, regression, mean, zero.
pub fn fig14(ctx: &ExpContext) -> ExperimentOutput {
    let air: Vec<DatasetEntry> = ctx
        .selected_five()
        .into_iter()
        .filter(|e| e.selected == Some("AIR"))
        .collect();
    let imputers = [
        ImputerChoice::Knn(2),
        ImputerChoice::Knn(5),
        ImputerChoice::Knn(10),
        ImputerChoice::Knn(20),
        ImputerChoice::Regression,
        ImputerChoice::Mean,
        ImputerChoice::Zero,
    ];
    let variants: Vec<(String, HarnessConfig)> = imputers
        .iter()
        .map(|&imp| {
            (
                imp.name(),
                HarnessConfig {
                    imputer: imp,
                    ..Default::default()
                },
            )
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let algs = [Algorithm::NaiveNn, Algorithm::NaiveDt, Algorithm::SeaDt];
    let cells = sweep(ctx, &air, &algs, &variants);
    sweep_output(
        "fig14",
        "Test loss vs missing-value filling method (AIR)",
        &names,
        &cells,
    )
}

/// Figure 15: loss curves with and without drift (shuffled baseline) on
/// ROOM and AIR.
pub fn fig15(ctx: &ExpContext) -> ExperimentOutput {
    curve_experiment(
        ctx,
        "fig15",
        "Loss curves: drift vs shuffled (no drift)",
        &[("drift", false), ("no drift (shuffled)", true)],
        |cfg, &(_, shuffled)| cfg.shuffle = shuffled,
    )
}

/// Figure 16: loss curves with outlier removal (none / ECOD / IForest)
/// on ROOM and AIR.
pub fn fig16(ctx: &ExpContext) -> ExperimentOutput {
    curve_experiment(
        ctx,
        "fig16",
        "Loss curves with outlier removal before test/train",
        &[
            ("no removal", OutlierRemoval::None),
            ("ECOD", OutlierRemoval::Ecod),
            ("IForest", OutlierRemoval::IForest),
        ],
        |cfg, &(_, removal)| cfg.outlier_removal = removal,
    )
}

/// Shared driver for the ROOM/AIR per-window curve figures (15, 16): one
/// curve per variant per dataset, best-family algorithm per task (DT on
/// the classification stream, NN on the regression stream, as §6.7/6.8
/// plot their best performers).
fn curve_experiment<V>(
    ctx: &ExpContext,
    id: &'static str,
    title: &'static str,
    variants: &[(&'static str, V)],
    apply: impl Fn(&mut HarnessConfig, &(&'static str, V)),
) -> ExperimentOutput {
    let five = ctx.selected_five();
    let targets: Vec<(&DatasetEntry, Algorithm)> = five
        .iter()
        .filter_map(|e| match e.selected {
            Some("ROOM") => Some((e, Algorithm::NaiveDt)),
            Some("AIR") => Some((e, Algorithm::NaiveNn)),
            _ => None,
        })
        .collect();
    let mut text = String::new();
    let mut json_rows = Vec::new();
    for (entry, alg) in targets {
        let dataset =
            oeb_synth::generate_cached(&entry.spec, ctx.seeds.first().copied().unwrap_or(0));
        for v in variants {
            let mut cfg = HarnessConfig::default();
            apply(&mut cfg, v);
            let Some(run) = run_stream(&dataset, alg, &cfg) else {
                continue;
            };
            let curve: Vec<String> = run
                .per_window_loss
                .iter()
                .map(|l| {
                    if l.is_finite() {
                        format!("{l:.3}")
                    } else {
                        "inf".into()
                    }
                })
                .collect();
            text.push_str(&format!(
                "{} [{}] {}: mean {:.3}\n  {}\n",
                entry.selected.unwrap_or("?"),
                alg.name(),
                v.0,
                run.mean_loss,
                curve.join(" ")
            ));
            json_rows.push(json!({
                "dataset": entry.selected,
                "algorithm": alg.name(),
                "variant": v.0,
                "curve": json_series(&run.per_window_loss),
                "mean": json_f64(run.mean_loss),
            }));
        }
    }
    ExperimentOutput {
        id,
        title,
        text,
        json: json!({ "curves": json_rows }),
    }
}

/// Figure 17: regularisation-factor sweep for EWC ({1e2..1e5}) and LwF
/// ({1e-3..10}).
pub fn fig17(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let mut variants: Vec<(String, HarnessConfig)> = Vec::new();
    for &lambda in &[1e2, 1e3, 1e4, 1e5] {
        let mut cfg = HarnessConfig::default();
        cfg.learner.ewc_lambda = lambda;
        variants.push((format!("EWC λ={lambda:.0e}"), cfg));
    }
    let names_ewc: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let ewc_cells = sweep(ctx, &entries, &[Algorithm::Ewc], &variants);
    let ewc = sweep_output("fig17", "", &names_ewc, &ewc_cells);

    let mut variants: Vec<(String, HarnessConfig)> = Vec::new();
    for &lambda in &[0.001, 0.01, 0.1, 1.0, 10.0] {
        let mut cfg = HarnessConfig::default();
        cfg.learner.lwf_lambda = lambda;
        variants.push((format!("LwF λ={lambda}"), cfg));
    }
    let names_lwf: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let lwf_cells = sweep(ctx, &entries, &[Algorithm::Lwf], &variants);
    let lwf = sweep_output("fig17", "", &names_lwf, &lwf_cells);

    ExperimentOutput {
        id: "fig17",
        title: "Test error / loss vs regularisation factor (EWC, LwF)",
        text: format!("{}\n{}", ewc.text, lwf.text),
        json: json!({ "ewc": ewc.json["cells"], "lwf": lwf.json["cells"] }),
    }
}

/// Figure 18: iCaRL exemplar-buffer size {20, 50, 100, 200, 500}.
pub fn fig18(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let variants: Vec<(String, HarnessConfig)> = [20usize, 50, 100, 200, 500]
        .iter()
        .map(|&b| {
            let mut cfg = HarnessConfig::default();
            cfg.learner.buffer_size = b;
            (format!("buffer={b}"), cfg)
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let cells = sweep(ctx, &entries, &[Algorithm::Icarl], &variants);
    sweep_output(
        "fig18",
        "Test error / loss vs iCaRL exemplar buffer size",
        &names,
        &cells,
    )
}

/// Figure 19: ensemble size {5, 10, 20, 40} for GBDT and the SEA
/// variants.
pub fn fig19(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let variants: Vec<(String, HarnessConfig)> = [5usize, 10, 20, 40]
        .iter()
        .map(|&e| {
            let mut cfg = HarnessConfig::default();
            cfg.learner.ensemble_size = e;
            (format!("ensemble={e}"), cfg)
        })
        .collect();
    let names: Vec<String> = variants.iter().map(|(n, _)| n.clone()).collect();
    let algs = [Algorithm::NaiveGbdt, Algorithm::SeaNn, Algorithm::SeaDt];
    let cells = sweep(ctx, &entries, &algs, &variants);
    sweep_output(
        "fig19",
        "Test error / loss vs ensemble size",
        &names,
        &cells,
    )
}

/// Table 10: training wall-clock per epochs setting for the NN family,
/// plus the epoch-independent tree algorithms.
pub fn table10(ctx: &ExpContext) -> ExperimentOutput {
    let entries = ctx.selected_five();
    let variants: Vec<(String, HarnessConfig)> = [1usize, 5, 10, 20]
        .iter()
        .map(|&e| {
            let mut cfg = HarnessConfig::default();
            cfg.learner.epochs = e;
            (format!("epochs={e}"), cfg)
        })
        .collect();
    let nn_cells = sweep(ctx, &entries, &NN_ALGS, &variants);
    let tree_algs = [
        Algorithm::NaiveDt,
        Algorithm::NaiveGbdt,
        Algorithm::SeaDt,
        Algorithm::SeaGbdt,
        Algorithm::Arf,
    ];
    let default_variant = vec![("default".to_string(), HarnessConfig::default())];
    let tree_cells = sweep(ctx, &entries, &tree_algs, &default_variant);

    let mut t = TextTable::new(vec!["Dataset", "Algorithm", "Variant", "Train seconds"]);
    let mut json_rows = Vec::new();
    for c in nn_cells.iter().chain(tree_cells.iter()) {
        t.row(vec![
            c.dataset.clone(),
            c.algorithm.name().to_string(),
            c.variant.clone(),
            format!("{:.3}", c.train_seconds),
        ]);
        json_rows.push(json!({
            "dataset": c.dataset,
            "algorithm": c.algorithm.name(),
            "variant": c.variant,
            "train_seconds": json_f64(c.train_seconds),
        }));
    }
    ExperimentOutput {
        id: "table10",
        title: "Training time per epochs setting",
        text: t.render(),
        json: json!({ "rows": json_rows }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        ExpContext {
            scale: 0.02,
            seeds: vec![0],
        }
    }

    #[test]
    fn fig18_sweeps_five_buffer_sizes() {
        let out = fig18(&tiny_ctx());
        let cells = out.json["cells"].as_array().unwrap();
        // 5 datasets x 1 algorithm x 5 variants.
        assert_eq!(cells.len(), 25);
    }

    #[test]
    fn fig15_produces_curves_for_both_modes() {
        let out = fig15(&tiny_ctx());
        let curves = out.json["curves"].as_array().unwrap();
        assert_eq!(curves.len(), 4); // 2 datasets x 2 variants
    }

    #[test]
    fn table10_reports_monotone_nn_time_in_epochs() {
        let out = table10(&tiny_ctx());
        let rows = out.json["rows"].as_array().unwrap();
        let time_of = |variant: &str| -> f64 {
            rows.iter()
                .filter(|r| r["algorithm"] == "Naive-NN" && r["variant"] == variant)
                .map(|r| r["train_seconds"].as_f64().unwrap())
                .sum()
        };
        assert!(time_of("epochs=20") > time_of("epochs=1"));
    }
}
