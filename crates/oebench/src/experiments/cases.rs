//! Case-study experiments (§5 of the paper): evolving feature spaces
//! (Figure 4), imputation strategies under evolving features (Figure 5),
//! the t-SNE drift visualisation (Figure 6), drift impact on test loss
//! (Figure 7), and anomaly-event detection (Figure 8).

use super::{json_f64, json_series, ExpContext, ExperimentOutput};
use crate::harness::{run_stream, HarnessConfig};
use crate::learners::Algorithm;
use crate::report::TextTable;
use oeb_drift::{BatchDriftDetector, Hdddm};
use oeb_linalg::{tsne, Matrix, TsneConfig};
use oeb_outlier::{anomaly_ratio, Ecod, IForestConfig, IsolationForest};
use oeb_preprocess::OneHotEncoder;
use oeb_synth::DatasetEntry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn case_entry(ctx: &ExpContext, name: &str) -> DatasetEntry {
    ctx.registry()
        .into_iter()
        .find(|e| e.spec.name == name)
        .expect("case-study dataset present")
}

/// Figure 4: per-window valid-value ratio of two evolving sensors in the
/// five-cities Beijing PM2.5 stream (one appears mid-stream, one drops
/// out for a stretch).
pub fn fig4(ctx: &ExpContext) -> ExperimentOutput {
    let entry = case_entry(ctx, "5 cities PM2.5 (Beijing)");
    let d = ctx.dataset(&entry, 0);
    let windows = d.windows();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for range in &windows {
        for (slot, feature) in [0usize, 1usize].iter().enumerate() {
            let col = d.table.column(*feature).slice(range.clone());
            series[slot].push(1.0 - col.missing_ratio());
        }
    }
    let mut t = TextTable::new(vec![
        "Window",
        "feature 0 valid ratio",
        "feature 1 valid ratio",
    ]);
    for (w, _) in windows.iter().enumerate() {
        t.row(vec![
            w.to_string(),
            format!("{:.3}", series[0][w]),
            format!("{:.3}", series[1][w]),
        ]);
    }
    ExperimentOutput {
        id: "fig4",
        title: "Ratio of valid values per window (incremental/decremental features)",
        text: t.render(),
        json: json!({
            "windows": windows.len(),
            "feature0_valid_ratio": json_series(&series[0]),
            "feature1_valid_ratio": json_series(&series[1]),
        }),
    }
}

/// Figure 5: test-loss curve of a neural network on the evolving-sensor
/// stream under three missing-feature policies: oracle filling (whole
/// dataset knowledge), normal filling (only past data), and discarding
/// the most-missing features.
pub fn fig5(ctx: &ExpContext) -> ExperimentOutput {
    let entry = case_entry(ctx, "5 cities PM2.5 (Beijing)");
    let d = ctx.dataset(&entry, 0);
    let mut base = HarnessConfig::default();
    base.learner.epochs = 5;

    let oracle = run_stream(
        &d,
        Algorithm::NaiveNn,
        &HarnessConfig {
            oracle_imputation: true,
            ..base.clone()
        },
    )
    .expect("NN applies");
    let normal = run_stream(&d, Algorithm::NaiveNn, &base).expect("NN applies");
    let discard = run_stream(
        &d,
        Algorithm::NaiveNn,
        &HarnessConfig {
            discard_most_missing: 3,
            ..base.clone()
        },
    )
    .expect("NN applies");

    let mut t = TextTable::new(vec![
        "Window",
        "Filling (oracle)",
        "Filling (normal)",
        "Discard",
    ]);
    let n = oracle
        .per_window_loss
        .len()
        .min(normal.per_window_loss.len())
        .min(discard.per_window_loss.len());
    let fmt = |x: f64| {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "inf".into()
        }
    };
    for w in 0..n {
        t.row(vec![
            w.to_string(),
            fmt(oracle.per_window_loss[w]),
            fmt(normal.per_window_loss[w]),
            fmt(discard.per_window_loss[w]),
        ]);
    }
    let summary = format!(
        "mean loss: oracle {} | normal {} | discard {}\n",
        fmt(oracle.mean_loss),
        fmt(normal.mean_loss),
        fmt(discard.mean_loss)
    );
    ExperimentOutput {
        id: "fig5",
        title: "Test loss under oracle/normal filling vs discarding evolving features",
        text: format!("{}{}", t.render(), summary),
        json: json!({
            "oracle": json_series(&oracle.per_window_loss),
            "normal": json_series(&normal.per_window_loss),
            "discard": json_series(&discard.per_window_loss),
            "mean": {
                "oracle": json_f64(oracle.mean_loss),
                "normal": json_f64(normal.mean_loss),
                "discard": json_f64(discard.mean_loss),
            },
        }),
    }
}

/// Figure 6: t-SNE embedding of the (preprocessed) Tiantan air-quality
/// stream, labelled by window and by a 6-level AQI-style bucketing of the
/// target, exposing the recurrent yearly drift.
pub fn fig6(ctx: &ExpContext) -> ExperimentOutput {
    let entry = case_entry(ctx, "Beijing Multi-Site Air-Quality Tiantan");
    let d = ctx.dataset(&entry, 0);
    let windows = d.windows();
    let encoder = OneHotEncoder::fit(&d.table, &d.feature_cols());

    // Evenly subsample points across windows, capped for exact t-SNE.
    let budget = 600usize;
    let per_window = (budget / windows.len().max(1)).max(3);
    let mut rows = Vec::new();
    let mut window_of = Vec::new();
    let mut targets = Vec::new();
    for (w, range) in windows.iter().enumerate() {
        let enc = encoder.encode(&d.table, range.clone());
        let step = (enc.rows() / per_window).max(1);
        for r in (0..enc.rows()).step_by(step) {
            let mut row = enc.row(r).to_vec();
            for v in &mut row {
                if !v.is_finite() {
                    *v = 0.0;
                }
            }
            rows.push(row);
            window_of.push(w);
            targets.push(d.target_at(range.start + r));
        }
    }
    let data = Matrix::from_rows(&rows);
    let mut rng = StdRng::seed_from_u64(6);
    let emb = tsne(
        &data,
        &TsneConfig {
            perplexity: 20.0,
            iterations: 200,
            ..Default::default()
        },
        &mut rng,
    );

    // Six AQI-style buckets from target quantiles.
    let finite: Vec<f64> = targets.iter().copied().filter(|t| t.is_finite()).collect();
    let cuts: Vec<f64> = (1..6)
        .map(|i| oeb_linalg::quantile(&finite, i as f64 / 6.0))
        .collect();
    let categories: Vec<usize> = targets
        .iter()
        .map(|&t| cuts.iter().filter(|&&c| t > c).count())
        .collect();

    let mut t = TextTable::new(vec!["Window", "x", "y", "AQI category"]);
    for i in 0..rows.len().min(40) {
        t.row(vec![
            window_of[i].to_string(),
            format!("{:.2}", emb[(i, 0)]),
            format!("{:.2}", emb[(i, 1)]),
            categories[i].to_string(),
        ]);
    }
    let points: Vec<serde_json::Value> = (0..rows.len())
        .map(|i| {
            json!({
                "window": window_of[i],
                "x": json_f64(emb[(i, 0)]),
                "y": json_f64(emb[(i, 1)]),
                "category": categories[i],
            })
        })
        .collect();
    ExperimentOutput {
        id: "fig6",
        title: "t-SNE visualisation of the air-quality stream per window",
        text: format!(
            "{}... ({} points total; full coordinates in the JSON artifact)\n",
            t.render(),
            rows.len()
        ),
        json: json!({ "points": points }),
    }
}

/// Figure 7: per-window test loss of a decision tree and a neural
/// network on the Tiantan stream, with the HDDDM-flagged drift windows.
pub fn fig7(ctx: &ExpContext) -> ExperimentOutput {
    let entry = case_entry(ctx, "Beijing Multi-Site Air-Quality Tiantan");
    let d = ctx.dataset(&entry, 0);
    let mut cfg = HarnessConfig::default();
    cfg.learner.epochs = 5;
    let dt = run_stream(&d, Algorithm::NaiveDt, &cfg).expect("DT applies");
    let nn = run_stream(&d, Algorithm::NaiveNn, &cfg).expect("NN applies");

    // Mark drift windows with HDDDM over the encoded windows.
    let encoder = OneHotEncoder::fit(&d.table, &d.feature_cols());
    let mut hdddm = Hdddm::default();
    let mut drift_windows = Vec::new();
    for (w, range) in d.windows().iter().enumerate() {
        let mut enc = encoder.encode(&d.table, range.clone());
        for v in enc.as_mut_slice() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        if hdddm.update(&enc).is_drift() {
            drift_windows.push(w);
        }
    }

    let mut t = TextTable::new(vec!["Window", "DT loss", "NN loss", "drift?"]);
    for w in 0..dt.per_window_loss.len().min(nn.per_window_loss.len()) {
        t.row(vec![
            (w + 1).to_string(),
            format!("{:.3}", dt.per_window_loss[w]),
            format!("{:.3}", nn.per_window_loss[w]),
            if drift_windows.contains(&(w + 1)) {
                "*".into()
            } else {
                String::new()
            },
        ]);
    }
    ExperimentOutput {
        id: "fig7",
        title: "Test loss around drift occurrences (DT vs NN)",
        text: t.render(),
        json: json!({
            "dt": json_series(&dt.per_window_loss),
            "nn": json_series(&nn.per_window_loss),
            "drift_windows": drift_windows,
        }),
    }
}

/// Figure 8: per-window anomaly ratios on the five-cities Beijing stream
/// under ECOD and IForest, with the injected flood / haze event windows.
pub fn fig8(ctx: &ExpContext) -> ExperimentOutput {
    let entry = case_entry(ctx, "5 cities PM2.5 (Beijing)");
    let d = ctx.dataset(&entry, 0);
    let windows = d.windows();
    let encoder = OneHotEncoder::fit(&d.table, &d.feature_cols());

    let mut ecod_series = Vec::with_capacity(windows.len());
    let mut iforest_series = Vec::with_capacity(windows.len());
    for (w, range) in windows.iter().enumerate() {
        let mut enc = encoder.encode(&d.table, range.clone());
        for v in enc.as_mut_slice() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        let ecod = Ecod::fit(&enc);
        ecod_series.push(anomaly_ratio(&ecod.score_all(&enc)));
        let forest = IsolationForest::fit(
            &enc,
            &IForestConfig {
                n_trees: 30,
                seed: w as u64,
                ..Default::default()
            },
        );
        iforest_series.push(anomaly_ratio(&forest.score_all(&enc)));
    }

    // Ground-truth event windows from the generator spec.
    let n = d.n_rows() as f64;
    let window_of_frac = |frac: f64| -> usize {
        let row = (frac * n) as usize;
        windows
            .iter()
            .position(|r| r.contains(&row.min(d.n_rows() - 1)))
            .unwrap_or(0)
    };
    let flood_w = window_of_frac(0.42);
    let haze_w = (window_of_frac(0.80), window_of_frac(0.86));

    let mut t = TextTable::new(vec!["Window", "ECOD ratio", "IForest ratio", "event"]);
    for w in 0..windows.len() {
        let event = if w == flood_w {
            "flood"
        } else if w >= haze_w.0 && w <= haze_w.1 {
            "haze"
        } else {
            ""
        };
        t.row(vec![
            w.to_string(),
            format!("{:.3}", ecod_series[w]),
            format!("{:.3}", iforest_series[w]),
            event.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "fig8",
        title: "Detected anomalies around the flood and haze events",
        text: t.render(),
        json: json!({
            "ecod": json_series(&ecod_series),
            "iforest": json_series(&iforest_series),
            "flood_window": flood_w,
            "haze_windows": [haze_w.0, haze_w.1],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExpContext {
        ExpContext {
            scale: 0.02,
            seeds: vec![0],
        }
    }

    #[test]
    fn fig4_shows_incremental_feature() {
        let out = fig4(&tiny_ctx());
        let series = out.json["feature0_valid_ratio"].as_array().unwrap();
        // The first windows have ~0 valid ratio (sensor not installed),
        // later windows are mostly valid.
        let first = series[0].as_f64().unwrap();
        let last = series[series.len() - 1].as_f64().unwrap();
        assert!(first < 0.1, "first window valid ratio {first}");
        assert!(last > 0.5, "last window valid ratio {last}");
    }

    #[test]
    fn fig7_produces_aligned_series() {
        let out = fig7(&tiny_ctx());
        let dt = out.json["dt"].as_array().unwrap();
        let nn = out.json["nn"].as_array().unwrap();
        assert_eq!(dt.len(), nn.len());
        assert!(!dt.is_empty());
    }

    #[test]
    fn fig8_flags_the_flood_window() {
        // The 3-sigma rule needs enough rows per window for the flood
        // spike to sit in the far tail: rank-based ECOD scores over a
        // 14-row window (scale 0.02) cap out near z = 1.5, so the flood
        // is only separable once windows reach ~70 rows.
        let out = fig8(&ExpContext {
            scale: 0.1,
            seeds: vec![0],
        });
        let series = |key: &str| -> Vec<f64> {
            out.json[key]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap_or(0.0))
                .collect()
        };
        let ecod = series("ecod");
        let iforest = series("iforest");
        let flood = out.json["flood_window"].as_u64().unwrap() as usize;
        // At least one of the two detectors flags samples in the flood
        // window (the spike rows are a small fraction of their window, so
        // the 3-sigma rule can isolate them).
        assert!(
            ecod[flood] > 0.0 || iforest[flood] > 0.0,
            "neither detector flagged the flood window: ecod {} iforest {}",
            ecod[flood],
            iforest[flood]
        );
    }
}
