//! Experiment drivers: one function per table/figure of the paper's
//! evaluation, each returning a rendered text artifact plus a
//! machine-readable JSON value. The `repro` binary in `oeb-bench`
//! dispatches on experiment ids and writes both to `results/`.

pub mod cases;
pub mod datasets;
pub mod main_results;
pub mod sweeps;

use crate::stats::{extract_stats, OeStats, StatsConfig};
use oeb_synth::DatasetEntry;
use oeb_tabular::StreamDataset;
use std::sync::Arc;

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Row-scale factor applied to every registry spec (1.0 = the
    /// benchmark-scale sizes documented in DESIGN.md).
    pub scale: f64,
    /// Seeds per run (the paper repeats each experiment three times).
    pub seeds: Vec<u64>,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            scale: 0.10,
            seeds: vec![0, 1, 2],
        }
    }
}

impl ExpContext {
    /// The registry at this context's scale.
    pub fn registry(&self) -> Vec<DatasetEntry> {
        oeb_synth::registry_scaled(self.scale)
    }

    /// The five representative datasets at this context's scale.
    pub fn selected_five(&self) -> Vec<DatasetEntry> {
        oeb_synth::selected_five()
            .into_iter()
            .map(|mut e| {
                e.spec = e.spec.scaled(self.scale);
                e
            })
            .collect()
    }

    /// Generates a dataset from an entry with the given seed, through
    /// the process-wide generation cache: experiments touching the same
    /// (spec, seed) share one materialized dataset.
    pub fn dataset(&self, entry: &DatasetEntry, seed: u64) -> Arc<StreamDataset> {
        oeb_synth::generate_cached(&entry.spec, seed)
    }

    /// Extracts open-environment statistics for every registry dataset
    /// (seed 0). This is the §4.3 pipeline over the whole collection.
    pub fn stats_all(&self) -> Vec<OeStats> {
        let cfg = StatsConfig::default();
        self.registry()
            .iter()
            .map(|e| extract_stats(&self.dataset(e, 0), &cfg))
            .collect()
    }
}

/// JSON-safe float: non-finite values (diverged NN losses) become null,
/// matching the paper's N/A entries.
pub fn json_f64(x: f64) -> serde_json::Value {
    if x.is_finite() {
        serde_json::json!(x)
    } else {
        serde_json::Value::Null
    }
}

/// JSON-safe float series.
pub fn json_series(xs: &[f64]) -> serde_json::Value {
    serde_json::Value::Array(xs.iter().map(|&x| json_f64(x)).collect())
}

/// A finished experiment artifact.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. `table4`, `fig10`).
    pub id: &'static str,
    /// One-line description of the paper artifact reproduced.
    pub title: &'static str,
    /// Rendered text (tables / series) for the console and `.txt` file.
    pub text: String,
    /// Machine-readable payload for the `.json` file.
    pub json: serde_json::Value,
}

/// Every experiment id in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table4", "fig9",
    "table5", "table6", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table9",
    "fig17", "fig18", "fig19", "table10", "table13",
];

/// Dispatches an experiment by id.
///
/// `stats_cache`: pass the output of [`ExpContext::stats_all`] when
/// running several stats-hungry experiments in one process so the §4.3
/// pipeline runs once.
pub fn run_experiment(
    id: &str,
    ctx: &ExpContext,
    stats_cache: &mut Option<Vec<OeStats>>,
) -> Option<ExperimentOutput> {
    let mut need_stats = || -> Vec<OeStats> {
        if stats_cache.is_none() {
            *stats_cache = Some(ctx.stats_all());
        }
        stats_cache.clone().expect("filled above")
    };
    Some(match id {
        "table2" => datasets::table2(ctx),
        "table3" => datasets::table3(ctx, &need_stats()),
        "fig2" => datasets::fig2(ctx, &need_stats()),
        "fig3" => datasets::fig3(ctx, &need_stats()),
        "table13" => datasets::table13(ctx),
        "fig4" => cases::fig4(ctx),
        "fig5" => cases::fig5(ctx),
        "fig6" => cases::fig6(ctx),
        "fig7" => cases::fig7(ctx),
        "fig8" => cases::fig8(ctx),
        "table4" => main_results::table4(ctx),
        "table5" => main_results::table5(ctx),
        "table6" => main_results::table6(ctx),
        "table9" => main_results::table9(ctx),
        "fig9" => main_results::fig9(ctx, &need_stats()),
        "fig10" => sweeps::fig10(ctx),
        "fig11" => sweeps::fig11(ctx),
        "fig12" => sweeps::fig12(ctx),
        "fig13" => sweeps::fig13(ctx),
        "fig14" => sweeps::fig14(ctx),
        "fig15" => sweeps::fig15(ctx),
        "fig16" => sweeps::fig16(ctx),
        "fig17" => sweeps::fig17(ctx),
        "fig18" => sweeps::fig18(ctx),
        "fig19" => sweeps::fig19(ctx),
        "table10" => sweeps::table10(ctx),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiment_ids_dispatch() {
        // Only checks the dispatch table is exhaustive; each driver has
        // its own tests. Use an unknown id for the None path.
        assert!(run_experiment("nope", &ExpContext::default(), &mut None).is_none());
        assert_eq!(ALL_EXPERIMENTS.len(), 26);
    }

    #[test]
    fn context_scales_registry() {
        let ctx = ExpContext {
            scale: 0.05,
            seeds: vec![0],
        };
        let reg = ctx.registry();
        assert_eq!(reg.len(), 55);
        assert!(reg.iter().all(|e| e.spec.n_rows <= 3_100));
        assert_eq!(ctx.selected_five().len(), 5);
    }
}
