//! Deterministic intra-cell parallel window training for the Adaptive
//! Random Forest.
//!
//! ARF's members share one RNG stream, consumed in (sample, member)
//! order by the error monitors, background-tree subspace draws and
//! Poisson bag counts — so naively training members on separate threads
//! would scramble the stream and the results. `oeb-tree` splits each
//! sample into a cheap serial randomness pre-pass
//! ([`AdaptiveRandomForest::pre_pass_member`], run here in member order
//! exactly as the historical fused loop did) and an RNG-free training
//! step ([`oeb_tree::ArfMember::bagged_train`]); the
//! [`lockstep_rounds`] executor primitive then runs one round per
//! sample — serial pre-pass, parallel per-member training — producing a
//! forest bit-identical to [`AdaptiveRandomForest::learn_window`] at
//! any thread count.

use crate::executor::{lockstep_rounds, resolve_threads};
use oeb_linalg::Matrix;
use oeb_trace::Counter;
use oeb_tree::{AdaptiveRandomForest, ArfMember};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Members trained through the lockstep window path. Gated only on the
/// members × rows threshold — never on the resolved thread count — so
/// the count is schedule-invariant.
static PARALLEL_MEMBERS: Counter = Counter::new("train.arf.parallel_members");

/// Minimum members × rows before the lockstep path pays for its
/// per-round barrier synchronisation. Sweep-scale windows (tens of rows)
/// stay on the plain serial loop.
const PARALLEL_MIN_WORK: usize = 2048;

/// Trains `forest` on the window `(xs, ys)`, choosing between the plain
/// serial loop and the lockstep-parallel path purely on window size
/// (members × rows ≥ `2048`); `threads` resolves through
/// [`resolve_threads`]. Both paths produce bit-identical forests.
pub fn arf_train_window(
    forest: &mut AdaptiveRandomForest,
    xs: &Matrix,
    ys: &[f64],
    threads: Option<usize>,
) {
    if xs.rows() == 0 || forest.n_trees() == 0 {
        return;
    }
    if forest.n_trees() * xs.rows() < PARALLEL_MIN_WORK {
        forest.learn_window(xs, ys);
        return;
    }
    arf_train_window_lockstep(forest, xs, ys, resolve_threads(threads));
}

/// The lockstep window trainer with no size gate (equivalence tests and
/// `bench_train` drive it directly at explicit thread counts).
///
/// One round per sample: the coordinator runs the serial randomness
/// pre-pass over every member in order (error monitoring, drift
/// handling, Poisson bag draw — the complete RNG consumption of the
/// fused [`AdaptiveRandomForest::learn_one`] loop, in the same order),
/// then the members train in parallel on their published bag counts.
/// Member `i`'s training never touches the RNG or member `j`'s state,
/// which is exactly why hoisting the pre-passes ahead of the round's
/// training is bit-exact.
pub fn arf_train_window_lockstep(
    forest: &mut AdaptiveRandomForest,
    xs: &Matrix,
    ys: &[f64],
    threads: usize,
) {
    let rows = xs.rows();
    let members = forest.take_members();
    let n_members = members.len();
    if rows == 0 || n_members == 0 {
        forest.put_members(members);
        return;
    }
    PARALLEL_MEMBERS.add(n_members as u64);
    // Bag counts published by the pre-pass of the current round; the
    // round-publication handshake inside `lockstep_rounds` orders the
    // stores before the parallel reads, so relaxed atomics suffice.
    let bags: Vec<AtomicUsize> = (0..n_members).map(|_| AtomicUsize::new(0)).collect();
    let slots: Vec<Mutex<ArfMember>> = members.into_iter().map(Mutex::new).collect();
    lockstep_rounds(
        &slots,
        threads,
        rows,
        |r| {
            let x = xs.row(r);
            let y = ys[r] as usize;
            for (mi, slot) in slots.iter().enumerate() {
                let mut m = slot.lock().unwrap_or_else(|p| p.into_inner());
                bags[mi].store(forest.pre_pass_member(&mut m, x, y), Ordering::Relaxed);
            }
        },
        |r, mi, m| {
            m.bagged_train(xs.row(r), ys[r] as usize, bags[mi].load(Ordering::Relaxed));
        },
    );
    forest.put_members(
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use oeb_tree::ArfConfig;

    /// A stream whose concept flips halfway: exercises warning-triggered
    /// background trees, drift promotion and detector resets.
    fn drifting_stream(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 100) as f64, ((i * 13) % 50) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| {
                let x0 = (i % 100) as f64;
                let flipped = i >= n / 2;
                f64::from((x0 >= 50.0) ^ flipped)
            })
            .collect();
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn lockstep_window_matches_serial_bitwise() {
        let (xs, ys) = drifting_stream(6000);
        let mk = || AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        let mut serial = mk();
        serial.learn_window(&xs, &ys);
        assert!(serial.n_resets > 0, "stream never drifted");
        for threads in [1, 4] {
            let mut lockstep = mk();
            arf_train_window_lockstep(&mut lockstep, &xs, &ys, threads);
            assert_eq!(
                serial.digest(),
                lockstep.digest(),
                "forest diverged at {threads} threads"
            );
            assert_eq!(serial.n_resets, lockstep.n_resets);
        }
    }

    #[test]
    fn size_gate_routes_small_windows_serially() {
        // Below the threshold the dispatcher must behave exactly like
        // learn_window (it *is* learn_window).
        let (xs, ys) = drifting_stream(64);
        let mut gated = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        let mut plain = AdaptiveRandomForest::new(3, 2, ArfConfig::default());
        arf_train_window(&mut gated, &xs, &ys, Some(4));
        plain.learn_window(&xs, &ys);
        assert_eq!(gated.digest(), plain.digest());
    }
}
