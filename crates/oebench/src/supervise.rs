//! Cell supervision: logical deadlines, a wall-clock watchdog hook,
//! seeded retry with exponential backoff, and quarantine.
//!
//! A benchmark sweep over hostile streams needs more than panic
//! isolation: a cell can *hang* (a diverging learner grinding through a
//! pathological window), *thrash* (transient non-finite losses that a
//! fresh attempt would survive), or fail every attempt it is given. The
//! supervision layer bounds all three without giving up determinism:
//!
//! - **Logical deadlines** ([`CellBudget`]) cap windows entered and
//!   items trained. They are checked cooperatively inside the evaluate
//!   loop, so hitting one is a pure function of the stream — replays are
//!   bit-identical at any thread count.
//! - **Wall-clock deadlines** ride the executor watchdog
//!   ([`crate::executor::WatchdogSlot`]): the watchdog fires a
//!   [`CancelFlag`] that the same cooperative checks poll. Wall timeouts
//!   are machine noise by definition, so they are *retryable* and their
//!   counter lives under the `supervise.wall.` prefix, which the trace
//!   layer excludes from the schedule-invariance contract.
//! - **Seeded retry** ([`supervise_cell`]): every retry decision —
//!   whether to retry, how long to back off — derives from the cell's
//!   seed ([`cell_seed`]) and the attempt number, never from a clock or
//!   a global RNG, so a replayed cell spends its budget identically.
//! - **Quarantine**: a cell that exhausts its retry budget becomes a
//!   typed [`HarnessError::Quarantined`] outcome, serialized into the
//!   sweep report and checkpoint, instead of aborting the run.

use crate::error::HarnessError;
use crate::executor::CancelFlag;
use oeb_trace::Counter;
use std::time::Duration;

// Supervision instruments. `supervise.retries`, `supervise.timeouts`
// (logical) and `supervise.quarantined` are deterministic: on a fixed
// grid with fixed seeds they count the same events on every run at every
// thread count. The `supervise.wall.*` family is machine-dependent by
// construction (a wall clock fired) and is excluded from the
// schedule-invariance contract in `oeb_trace`.
static RETRIES: Counter = Counter::new("supervise.retries");
static TIMEOUTS: Counter = Counter::new("supervise.timeouts");
static QUARANTINED: Counter = Counter::new("supervise.quarantined");
static WALL_TIMEOUTS: Counter = Counter::new("supervise.wall.timeouts");
static WALL_RETRIES: Counter = Counter::new("supervise.wall.retries");

/// Largest backoff exponent: caps the schedule at `base * 2^6` so a deep
/// retry budget cannot sleep a sweep for minutes.
const MAX_BACKOFF_EXP: u32 = 6;

/// How a sweep supervises its cells. The default is fully unsupervised —
/// no deadlines, no retries — which makes the supervised code path
/// bit-identical to the historical executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisePolicy {
    /// Logical deadline: windows a cell may *enter* (warm-up included).
    pub max_windows: Option<usize>,
    /// Logical deadline: items a cell may test/train.
    pub max_items: Option<usize>,
    /// Wall-clock deadline per *attempt*, enforced by the executor
    /// watchdog. Machine-dependent; a fired deadline is retryable.
    pub wall_deadline: Option<Duration>,
    /// Retries a failing cell may spend before quarantine. `0` disables
    /// retry and quarantine entirely: failures stay plain failures.
    pub max_retries: usize,
    /// Base backoff before the first retry; attempt `k` backs off
    /// `base * 2^(k-1)` plus seeded jitter in `[0, base)`.
    pub backoff_base: Duration,
}

impl SupervisePolicy {
    /// No deadlines, no retries: the historical sweep behaviour.
    pub fn unsupervised() -> SupervisePolicy {
        SupervisePolicy {
            max_windows: None,
            max_items: None,
            wall_deadline: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(10),
        }
    }

    /// Is any supervision feature active?
    pub fn is_active(&self) -> bool {
        self.max_windows.is_some()
            || self.max_items.is_some()
            || self.wall_deadline.is_some()
            || self.max_retries > 0
    }

    /// The logical half of the policy bound to one attempt's cancel
    /// flag.
    pub fn budget(&self, cancel: CancelFlag) -> CellBudget {
        CellBudget {
            max_windows: self.max_windows,
            max_items: self.max_items,
            cancel,
        }
    }
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy::unsupervised()
    }
}

/// One attempt's deadline state, threaded into the evaluate loop and the
/// item-level prequential loop. [`CellBudget::check`] is the single
/// cooperative cancellation point: it reports a logical deadline
/// (deterministic) or a fired wall-clock watchdog (machine noise) as a
/// typed [`HarnessError::CellTimedOut`].
#[derive(Debug, Clone, Default)]
pub struct CellBudget {
    /// Windows the attempt may enter.
    pub max_windows: Option<usize>,
    /// Items the attempt may test/train.
    pub max_items: Option<usize>,
    /// Wall-clock cancellation signal (from the executor watchdog).
    pub cancel: CancelFlag,
}

impl CellBudget {
    /// A budget that never expires (the unsupervised path).
    pub fn unlimited() -> CellBudget {
        CellBudget {
            max_windows: None,
            max_items: None,
            cancel: CancelFlag::never(),
        }
    }

    /// Cooperative deadline check with the attempt's progress so far.
    ///
    /// The wall-clock flag is tested *after* the logical bounds: when
    /// both would fire, the deterministic verdict wins so replays agree.
    pub fn check(&self, windows: usize, items: usize) -> Result<(), HarnessError> {
        if self.max_windows.is_some_and(|m| windows >= m)
            || self.max_items.is_some_and(|m| items >= m)
        {
            return Err(HarnessError::CellTimedOut {
                windows,
                items,
                wall: false,
            });
        }
        if self.cancel.is_cancelled() {
            return Err(HarnessError::CellTimedOut {
                windows,
                items,
                wall: true,
            });
        }
        Ok(())
    }
}

/// Stable per-cell seed: FNV-1a over the sweep seed and the cell's
/// coordinates, finished with a SplitMix64 avalanche. Every retry and
/// backoff decision for the cell derives from this value, so replaying a
/// sweep replays its retry sequences bit-for-bit.
pub fn cell_seed(sweep_seed: u64, dataset: &str, algorithm: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for chunk in [
        &sweep_seed.to_le_bytes()[..],
        dataset.as_bytes(),
        b"|",
        algorithm.as_bytes(),
    ] {
        for &b in chunk {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    splitmix64(h)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The backoff before retry `k` (1-based): `base * 2^(k-1)` capped at
/// `2^6`, plus seeded jitter in `[0, base)`. Pure in `(seed, k, base)`.
pub fn backoff_duration(seed: u64, retry: usize, base: Duration) -> Duration {
    let exp = (retry.saturating_sub(1) as u32).min(MAX_BACKOFF_EXP);
    let jitter_ms = if base.as_millis() > 0 {
        splitmix64(seed ^ (retry as u64).wrapping_mul(0x9e3779b97f4a7c15)) % base.as_millis() as u64
    } else {
        0
    };
    base * 2u32.pow(exp) + Duration::from_millis(jitter_ms)
}

/// What supervision did to one cell, beyond the result itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Supervised<T> {
    /// The final result: success, a non-retryable failure, a logical
    /// timeout, or [`HarnessError::Quarantined`] after an exhausted
    /// budget.
    pub result: Result<T, HarnessError>,
    /// Attempts spent (≥ 1).
    pub attempts: usize,
    /// Backoffs actually slept, in order, in milliseconds. Deterministic
    /// in the cell seed whenever the attempt failures are.
    pub backoff_ms: Vec<u64>,
}

impl<T> Supervised<T> {
    /// One deterministic line for [`RunResult::degradations`]
    /// (`crate::harness::RunResult`) when the cell needed retries to
    /// succeed, so supervision history survives checkpoint round-trips.
    pub fn recovery_note(&self) -> Option<String> {
        if self.attempts <= 1 || self.result.is_err() {
            return None;
        }
        let backoffs: Vec<String> = self.backoff_ms.iter().map(|ms| format!("{ms}ms")).collect();
        Some(format!(
            "supervision: recovered on attempt {} (backoff [{}])",
            self.attempts,
            backoffs.join(", ")
        ))
    }
}

/// Drives one cell through the retry state machine.
///
/// `attempt` is invoked with the 0-based attempt number; it should run
/// the cell under a *fresh* wall-clock deadline per call (arm the
/// watchdog slot inside). Retryable failures ([`HarnessError::is_retryable`])
/// spend the budget with seeded exponential backoff between attempts;
/// exhausting it yields [`HarnessError::Quarantined`]. Non-retryable
/// failures — including deterministic logical timeouts — return
/// immediately. With `max_retries == 0` the attempt's own error is
/// returned untouched, which keeps the unsupervised path's outcomes
/// byte-identical to the historical sweep.
pub fn supervise_cell<T>(
    policy: &SupervisePolicy,
    seed: u64,
    mut attempt: impl FnMut(usize) -> Result<T, HarnessError>,
) -> Supervised<T> {
    let mut backoff_ms = Vec::new();
    let mut k = 0usize;
    loop {
        match attempt(k) {
            Ok(value) => {
                return Supervised {
                    result: Ok(value),
                    attempts: k + 1,
                    backoff_ms,
                }
            }
            Err(e) => {
                if let HarnessError::CellTimedOut { wall, .. } = &e {
                    if *wall {
                        WALL_TIMEOUTS.incr();
                    } else {
                        TIMEOUTS.incr();
                    }
                }
                if !e.is_retryable() || policy.max_retries == 0 {
                    return Supervised {
                        result: Err(e),
                        attempts: k + 1,
                        backoff_ms,
                    };
                }
                if k >= policy.max_retries {
                    QUARANTINED.incr();
                    return Supervised {
                        result: Err(HarnessError::Quarantined {
                            attempts: k + 1,
                            last_kind: e.kind().to_string(),
                            reason: e.to_string(),
                        }),
                        attempts: k + 1,
                        backoff_ms,
                    };
                }
                // Wall-triggered retries are machine noise; everything
                // else (panics, fault-injected divergence, I/O) recurs
                // deterministically on a fixed grid.
                if matches!(&e, HarnessError::CellTimedOut { wall: true, .. }) {
                    WALL_RETRIES.incr();
                } else {
                    RETRIES.incr();
                }
                k += 1;
                let pause = backoff_duration(seed, k, policy.backoff_base);
                backoff_ms.push(pause.as_millis() as u64);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail(kind: &str) -> HarnessError {
        match kind {
            "panic" => HarnessError::Panicked("boom".into()),
            "config" => HarnessError::InvalidConfig("bad".into()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unlimited_budget_never_expires() {
        let b = CellBudget::unlimited();
        assert!(b.check(usize::MAX - 1, usize::MAX - 1).is_ok());
    }

    #[test]
    fn logical_deadlines_fire_deterministically() {
        let b = CellBudget {
            max_windows: Some(5),
            max_items: Some(1000),
            cancel: CancelFlag::never(),
        };
        assert!(b.check(4, 999).is_ok());
        let e = b.check(5, 10).unwrap_err();
        assert!(
            matches!(e, HarnessError::CellTimedOut { wall: false, .. }),
            "{e}"
        );
        let e = b.check(0, 1000).unwrap_err();
        assert!(matches!(e, HarnessError::CellTimedOut { wall: false, .. }));
    }

    #[test]
    fn cancelled_flag_reports_a_wall_timeout() {
        let flag = CancelFlag::armed();
        let b = CellBudget {
            max_windows: None,
            max_items: None,
            cancel: flag.clone(),
        };
        assert!(b.check(3, 30).is_ok());
        flag.cancel();
        let e = b.check(3, 30).unwrap_err();
        assert!(matches!(
            e,
            HarnessError::CellTimedOut {
                windows: 3,
                items: 30,
                wall: true
            }
        ));
    }

    #[test]
    fn logical_verdict_wins_over_a_simultaneous_wall_cancel() {
        let flag = CancelFlag::armed();
        flag.cancel();
        let b = CellBudget {
            max_windows: Some(2),
            max_items: None,
            cancel: flag,
        };
        // Both deadlines hold; the deterministic one must be reported so
        // replays without the wall race agree.
        let e = b.check(2, 0).unwrap_err();
        assert!(matches!(e, HarnessError::CellTimedOut { wall: false, .. }));
    }

    #[test]
    fn cell_seed_separates_coordinates_and_is_stable() {
        let a = cell_seed(7, "Electricity Prices", "ARF");
        assert_eq!(a, cell_seed(7, "Electricity Prices", "ARF"));
        assert_ne!(a, cell_seed(8, "Electricity Prices", "ARF"));
        assert_ne!(a, cell_seed(7, "Electricity Prices", "EWC"));
        assert_ne!(a, cell_seed(7, "Beijing PM2.5", "ARF"));
        // The separator keeps ("ab", "c") and ("a", "bc") distinct.
        assert_ne!(cell_seed(0, "ab", "c"), cell_seed(0, "a", "bc"));
    }

    #[test]
    fn backoff_grows_exponentially_with_seeded_jitter() {
        let base = Duration::from_millis(10);
        let b1 = backoff_duration(42, 1, base);
        let b2 = backoff_duration(42, 2, base);
        let b3 = backoff_duration(42, 3, base);
        assert!((10..20).contains(&(b1.as_millis() as u64)), "{b1:?}");
        assert!((20..30).contains(&(b2.as_millis() as u64)), "{b2:?}");
        assert!((40..50).contains(&(b3.as_millis() as u64)), "{b3:?}");
        // Replay is bit-identical; a different seed jitters differently
        // for at least one retry index.
        assert_eq!(b2, backoff_duration(42, 2, base));
        assert!(
            (1..=8).any(|k| backoff_duration(42, k, base) != backoff_duration(43, k, base)),
            "jitter ignored the seed"
        );
        // The exponent is capped.
        let huge = backoff_duration(42, 100, base);
        assert!(huge < base * 2u32.pow(MAX_BACKOFF_EXP) + base);
    }

    #[test]
    fn success_on_first_attempt_spends_nothing() {
        let policy = SupervisePolicy {
            max_retries: 3,
            backoff_base: Duration::ZERO,
            ..SupervisePolicy::unsupervised()
        };
        let out = supervise_cell(&policy, 1, |_| Ok::<_, HarnessError>(99));
        assert_eq!(out.attempts, 1);
        assert!(out.backoff_ms.is_empty());
        assert!(out.recovery_note().is_none());
        assert_eq!(out.result.unwrap(), 99);
    }

    #[test]
    fn retryable_failure_recovers_and_notes_the_attempts() {
        let policy = SupervisePolicy {
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            ..SupervisePolicy::unsupervised()
        };
        let out = supervise_cell(
            &policy,
            5,
            |k| {
                if k < 2 {
                    Err(fail("panic"))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out.result.as_ref().unwrap(), &7);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.backoff_ms.len(), 2);
        let note = out.recovery_note().unwrap();
        assert!(note.contains("attempt 3"), "{note}");
        // The note is deterministic: same seed, same failures, same text.
        let again = supervise_cell(
            &policy,
            5,
            |k| {
                if k < 2 {
                    Err(fail("panic"))
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(again.recovery_note().unwrap(), note);
    }

    #[test]
    fn exhausted_budget_quarantines_with_the_last_failure() {
        let policy = SupervisePolicy {
            max_retries: 2,
            backoff_base: Duration::ZERO,
            ..SupervisePolicy::unsupervised()
        };
        let out = supervise_cell(&policy, 9, |_| Err::<(), _>(fail("panic")));
        assert_eq!(out.attempts, 3);
        match out.result.unwrap_err() {
            HarnessError::Quarantined {
                attempts,
                last_kind,
                reason,
            } => {
                assert_eq!(attempts, 3);
                assert_eq!(last_kind, "panicked");
                assert!(reason.contains("boom"));
            }
            other => panic!("expected quarantine, got {other}"),
        }
    }

    #[test]
    fn non_retryable_failure_short_circuits() {
        let policy = SupervisePolicy {
            max_retries: 5,
            backoff_base: Duration::ZERO,
            ..SupervisePolicy::unsupervised()
        };
        let mut calls = 0;
        let out = supervise_cell(&policy, 2, |_| {
            calls += 1;
            Err::<(), _>(fail("config"))
        });
        assert_eq!(calls, 1);
        assert!(matches!(
            out.result.unwrap_err(),
            HarnessError::InvalidConfig(_)
        ));
    }

    #[test]
    fn logical_timeout_is_not_retried() {
        let policy = SupervisePolicy {
            max_retries: 5,
            backoff_base: Duration::ZERO,
            ..SupervisePolicy::unsupervised()
        };
        let mut calls = 0;
        let out = supervise_cell(&policy, 2, |_| {
            calls += 1;
            Err::<(), _>(HarnessError::CellTimedOut {
                windows: 4,
                items: 160,
                wall: false,
            })
        });
        assert_eq!(calls, 1, "a deterministic timeout must not burn budget");
        assert!(matches!(
            out.result.unwrap_err(),
            HarnessError::CellTimedOut { wall: false, .. }
        ));
    }

    #[test]
    fn zero_retry_policy_returns_the_plain_error() {
        // The unsupervised path must never rewrite failures into
        // quarantine: with no retry budget the attempt's error passes
        // through untouched.
        let policy = SupervisePolicy::unsupervised();
        let out = supervise_cell(&policy, 0, |_| Err::<(), _>(fail("panic")));
        assert_eq!(out.attempts, 1);
        assert!(matches!(out.result.unwrap_err(), HarnessError::Panicked(_)));
    }
}
