//! Determinism properties of the parallel sweep executor: for arbitrary
//! worker counts, stream shapes and interruption points, a sweep must
//! produce the same report as the sequential run — parallelism and
//! checkpoint/resume may change *when* cells run, never *what* they
//! compute.

use oeb_core::{
    run_sweep, run_sweep_supervised, Algorithm, HarnessConfig, RunOutcome, SupervisePolicy,
    SweepReport,
};
use oeb_synth::{Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::{Domain, StreamDataset};
use proptest::prelude::*;

fn tiny_spec(name: &str, classification: bool, rows: usize, seed: u64) -> StreamSpec {
    StreamSpec {
        name: name.into(),
        domain: Domain::Others,
        n_rows: rows,
        n_numeric: 3,
        categorical: vec![],
        task: if classification {
            TaskSpec::Classification {
                n_classes: 2,
                mechanism: LabelMechanism::XToY,
                balance: Balance::Balanced,
                label_noise: 0.02,
            }
        } else {
            TaskSpec::Regression { noise: 0.1 }
        },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 40,
        seed,
    }
}

fn grid_datasets(seed: u64) -> Vec<StreamDataset> {
    vec![
        oeb_synth::generate(&tiny_spec("par-clf", true, 240, seed), seed),
        oeb_synth::generate(&tiny_spec("par-reg", false, 240, seed), seed),
    ]
}

/// The deterministic half of a report: everything except wall-clock
/// timing and throughput, floats compared by bit pattern. Two reports
/// with equal digests are byte-identical on every reproducible field.
fn digest(report: &SweepReport) -> Vec<String> {
    report
        .records
        .iter()
        .map(|r| {
            let outcome = match &r.outcome {
                RunOutcome::Completed(res) => {
                    let losses: Vec<String> = res
                        .per_window_loss
                        .iter()
                        .map(|l| format!("{:016x}", l.to_bits()))
                        .collect();
                    format!(
                        "completed mean={:016x} items={} mem={} losses=[{}] deg={:?}",
                        res.mean_loss.to_bits(),
                        res.items,
                        res.memory_bytes,
                        losses.join(","),
                        res.degradations,
                    )
                }
                RunOutcome::Inapplicable => "inapplicable".into(),
                RunOutcome::Failed { kind, reason } => format!("failed {kind}: {reason}"),
                RunOutcome::TimedOut {
                    windows,
                    items,
                    wall,
                } => format!("timed-out w={windows} i={items} wall={wall}"),
                RunOutcome::Quarantined {
                    attempts,
                    kind,
                    reason,
                } => format!("quarantined n={attempts} {kind}: {reason}"),
            };
            format!("{}|{}|{outcome}", r.dataset, r.algorithm)
        })
        .collect()
}

fn temp_checkpoint(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "oeb_parallel_sweep_{tag}_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance property: `--threads 4` produces a byte-identical
    /// report to `--threads 1` on every deterministic field, for
    /// arbitrary dataset seeds and run seeds.
    #[test]
    fn four_workers_match_one_worker_bit_for_bit(
        data_seed in 0u64..50,
        run_seed in 0u64..50,
    ) {
        let datasets = grid_datasets(data_seed);
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveGbdt, Algorithm::Arf];
        let mut cfg = HarnessConfig {
            seed: run_seed,
            ..Default::default()
        };
        cfg.learner.epochs = 1;

        let sequential = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        let parallel = run_sweep(&datasets, &algorithms, &cfg, None, None, 4).unwrap();
        prop_assert_eq!(digest(&sequential), digest(&parallel));
    }

    /// Kill the parallel sweep mid-flight at an arbitrary cell, then
    /// resume from its checkpoint (again in parallel): the merged report
    /// equals the uninterrupted sequential run's.
    #[test]
    fn killed_parallel_sweep_resumes_to_the_sequential_report(
        kill_after in 0usize..6,
        threads in 1usize..5,
        run_seed in 0u64..30,
    ) {
        let datasets = grid_datasets(7);
        let algorithms = [Algorithm::NaiveDt, Algorithm::Arf, Algorithm::NaiveGbdt];
        let mut cfg = HarnessConfig {
            seed: run_seed,
            ..Default::default()
        };
        cfg.learner.epochs = 1;

        let uninterrupted = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        prop_assert_eq!(uninterrupted.records.len(), 6);

        let path = temp_checkpoint(&format!("{kill_after}_{threads}_{run_seed}"));
        let partial =
            run_sweep(&datasets, &algorithms, &cfg, Some(&path), Some(kill_after), threads)
                .unwrap();
        // The partial report is a prefix of the sequential one.
        prop_assert_eq!(
            digest(&partial),
            digest(&uninterrupted)[..partial.records.len()].to_vec()
        );
        let resumed =
            run_sweep(&datasets, &algorithms, &cfg, Some(&path), None, threads).unwrap();
        let checkpoint_lines = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(digest(&resumed), digest(&uninterrupted));
        // No cell ran twice: one checkpoint line per grid cell.
        prop_assert_eq!(checkpoint_lines, 6);
    }

    /// Supervision acceptance property: with a retry budget armed but no
    /// deadline configured (and no faults, so the budget is never spent),
    /// a supervised 4-worker sweep is bit-identical to the unsupervised
    /// single-worker run — supervision is a strict no-op on healthy
    /// streams.
    #[test]
    fn armed_supervision_is_a_noop_on_healthy_streams(
        data_seed in 0u64..50,
        run_seed in 0u64..50,
    ) {
        let datasets = grid_datasets(data_seed);
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveGbdt, Algorithm::Arf];
        let mut cfg = HarnessConfig {
            seed: run_seed,
            ..Default::default()
        };
        cfg.learner.epochs = 1;
        let policy = SupervisePolicy {
            max_retries: 2,
            backoff_base: std::time::Duration::from_millis(1),
            ..SupervisePolicy::unsupervised()
        };

        let unsupervised = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        let supervised =
            run_sweep_supervised(&datasets, &algorithms, &cfg, None, None, 4, &policy).unwrap();
        prop_assert_eq!(digest(&unsupervised), digest(&supervised));
        let s = supervised.supervision();
        prop_assert_eq!(s.retries, 0);
        prop_assert_eq!(s.quarantined, 0);
    }

    /// A logical windows budget times cells out identically at any
    /// worker count — the deadline is part of the deterministic
    /// contract, not a wall-clock artefact.
    #[test]
    fn logical_deadlines_are_deterministic_across_workers(
        threads in 1usize..5,
        run_seed in 0u64..30,
    ) {
        let datasets = grid_datasets(11);
        let algorithms = [Algorithm::NaiveDt, Algorithm::Arf];
        let mut cfg = HarnessConfig {
            seed: run_seed,
            ..Default::default()
        };
        cfg.learner.epochs = 1;
        let policy = SupervisePolicy {
            max_windows: Some(2),
            ..SupervisePolicy::unsupervised()
        };

        let reference =
            run_sweep_supervised(&datasets, &algorithms, &cfg, None, None, 1, &policy).unwrap();
        prop_assert!(
            reference.timed_out().count() > 0,
            "a 2-window budget must time out some cell"
        );
        let replay =
            run_sweep_supervised(&datasets, &algorithms, &cfg, None, None, threads, &policy)
                .unwrap();
        prop_assert_eq!(digest(&reference), digest(&replay));
    }
}
