//! Cost-ordered claiming must be a pure scheduling decision. For
//! arbitrary stream seeds and arbitrary (even adversarial) cost models,
//! [`run_sweep_scheduled`] under `Schedule::Cost` is bit-identical
//! (modulo wall-clock fields) to the FIFO sweep at both 1 and 4
//! workers: the model only permutes the claim order, never what a cell
//! computes.
//!
//! This file holds exactly one test on purpose: oeb-trace state is
//! process-global, so the property owns the whole test binary.

use oeb_core::{
    run_sweep, run_sweep_scheduled, Algorithm, CostClass, CostModel, HarnessConfig, RunOutcome,
    Schedule, SupervisePolicy, SweepReport,
};
use oeb_synth::{generate, Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::Domain;
use proptest::prelude::*;

fn tiny_spec(classification: bool, seed: u64) -> StreamSpec {
    StreamSpec {
        name: if classification {
            "cost-clf".into()
        } else {
            "cost-reg".into()
        },
        domain: Domain::Others,
        n_rows: 240,
        n_numeric: 3,
        categorical: vec![],
        task: if classification {
            TaskSpec::Classification {
                n_classes: 2,
                mechanism: LabelMechanism::XToY,
                balance: Balance::Balanced,
                label_noise: 0.02,
            }
        } else {
            TaskSpec::Regression { noise: 0.1 }
        },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 60,
        seed,
    }
}

fn quick_config(seed: u64) -> HarnessConfig {
    let mut cfg = HarnessConfig {
        seed,
        window_factor: 0.25,
        ..Default::default()
    };
    cfg.learner.epochs = 1;
    cfg.learner.hidden = vec![4];
    cfg.learner.ensemble_size = 1;
    cfg.learner.buffer_size = 20;
    cfg
}

/// Report equality modulo wall-clock timing fields.
fn same_modulo_timing(a: &SweepReport, b: &SweepReport) -> bool {
    a.records.len() == b.records.len()
        && a.records.iter().zip(&b.records).all(|(x, y)| {
            x.dataset == y.dataset
                && x.algorithm == y.algorithm
                && match (&x.outcome, &y.outcome) {
                    (RunOutcome::Completed(p), RunOutcome::Completed(q)) => {
                        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                        bits(&p.per_window_loss) == bits(&q.per_window_loss)
                            && p.mean_loss.to_bits() == q.mean_loss.to_bits()
                            && p.items == q.items
                            && p.degradations == q.degradations
                    }
                    (o1, o2) => o1 == o2,
                }
        })
}

/// An arbitrary cost model over the learner classes in play, including
/// negative slopes and a class the grid never uses — a wrong or
/// adversarial model may waste utilization but must not change results.
fn arb_model() -> impl Strategy<Value = CostModel> {
    let class = (any::<u32>(), any::<u32>()).prop_map(|(a, b)| CostClass {
        a: a as f64 - f64::from(u32::MAX / 2),
        b: f64::from(b % 2_000) - 1_000.0,
        samples: 1,
    });
    proptest::collection::vec(class, 3).prop_map(|classes| {
        let mut model = CostModel::default();
        for (name, c) in ["Naive-DT", "Naive-NN", "never-runs"].iter().zip(classes) {
            model.classes.insert((*name).to_string(), c);
        }
        model
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn cost_schedule_only_permutes_the_claim_order(seed in 0u64..16, model in arb_model()) {
        let datasets = vec![
            generate(&tiny_spec(true, seed), 0),
            generate(&tiny_spec(false, seed.wrapping_add(7)), 0),
        ];
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveNn];
        let cfg = quick_config(seed);
        let policy = SupervisePolicy::unsupervised();
        let schedule = Schedule::Cost(model);

        // FIFO reference (also warms the synth/prepare caches so every
        // pass sees identical cache state).
        let fifo =
            run_sweep(&datasets, &algorithms, &cfg, None, None, 4).expect("valid sweep config");

        for threads in [1usize, 4] {
            let cost = run_sweep_scheduled(
                &datasets,
                &algorithms,
                &cfg,
                None,
                None,
                threads,
                &policy,
                &schedule,
            )
            .expect("valid sweep config");
            prop_assert!(
                same_modulo_timing(&fifo, &cost),
                "cost-ordered sweep diverged from FIFO at {} workers",
                threads
            );
        }
    }
}
