//! Tracing must be a pure observer. For arbitrary stream seeds, a
//! 4-thread [`run_sweep`] with tracing enabled is bit-identical (modulo
//! wall-clock fields) to the same sweep with tracing disabled, and every
//! schedule-invariant counter — prepare-cache hits, window counts, fault
//! events — is identical across thread counts.
//!
//! This file holds exactly one test on purpose: oeb-trace state is
//! process-global, so the property owns the whole test binary.

use std::collections::BTreeMap;

use oeb_core::{run_sweep, Algorithm, HarnessConfig, RunOutcome, SweepReport};
use oeb_faults::{inject_dataset, FaultPlan};
use oeb_synth::{generate, Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::Domain;
use proptest::prelude::*;

fn tiny_spec(classification: bool, seed: u64) -> StreamSpec {
    StreamSpec {
        name: if classification {
            "trace-clf".into()
        } else {
            "trace-reg".into()
        },
        domain: Domain::Others,
        n_rows: 240,
        n_numeric: 3,
        categorical: vec![],
        task: if classification {
            TaskSpec::Classification {
                n_classes: 2,
                mechanism: LabelMechanism::XToY,
                balance: Balance::Balanced,
                label_noise: 0.02,
            }
        } else {
            TaskSpec::Regression { noise: 0.1 }
        },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 60,
        seed,
    }
}

fn quick_config(seed: u64) -> HarnessConfig {
    let mut cfg = HarnessConfig {
        seed,
        window_factor: 0.25,
        ..Default::default()
    };
    cfg.learner.epochs = 1;
    cfg.learner.hidden = vec![4];
    cfg.learner.ensemble_size = 1;
    cfg.learner.buffer_size = 20;
    cfg
}

/// Rates high enough that every seed injects at least one fault.
fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        nan_burst: 0.8,
        cell_corruption: 0.05,
        label_noise: 0.8,
        drop_window: 0.2,
        duplicate_window: 0.2,
        truncate_window: 0.2,
        schema_violation: 0.2,
        all_missing_column: 0.2,
    }
}

/// Report equality modulo wall-clock timing fields.
fn same_modulo_timing(a: &SweepReport, b: &SweepReport) -> bool {
    a.records.len() == b.records.len()
        && a.records.iter().zip(&b.records).all(|(x, y)| {
            x.dataset == y.dataset
                && x.algorithm == y.algorithm
                && match (&x.outcome, &y.outcome) {
                    (RunOutcome::Completed(p), RunOutcome::Completed(q)) => {
                        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                        bits(&p.per_window_loss) == bits(&q.per_window_loss)
                            && p.mean_loss.to_bits() == q.mean_loss.to_bits()
                            && p.items == q.items
                            && p.degradations == q.degradations
                    }
                    (o1, o2) => o1 == o2,
                }
        })
}

/// One traced pass: reset instruments, sweep at `threads`, inject a
/// faulty stream (for the fault counters), and return the report plus
/// the schedule-invariant counters.
fn traced_pass(
    datasets: &[oeb_tabular::StreamDataset],
    algorithms: &[Algorithm],
    cfg: &HarnessConfig,
    plan: &FaultPlan,
    threads: usize,
) -> (SweepReport, BTreeMap<String, u64>) {
    oeb_trace::reset();
    let report =
        run_sweep(datasets, algorithms, cfg, None, None, threads).expect("valid sweep config");
    let (_frames, _log) = inject_dataset(&datasets[0], plan, cfg.window_factor);
    (report, oeb_trace::snapshot().deterministic_counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn tracing_is_a_pure_observer(seed in 0u64..16) {
        let datasets = vec![
            generate(&tiny_spec(true, seed), 0),
            generate(&tiny_spec(false, seed.wrapping_add(7)), 0),
        ];
        let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveNn];
        let cfg = quick_config(seed);
        let plan = noisy_plan(seed);

        // Untraced reference pass (also warms the synth/prepare caches so
        // both traced passes see identical cache state).
        oeb_trace::disable();
        let untraced =
            run_sweep(&datasets, &algorithms, &cfg, None, None, 4).expect("valid sweep config");

        oeb_trace::enable();
        let (traced4, counters4) = traced_pass(&datasets, &algorithms, &cfg, &plan, 4);
        let (traced1, counters1) = traced_pass(&datasets, &algorithms, &cfg, &plan, 1);
        oeb_trace::disable();

        // Results are bit-identical with tracing off, on, and across
        // thread counts.
        prop_assert!(
            same_modulo_timing(&untraced, &traced4),
            "4-thread sweep diverged when tracing was enabled"
        );
        prop_assert!(
            same_modulo_timing(&traced4, &traced1),
            "sweep results differ across thread counts"
        );

        // Every schedule-invariant counter agrees between 4 threads and
        // 1 thread — executor.* is excluded by contract.
        prop_assert_eq!(&counters4, &counters1);

        // And the workload actually exercised the instruments.
        let get = |k: &str| counters4.get(k).copied().unwrap_or(0);
        prop_assert!(get("prepare.cache.hit") > 0, "no prepare-cache hits recorded");
        prop_assert!(get("harness.runs") > 0, "no harness runs recorded");
        let fault_events: u64 = counters4
            .iter()
            .filter(|(k, _)| k.starts_with("faults.injected."))
            .map(|(_, v)| v)
            .sum();
        prop_assert!(fault_events > 0, "no fault events recorded");
    }
}
