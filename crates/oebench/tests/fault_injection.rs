//! Fuzzing the resilient harness against fault-injected streams: for
//! arbitrary fault plans (every fault kind enabled at arbitrary rates)
//! over long synthetic streams, the harness must never panic — every run
//! either completes with a coherent report or fails with a typed
//! [`HarnessError`] — and the checkpointed sweep must resume to the same
//! report an uninterrupted sweep produces.

use oeb_core::{
    run_sweep, try_run_frames, Algorithm, DegradePolicy, HarnessConfig, HarnessError, RunOutcome,
    SweepReport,
};
use oeb_faults::{FaultInjector, FaultPlan, FrameVec, WindowFrame};
use oeb_linalg::Matrix;
use oeb_synth::{generate, Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::{Domain, Task};
use proptest::prelude::*;

/// A deterministic synthetic classification stream of `windows` windows
/// with `rows` samples of `cols` features each — no RNG, so every
/// proptest case sees the same clean stream and only the fault plan
/// varies.
fn synthetic_frames(windows: usize, rows: usize, cols: usize) -> Vec<WindowFrame> {
    (0..windows)
        .map(|w| {
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|r| {
                    (0..cols)
                        .map(|c| {
                            let t = (w * rows + r) as f64;
                            (t * 0.37 + c as f64 * 1.3).sin() + 0.05 * c as f64
                        })
                        .collect()
                })
                .collect();
            let targets = data.iter().map(|row| f64::from(row[0] > 0.0)).collect();
            WindowFrame {
                index: w,
                features: Matrix::from_rows(&data),
                targets,
            }
        })
        .collect()
}

/// A deterministic synthetic regression stream: the target is a smooth
/// function of the features, so a healthy learner's loss stays finite
/// and any non-finite loss is attributable to injected poison.
fn regression_frames(windows: usize, rows: usize, cols: usize) -> Vec<WindowFrame> {
    (0..windows)
        .map(|w| {
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|r| {
                    (0..cols)
                        .map(|c| {
                            let t = (w * rows + r) as f64;
                            (t * 0.37 + c as f64 * 1.3).sin() + 0.05 * c as f64
                        })
                        .collect()
                })
                .collect();
            let targets = data
                .iter()
                .map(|row| row.iter().sum::<f64>() * 0.5)
                .collect();
            WindowFrame {
                index: w,
                features: Matrix::from_rows(&data),
                targets,
            }
        })
        .collect()
}

/// An arbitrary plan with *every* fault kind enabled.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0..0.3f64,
        0.0..0.05f64,
        0.0..0.2f64,
        0.0..0.15f64,
        0.0..0.15f64,
        0.0..0.2f64,
        0.0..0.15f64,
        0.0..0.2f64,
    )
        .prop_map(
            |(seed, nan, cell, label, drop, dup, trunc, schema, missing)| FaultPlan {
                seed,
                nan_burst: nan,
                cell_corruption: cell,
                label_noise: label,
                drop_window: drop,
                duplicate_window: dup,
                truncate_window: trunc,
                schema_violation: schema,
                all_missing_column: missing,
            },
        )
}

fn resilient_config() -> HarnessConfig {
    let mut cfg = HarnessConfig {
        degrade: DegradePolicy::resilient(),
        ..Default::default()
    };
    cfg.learner.epochs = 1;
    cfg
}

fn tiny_spec(classification: bool, seed: u64) -> StreamSpec {
    StreamSpec {
        name: if classification {
            "fuzz-clf".into()
        } else {
            "fuzz-reg".into()
        },
        domain: Domain::Others,
        n_rows: 300,
        n_numeric: 3,
        categorical: vec![],
        task: if classification {
            TaskSpec::Classification {
                n_classes: 2,
                mechanism: LabelMechanism::XToY,
                balance: Balance::Balanced,
                label_noise: 0.02,
            }
        } else {
            TaskSpec::Regression { noise: 0.1 }
        },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 50,
        seed,
    }
}

/// Report equality modulo wall-clock timing fields.
fn same_modulo_timing(a: &SweepReport, b: &SweepReport) -> bool {
    a.records.len() == b.records.len()
        && a.records.iter().zip(&b.records).all(|(x, y)| {
            x.dataset == y.dataset
                && x.algorithm == y.algorithm
                && match (&x.outcome, &y.outcome) {
                    (RunOutcome::Completed(p), RunOutcome::Completed(q)) => {
                        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                        bits(&p.per_window_loss) == bits(&q.per_window_loss)
                            && p.mean_loss.to_bits() == q.mean_loss.to_bits()
                            && p.items == q.items
                            && p.degradations == q.degradations
                    }
                    (o1, o2) => o1 == o2,
                }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any fault plan over a 600-window stream: the resilient harness
    /// never panics and always produces a complete, coherent report.
    #[test]
    fn chaotic_streams_never_panic(plan in arb_plan()) {
        let frames = synthetic_frames(600, 4, 3);
        let mut source = FaultInjector::new(FrameVec::new(frames), plan);
        let result = try_run_frames(
            &mut source,
            Task::Classification { n_classes: 2 },
            "fuzz",
            Algorithm::NaiveDt,
            &resilient_config(),
            None,
            Some(3),
        );
        match result {
            Ok(r) => {
                prop_assert!(r.per_window_loss.len() <= 2 * 600, "more losses than windows");
                for l in &r.per_window_loss {
                    prop_assert!(
                        l.is_nan() || (0.0..=1.0).contains(l),
                        "classification loss {l} out of range"
                    );
                }
                prop_assert!(r.mean_loss.is_nan() || r.mean_loss >= 0.0);
            }
            // Extreme rates may legally destroy the stream (e.g. every
            // window dropped) — but the failure must be typed.
            Err(e) => prop_assert!((3..=14).contains(&e.exit_code()), "{e}"),
        }
    }

    /// The same seed injects the same faults and yields a bit-identical
    /// run, frame for frame.
    #[test]
    fn chaotic_runs_are_reproducible(seed in any::<u64>()) {
        let plan = FaultPlan::chaos(seed);
        let run = |plan: FaultPlan| {
            let mut source = FaultInjector::new(FrameVec::new(synthetic_frames(120, 5, 3)), plan);
            try_run_frames(
                &mut source,
                Task::Classification { n_classes: 2 },
                "fuzz",
                Algorithm::NaiveDt,
                &resilient_config(),
                None,
                Some(3),
            )
        };
        match (run(plan.clone()), run(plan)) {
            (Ok(a), Ok(b)) => {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
                prop_assert_eq!(bits(&a.per_window_loss), bits(&b.per_window_loss));
                prop_assert_eq!(a.degradations, b.degradations);
                prop_assert_eq!(a.items, b.items);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.kind(), b.kind()),
            (a, b) => prop_assert!(false, "non-deterministic outcome: {a:?} vs {b:?}"),
        }
    }

    /// The strict policy never silently absorbs structural damage: with
    /// degradation disabled, a run over a schema-violating stream either
    /// fails typed or the injector happened to leave the schema alone.
    #[test]
    fn strict_policy_fails_typed_on_structural_damage(seed in any::<u64>()) {
        let mut plan = FaultPlan::none(seed);
        plan.schema_violation = 0.5;
        let mut source = FaultInjector::new(FrameVec::new(synthetic_frames(40, 4, 3)), plan);
        let mut cfg = HarnessConfig {
            degrade: DegradePolicy::strict(),
            ..Default::default()
        };
        cfg.learner.epochs = 1;
        let result = try_run_frames(
            &mut source,
            Task::Classification { n_classes: 2 },
            "fuzz",
            Algorithm::NaiveDt,
            &cfg,
            None,
            Some(3),
        );
        if let Err(e) = result {
            prop_assert!(
                matches!(e, HarnessError::SchemaMismatch { .. }),
                "unexpected failure kind: {e}"
            );
        }
    }

    /// Reset-with-retry: one NaN-target window after the warm-up drives
    /// the regression loss non-finite. The resilient policy must spend
    /// exactly one retry per model reset — the degradation entries are
    /// numbered `(1/2)`, `(2/2)`, never skipping or repeating a slot —
    /// and the surviving report is degraded-but-finite. The default
    /// (no-reset) policy lets the NaN propagate to the mean with the
    /// budget untouched, and a zero budget fails typed.
    #[test]
    fn nonfinite_loss_spends_exactly_one_retry_per_reset(poison in 2usize..9) {
        let mut frames = regression_frames(10, 6, 3);
        for t in &mut frames[poison].targets {
            *t = f64::NAN;
        }
        let run = |cfg: &HarnessConfig| {
            let mut source = FrameVec::new(frames.clone());
            try_run_frames(
                &mut source,
                Task::Regression,
                "reset-fuzz",
                Algorithm::NaiveDt,
                cfg,
                None,
                Some(3),
            )
        };

        let resilient = run(&resilient_config()).unwrap();
        let resets: Vec<&String> = resilient
            .degradations
            .iter()
            .filter(|d| d.contains("non-finite loss, model reset"))
            .collect();
        prop_assert!(!resets.is_empty(), "no reset recorded: {:?}", resilient.degradations);
        prop_assert!(resets.len() <= 2, "budget overspent: {resets:?}");
        for (i, entry) in resets.iter().enumerate() {
            prop_assert!(
                entry.contains(&format!("({}/2)", i + 1)),
                "reset {} must spend exactly one retry: {entry:?}",
                i + 1
            );
        }
        prop_assert!(resilient.mean_loss.is_finite(), "resets must keep the mean finite");
        prop_assert!(resilient.per_window_loss.iter().all(|l| l.is_finite()));

        let mut plain_cfg = resilient_config();
        plain_cfg.degrade = DegradePolicy::default();
        let plain = run(&plain_cfg).unwrap();
        prop_assert!(plain.mean_loss.is_nan(), "without resets the NaN must propagate");
        prop_assert!(!plain.degradations.iter().any(|d| d.contains("model reset")));

        let mut no_budget = resilient_config();
        no_budget.degrade.max_retries = 0;
        match run(&no_budget) {
            Err(HarnessError::NonFiniteLoss { retries, .. }) => prop_assert_eq!(retries, 0),
            other => prop_assert!(false, "expected NonFiniteLoss, got {other:?}"),
        }
    }

    /// Kill the sweep after `k` runs and resume from its checkpoint: the
    /// final report is identical to an uninterrupted sweep's (timing
    /// aside), and no (dataset, algorithm) pair is ever run twice.
    #[test]
    fn interrupted_sweeps_resume_identically(seed in 0u64..20, k in 0usize..4) {
        let datasets = vec![generate(&tiny_spec(true, seed), seed), generate(&tiny_spec(false, seed), seed)];
        let algorithms = [Algorithm::NaiveDt, Algorithm::Arf];
        let cfg = resilient_config();

        let uninterrupted = run_sweep(&datasets, &algorithms, &cfg, None, None, 1).unwrap();
        prop_assert_eq!(uninterrupted.records.len(), 4);

        let path = std::env::temp_dir().join(format!(
            "oeb_fuzz_resume_{}_{seed}_{k}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let partial = run_sweep(&datasets, &algorithms, &cfg, Some(&path), Some(k), 2).unwrap();
        prop_assert!(partial.records.len() <= uninterrupted.records.len());
        let resumed = run_sweep(&datasets, &algorithms, &cfg, Some(&path), None, 2).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            same_modulo_timing(&resumed, &uninterrupted),
            "resumed sweep diverged from the uninterrupted run"
        );
    }
}
