//! Property-based tests for the pipeline layer: harness loss semantics,
//! SEA capacity, recommendation totality, and report formatting over
//! arbitrary configurations.

use oeb_core::{
    assign_levels, fmt_mean_std, recommend, run_stream, Algorithm, HarnessConfig, ImputerChoice,
    LearnerConfig, Scenario,
};
use oeb_synth::{generate, Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::Domain;
use proptest::prelude::*;

fn tiny_spec(classification: bool, seed: u64) -> StreamSpec {
    StreamSpec {
        name: "prop-harness".into(),
        domain: Domain::Others,
        n_rows: 400,
        n_numeric: 3,
        categorical: vec![],
        task: if classification {
            TaskSpec::Classification {
                n_classes: 2,
                mechanism: LabelMechanism::XToY,
                balance: Balance::Balanced,
                label_noise: 0.02,
            }
        } else {
            TaskSpec::Regression { noise: 0.1 }
        },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 50,
        seed,
    }
}

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Low),
        Just(Level::MediumLow),
        Just(Level::MediumHigh),
        Just(Level::High),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn classification_losses_are_error_rates(seed in 0u64..30) {
        let d = generate(&tiny_spec(true, seed), seed);
        let cfg = HarnessConfig {
            learner: LearnerConfig { epochs: 1, ..Default::default() },
            ..Default::default()
        };
        let r = run_stream(&d, Algorithm::NaiveDt, &cfg).expect("DT applies");
        for l in &r.per_window_loss {
            prop_assert!((0.0..=1.0).contains(l), "error rate {l} out of range");
        }
        prop_assert!(r.items > 0);
        prop_assert!(r.throughput > 0.0);
    }

    #[test]
    fn imputer_choice_never_changes_window_count(seed in 0u64..10) {
        let d = generate(&tiny_spec(false, seed), seed);
        let mut counts = Vec::new();
        for imputer in [
            ImputerChoice::Knn(2),
            ImputerChoice::Regression,
            ImputerChoice::Mean,
            ImputerChoice::Zero,
        ] {
            let cfg = HarnessConfig { imputer, ..Default::default() };
            let mut cfg = cfg;
            cfg.learner.epochs = 1;
            let r = run_stream(&d, Algorithm::NaiveDt, &cfg).expect("DT applies");
            counts.push(r.per_window_loss.len());
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn recommendation_is_total_and_nonempty(
        classification in any::<bool>(),
        drift in arb_level(),
        anomaly in arb_level(),
        missing in arb_level(),
        constrained in any::<bool>(),
    ) {
        let recs = recommend(&Scenario {
            classification,
            drift,
            anomaly,
            missing,
            resource_constrained: constrained,
        });
        prop_assert!(!recs.is_empty());
        // No duplicates in a recommendation list.
        for i in 0..recs.len() {
            for j in (i + 1)..recs.len() {
                prop_assert!(recs[i] != recs[j]);
            }
        }
    }

    #[test]
    fn level_assignment_is_monotone(values in prop::collection::vec(0.0..1.0f64, 4..40)) {
        let levels = assign_levels(&values);
        prop_assert_eq!(levels.len(), values.len());
        // Higher value never gets a strictly lower level.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] {
                    prop_assert!(levels[i] >= levels[j]);
                }
            }
        }
    }

    #[test]
    fn mean_std_formatting_is_parseable(mean in -100.0..100.0f64, std in 0.0..10.0f64) {
        let s = fmt_mean_std(mean, std);
        let parts: Vec<&str> = s.split('±').collect();
        prop_assert_eq!(parts.len(), 2);
        let m: f64 = parts[0].parse().expect("mean parses");
        prop_assert!((m - mean).abs() < 0.001);
    }

    /// Tentpole contract of the intra-cell ARF parallelism: the lockstep
    /// window trainer at 4 workers must reproduce the serial
    /// `learn_window` forest bit-for-bit — across drifting streams that
    /// trigger warning-spawned background trees, drift promotions and
    /// detector resets, and across ensemble sizes and window splits.
    #[test]
    fn arf_lockstep_training_matches_serial_bitwise(
        seed in 0u64..500,
        n_trees in 1usize..6,
        n_rows in 400usize..2200,
        flip_at in 0.3..0.7f64,
        n_windows in 1usize..4,
    ) {
        use oeb_linalg::Matrix;
        use oeb_tree::{AdaptiveRandomForest, ArfConfig};

        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|i| {
                let s = seed.wrapping_mul(0x9e37).wrapping_add(i as u64);
                vec![(s % 100) as f64, ((s >> 8) % 50) as f64, (i % 4) as f64]
            })
            .collect();
        let flip = (n_rows as f64 * flip_at) as usize;
        let ys: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| f64::from((r[0] >= 50.0) ^ (i >= flip)))
            .collect();
        let cfg = ArfConfig {
            n_trees,
            seed: seed ^ 0x617266,
            ..Default::default()
        };
        let mut serial = AdaptiveRandomForest::new(3, 2, cfg);
        let mut lockstep = AdaptiveRandomForest::new(3, 2, cfg);
        // Split the stream into windows like the harness does; each
        // window goes through both trainers.
        let per = n_rows.div_ceil(n_windows);
        for chunk_start in (0..n_rows).step_by(per) {
            let end = (chunk_start + per).min(n_rows);
            let xs = Matrix::from_rows(&rows[chunk_start..end]);
            let ys_w = &ys[chunk_start..end];
            serial.learn_window(&xs, ys_w);
            oeb_core::arf_train_window_lockstep(&mut lockstep, &xs, ys_w, 4);
            prop_assert_eq!(
                serial.digest(),
                lockstep.digest(),
                "forest diverged after window ending at row {}", end
            );
        }
        prop_assert_eq!(serial.n_resets, lockstep.n_resets);
    }
}
