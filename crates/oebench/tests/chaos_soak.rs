//! End-to-end chaos-soak: execute a slice of the fault × drift matrix
//! under full supervision with tracing enabled, so every invariant the
//! harness checks — panic isolation, cell accounting, forced
//! quarantine, clean-control bit-identity, deterministic logical
//! deadlines, and the `supervise.*` counter contract — is exercised in
//! one process.
//!
//! A single test keeps the global trace counters free of interference:
//! the harness compares counter deltas against record-derived totals,
//! which only holds when no concurrent supervision runs in the same
//! process.

use oeb_core::{run_chaos_matrix, ChaosOptions};

#[test]
fn chaos_matrix_holds_every_supervision_invariant() {
    // Tracing on: the counter-contract checks inside the harness engage.
    oeb_trace::enable();
    let options = ChaosOptions {
        seed: 42,
        max_cells: Some(12),
        threads: 2,
        max_retries: 2,
        rows: 360,
    };

    let report = run_chaos_matrix(&options).expect("chaos harness failed");
    assert!(
        report.passed(),
        "supervision invariants violated: {:#?}",
        report.violations
    );
    assert_eq!(report.cells.len(), 12, "every scenario must report a cell");

    // The diagonal enumeration visits the drop-all axis exactly once in
    // the first 12 cells; dropping every window is a retryable
    // EmptyStream failure, so that cell must quarantine after spending
    // the full retry budget.
    let quarantined: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.status == "quarantined")
        .collect();
    assert!(
        quarantined.iter().any(|c| c.fault == "drop-all"),
        "drop-all must quarantine; cells: {:#?}",
        report.cells
    );
    for cell in &quarantined {
        assert!(
            !cell.detail.is_empty(),
            "quarantined cell without fault coordinates"
        );
    }
    assert!(report.summary.quarantined >= 1);
    assert!(
        report.summary.retries >= options.max_retries,
        "a quarantine must spend the whole retry budget"
    );
    // The deadline control times out deterministically on both runs.
    assert!(report.summary.timeouts >= 2);
    assert_eq!(report.summary.wall_timeouts, 0, "no wall deadline was set");

    // JSON report shape for the CI gate.
    let json = report.to_json();
    assert_eq!(json["cells"].as_array().unwrap().len(), 12);
    assert!(json["summary"]["quarantined"].as_u64().unwrap() >= 1);
    assert_eq!(json["violations"].as_array().unwrap().len(), 0);

    // Replaying the identical options reproduces the identical report:
    // fault injection, retry jitter and quarantine decisions all derive
    // from the seed.
    let replay = run_chaos_matrix(&options).expect("chaos replay failed");
    assert!(
        replay.passed(),
        "replay violations: {:#?}",
        replay.violations
    );
    assert_eq!(report.cells, replay.cells, "chaos run is not replayable");
    assert_eq!(report.summary, replay.summary);
}
