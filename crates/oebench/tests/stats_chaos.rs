//! Mode-equivalence fuzzing for the statistics extractor: for arbitrary
//! fault plans (NaN bursts, dropped / duplicated / truncated windows,
//! all-missing columns) over a synthetic stream, [`StatsMode::Full`] and
//! [`StatsMode::Incremental`] must produce bit-identical statistics — and
//! the answer must not depend on the executor thread count.
//!
//! Schema violations are the one fault kind held at zero: they change the
//! column count mid-stream, so the damaged frames cannot be reassembled
//! into a single rectangular [`Table`] for the extractor to consume (the
//! harness-level handling of that fault is covered by
//! `fault_injection.rs`).

use oeb_core::{extract_stats, set_default_threads, StatsConfig, StatsMode};
use oeb_faults::{inject_dataset, FaultPlan, WindowFrame};
use oeb_synth::{generate, DriftPattern, Level, StreamSpec, TaskSpec};
use oeb_tabular::{Column, Domain, Field, Schema, StreamDataset, Table, Task};
use proptest::prelude::*;

/// A small drifting regression stream to damage: 6 windows of 50 rows,
/// 3 numeric features, mild ambient missingness.
fn base_dataset(seed: u64) -> StreamDataset {
    let spec = StreamSpec {
        name: "chaos-stats".into(),
        domain: Domain::Others,
        n_rows: 300,
        n_numeric: 3,
        categorical: vec![],
        task: TaskSpec::Regression { noise: 0.1 },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 50,
        seed,
    };
    generate(&spec, seed)
}

/// Every fault kind that preserves the column count, at arbitrary rates.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0..0.3f64,
        0.0..0.05f64,
        0.0..0.2f64,
        0.0..0.2f64,
        0.0..0.2f64,
        0.0..0.2f64,
        0.0..0.25f64,
    )
        .prop_map(
            |(seed, nan, cell, label, drop, dup, trunc, missing)| FaultPlan {
                seed,
                nan_burst: nan,
                cell_corruption: cell,
                label_noise: label,
                drop_window: drop,
                duplicate_window: dup,
                truncate_window: trunc,
                schema_violation: 0.0,
                all_missing_column: missing,
            },
        )
}

/// Reassembles the surviving (damaged) frames into a regression dataset
/// the extractor can window. Returns `None` when the plan destroyed the
/// whole stream.
fn dataset_from_frames(frames: &[WindowFrame], window: usize) -> Option<StreamDataset> {
    let first = frames.first()?;
    let n_features = first.features.cols();
    let mut feature_data: Vec<Vec<f64>> = vec![Vec::new(); n_features];
    let mut targets: Vec<f64> = Vec::new();
    for frame in frames {
        assert_eq!(
            frame.features.cols(),
            n_features,
            "schema violations are disabled, so the column count is stable"
        );
        for r in 0..frame.features.rows() {
            for (c, col) in feature_data.iter_mut().enumerate() {
                col.push(frame.features[(r, c)]);
            }
        }
        targets.extend_from_slice(&frame.targets);
    }
    if targets.is_empty() {
        return None;
    }
    let mut fields: Vec<Field> = (0..n_features)
        .map(|c| Field::numeric(format!("f{c}")))
        .collect();
    fields.push(Field::numeric("target"));
    let mut columns: Vec<Column> = feature_data.into_iter().map(Column::Numeric).collect();
    columns.push(Column::Numeric(targets));
    Some(StreamDataset::new(
        "chaos-stats",
        Domain::Others,
        Task::Regression,
        Table::new(Schema::new(fields), columns),
        n_features,
        window,
    ))
}

fn stats_in_mode(d: &StreamDataset, mode: StatsMode) -> Vec<(&'static str, u64)> {
    extract_stats(
        d,
        &StatsConfig {
            mode,
            ..Default::default()
        },
    )
    .field_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Incremental == full, bit for bit, on chaos streams — at 1 and 4
    /// executor threads. The thread count feeds the incremental engine's
    /// parallel per-column pass, so agreement across counts pins the
    /// maintained statistics as order-independent.
    #[test]
    fn incremental_matches_full_on_chaos_streams(plan in arb_plan(), seed in 0u64..8) {
        let clean = base_dataset(seed);
        let (frames, _log) = inject_dataset(&clean, &plan, 1.0);
        // Extreme drop rates may legally erase every window; nothing to
        // compare in that case.
        if let Some(damaged) = dataset_from_frames(&frames, clean.default_window) {

        let mut reports: Vec<(String, Vec<(&'static str, u64)>)> = Vec::new();
            for threads in [1usize, 4] {
                set_default_threads(Some(threads));
                for mode in [StatsMode::Full, StatsMode::Incremental] {
                    reports.push((
                        format!("{} @ {threads} threads", mode.label()),
                        stats_in_mode(&damaged, mode),
                    ));
                }
            }
            set_default_threads(None);

            let (ref_label, reference) = &reports[0];
            for (label, bits) in &reports[1..] {
                for ((name, a), (_, b)) in reference.iter().zip(bits) {
                    prop_assert_eq!(
                        *a,
                        *b,
                        "field {} differs between {} ({}) and {} ({})",
                        name,
                        ref_label,
                        f64::from_bits(*a),
                        label,
                        f64::from_bits(*b)
                    );
                }
            }
        }
    }
}
