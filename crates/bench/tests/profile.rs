//! End-to-end profiler contract over a real traced run: the per-stage
//! totals `oeb-profile` computes from the trace stream must equal the
//! `MetricsSnapshot` span aggregates exactly (both sum the same
//! nanosecond durations and floor once to microseconds), and the
//! rendered profile must be byte-identical whether the analysis fans
//! out over 1 or 4 threads.
//!
//! This file holds exactly one test on purpose: oeb-trace state is
//! process-global, so the property owns the whole test binary.

use oeb_bench::profile::{analyze, check_metrics, parse_trace, profile_json, render_profile};
use oeb_core::{run_sweep, Algorithm, HarnessConfig};
use oeb_synth::{generate, Balance, DriftPattern, LabelMechanism, Level, StreamSpec, TaskSpec};
use oeb_tabular::Domain;

fn tiny_spec(seed: u64) -> StreamSpec {
    StreamSpec {
        name: "profile-clf".into(),
        domain: Domain::Others,
        n_rows: 240,
        n_numeric: 3,
        categorical: vec![],
        task: TaskSpec::Classification {
            n_classes: 2,
            mechanism: LabelMechanism::XToY,
            balance: Balance::Balanced,
            label_noise: 0.02,
        },
        drift_pattern: DriftPattern::Gradual,
        drift_level: Level::MediumLow,
        anomaly_level: Level::Low,
        anomaly_events: vec![],
        missing_level: Level::MediumLow,
        availability: vec![],
        seasonal_cycles: 0.0,
        default_window: 60,
        seed,
    }
}

/// Serialise the buffered trace exactly as `write_trace_file` would.
fn drain_trace_text() -> String {
    let events = oeb_trace::drain_events();
    let mut text = String::new();
    for (id, ev) in events.iter().enumerate() {
        text.push_str(&oeb_trace::render_trace_event(id, ev));
        text.push('\n');
    }
    text.push_str(&oeb_trace::render_trace_footer(
        events.len(),
        oeb_trace::dropped_events(),
    ));
    text.push('\n');
    text
}

#[test]
fn profile_totals_match_the_metrics_snapshot_and_are_thread_invariant() {
    let datasets = vec![generate(&tiny_spec(3), 0)];
    let algorithms = [Algorithm::NaiveDt, Algorithm::NaiveNn];
    let mut cfg = HarnessConfig {
        seed: 3,
        window_factor: 0.25,
        ..Default::default()
    };
    cfg.learner.epochs = 1;
    cfg.learner.hidden = vec![4];
    cfg.learner.ensemble_size = 1;
    cfg.learner.buffer_size = 20;

    oeb_trace::reset();
    oeb_trace::enable();
    run_sweep(&datasets, &algorithms, &cfg, None, None, 4).expect("valid sweep config");
    // Snapshot and drain observe the same instrument state, in the
    // same order the CLI uses (trace file first, metrics second).
    let text = drain_trace_text();
    let snapshot = oeb_trace::snapshot();
    oeb_trace::disable();

    let trace = parse_trace(&text).expect("own trace parses");
    assert_eq!(trace.footer.expect("v2 footer").dropped, 0);
    let profile = analyze(&trace, 1);

    // Exact equality against the snapshot: same counts, same
    // nanosecond sums — not approximately, bit for bit.
    assert!(!snapshot.spans.is_empty(), "sweep recorded no spans");
    assert_eq!(profile.stages.len(), snapshot.spans.len());
    for (name, span) in &snapshot.spans {
        let stage = profile
            .stages
            .get(name)
            .unwrap_or_else(|| panic!("span {name:?} missing from the profile"));
        assert_eq!(stage.count, span.count, "span {name:?} count");
        assert_eq!(stage.total_ns, span.total_ns, "span {name:?} total_ns");
    }
    // The rendered metrics table cross-check agrees too.
    let table = oeb_trace::render_metrics_table(&snapshot);
    let checked = check_metrics(&profile, &table).expect("span totals match");
    assert_eq!(checked, snapshot.spans.len());

    // Cells were attributed: the harness funnel tags every run.
    assert!(!profile.cells.is_empty(), "no attributed cells");
    assert!(profile.cells.iter().all(|c| c.rows == 240));
    assert!(profile.makespan_ns >= profile.lower_bound_ns);

    // Analysis fan-out is invisible: 1-thread and 4-thread profiles
    // serialise to identical bytes, human table included.
    let p1 = analyze(&trace, 1);
    let p4 = analyze(&trace, 4);
    let json1 = serde_json::to_string_pretty(&profile_json(&p1, 10)).unwrap();
    let json4 = serde_json::to_string_pretty(&profile_json(&p4, 10)).unwrap();
    assert_eq!(json1, json4);
    assert_eq!(render_profile(&p1, 10), render_profile(&p4, 10));
}
