//! Microbenchmarks for the compute-kernel layer, emitted as
//! `BENCH_kernels.json`.
//!
//! Two comparisons, both against the retained pre-kernel reference
//! implementations so the speedup is measured against what the repo
//! actually shipped before the kernel layer:
//!
//! * **matmul** — GFLOP/s of the historical scalar `ikj` loop vs the
//!   register-blocked GEMM ([`oeb_linalg::kernels::matmul_blocked_into`])
//!   at three square sizes;
//! * **KNN imputation** — wall-clock of the brute-force ranking imputer
//!   ([`oeb_preprocess::impute::knn_impute_reference`]) vs the pruned
//!   bounded-neighbour-list rewrite behind
//!   [`oeb_preprocess::KnnImputer`].
//!
//! Every timed pair is also checked for bit-identical outputs — the
//! kernel layer's contract is "faster, same bits", and the benchmark
//! refuses to report a speedup for wrong answers.
//!
//! Each pair is timed with [`oeb_bench::warm_min_pair`]: `reps`
//! alternating warm passes per side, reporting the minimum (the noise
//! floor for a fixed deterministic workload).
//!
//! Usage: `bench_kernels [--quick] [--out FILE]`

use oeb_bench::warm_min_pair;
use oeb_linalg::{kernels, Matrix};
use oeb_preprocess::impute::knn_impute_reference;
use oeb_preprocess::{Imputer, KnnImputer};

struct Options {
    quick: bool,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let usage = "usage: bench_kernels [--quick] [--out FILE]";
    let mut opts = Options {
        quick: false,
        out: "BENCH_kernels.json".into(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("--out needs a path\n{usage}"))?;
            }
            _ => return Err(usage.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// Deterministic pseudo-random fill (same LCG family as the kernel unit
/// tests); benchmark inputs must not depend on ambient entropy.
fn lcg_vec(n: usize, seed: &mut u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// The pre-kernel `ikj` matmul, reproduced verbatim as the scalar
/// baseline (this is the loop `Matrix::matmul` shipped before the
/// kernel layer).
fn matmul_ikj_reference(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.as_mut_slice().fill(0.0);
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a[(i, k)];
            // oeb-lint: allow(float-eq) -- exact-zero sparsity skip, mirrors the shipped loop
            if v == 0.0 {
                continue;
            }
            let brow = b.row(k);
            let dst = out.row_mut(i);
            for (d, &x) in dst.iter_mut().zip(brow) {
                *d += v * x;
            }
        }
    }
}

fn bench_matmul(size: usize, reps: usize, seed: &mut u64) -> serde_json::Value {
    let a = Matrix::from_vec(size, size, lcg_vec(size * size, seed));
    let b = Matrix::from_vec(size, size, lcg_vec(size * size, seed));
    let mut scalar_out = Matrix::zeros(size, size);
    let mut blocked_out = Matrix::zeros(size, size);

    let (scalar_seconds, blocked_seconds) = warm_min_pair(
        reps,
        || matmul_ikj_reference(&a, &b, &mut scalar_out),
        || kernels::matmul_blocked_into(&a, &b, &mut blocked_out),
    );

    for (x, y) in scalar_out.as_slice().iter().zip(blocked_out.as_slice()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "blocked GEMM diverged from the scalar reference at size {size}"
        );
    }

    let flops = 2.0 * (size * size * size) as f64;
    let scalar_gflops = flops / scalar_seconds.max(1e-12) / 1e9;
    let blocked_gflops = flops / blocked_seconds.max(1e-12) / 1e9;
    let speedup = scalar_seconds / blocked_seconds.max(1e-12);
    eprintln!(
        "[bench_kernels] matmul {size}x{size}: scalar {scalar_gflops:.2} GFLOP/s, \
         blocked {blocked_gflops:.2} GFLOP/s ({speedup:.2}x)"
    );
    serde_json::json!({
        "size": size as u64,
        "scalar_seconds": scalar_seconds,
        "blocked_seconds": blocked_seconds,
        "scalar_gflops": scalar_gflops,
        "blocked_gflops": blocked_gflops,
        "speedup": speedup,
    })
}

/// A reference/window pair with `missing_pct`% cells blanked to NaN,
/// sized like a prepare-stage imputation call.
fn holey(rows: usize, cols: usize, missing_pct: u64, seed: &mut u64) -> Matrix {
    let mut data = lcg_vec(rows * cols, seed);
    for v in data.iter_mut() {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (*seed >> 33) % 100 < missing_pct {
            *v = f64::NAN;
        }
    }
    Matrix::from_vec(rows, cols, data)
}

fn bench_knn(
    window_rows: usize,
    ref_rows: usize,
    cols: usize,
    reps: usize,
    seed: &mut u64,
) -> serde_json::Value {
    let window = holey(window_rows, cols, 20, seed);
    let reference = holey(ref_rows, cols, 20, seed);
    let imputer = KnnImputer::default();

    let mut brute_out = Matrix::zeros(0, 0);
    let mut pruned_out = Matrix::zeros(0, 0);
    let (brute_seconds, pruned_seconds) = warm_min_pair(
        reps,
        || {
            let mut w = window.clone();
            knn_impute_reference(imputer.k, &mut w, &reference);
            brute_out = w;
        },
        || {
            let mut w = window.clone();
            imputer.impute(&mut w, &reference);
            pruned_out = w;
        },
    );

    for (x, y) in brute_out.as_slice().iter().zip(pruned_out.as_slice()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "pruned KNN imputation diverged from the brute-force reference"
        );
    }

    let speedup = brute_seconds / pruned_seconds.max(1e-12);
    eprintln!(
        "[bench_kernels] knn impute {window_rows}x{cols} vs {ref_rows} refs: \
         brute {brute_seconds:.4}s, pruned {pruned_seconds:.4}s ({speedup:.2}x)"
    );
    serde_json::json!({
        "window_rows": window_rows as u64,
        "reference_rows": ref_rows as u64,
        "cols": cols as u64,
        "missing_pct": 20u64,
        "k": imputer.k as u64,
        "brute_seconds": brute_seconds,
        "pruned_seconds": pruned_seconds,
        "speedup": speedup,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut seed = 0x0eb4_c0de_u64;

    let (sizes, reps): (&[usize], usize) = if opts.quick {
        (&[32, 64, 96], 3)
    } else {
        (&[64, 128, 256], 7)
    };
    let matmul: Vec<serde_json::Value> = sizes
        .iter()
        .map(|&s| bench_matmul(s, reps, &mut seed))
        .collect();

    let knn = if opts.quick {
        bench_knn(40, 120, 12, 3, &mut seed)
    } else {
        bench_knn(120, 500, 24, 5, &mut seed)
    };

    // One traced pass through the public dispatchers (the timed loops
    // above call the kernels directly, bypassing dispatch counting):
    // exercises the size-based GEMM dispatch, matvec, and the pruned
    // KNN candidate counters, then embeds the snapshot as the metrics
    // block.
    oeb_trace::reset();
    oeb_trace::enable();
    for &size in sizes {
        let a = Matrix::from_vec(size, size, lcg_vec(size * size, &mut seed));
        let b = Matrix::from_vec(size, size, lcg_vec(size * size, &mut seed));
        let mut out = Matrix::zeros(size, size);
        kernels::matmul_into(&a, &b, &mut out);
        let v = lcg_vec(size, &mut seed);
        let mut mv = Vec::new();
        kernels::matvec_into(&a, &v, &mut mv);
    }
    {
        let mut window = holey(40, 12, 20, &mut seed);
        let reference = holey(120, 12, 20, &mut seed);
        KnnImputer::default().impute(&mut window, &reference);
    }
    oeb_trace::disable();
    let metrics = oeb_bench::metrics_json(&oeb_trace::snapshot());

    let json = serde_json::json!({
        "benchmark": "compute kernels: blocked GEMM and pruned KNN imputation vs scalar references",
        "quick": opts.quick,
        "matmul": matmul,
        "knn_impute": knn,
        "metrics": metrics,
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&json).expect("json serialises"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!("[bench_kernels] -> {}", opts.out);
}
