//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p oeb-bench --release --bin repro -- all
//! cargo run -p oeb-bench --release --bin repro -- table4 fig10 --scale 0.2 --seeds 3
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match oeb_bench::parse_args(&args) {
        Ok(opts) => opts,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    match oeb_bench::run_repro(&opts) {
        Ok(outputs) => {
            for out in &outputs {
                println!("=== {} — {} ===\n{}", out.id, out.title, out.text);
            }
            eprintln!(
                "[repro] wrote {} artifacts to {}/",
                outputs.len() * 2,
                opts.out_dir
            );
        }
        Err(e) => {
            eprintln!("[repro] failed: {e}");
            std::process::exit(1);
        }
    }
}
