//! Validates an oeb-trace JSONL file against the exported schema (v2):
//! every span line is a JSON object with the required keys, `type` is
//! `"span"`, ids are monotone `0..n`, the numeric fields are unsigned
//! integers, and optional attribution fields (`dataset`, `learner`,
//! `cell_seed`, `rows`) are well-typed when present. The last line must
//! be the schema-v2 footer whose `events` count matches the span count.
//! Used by `ci.sh` to gate the traced smoke run.
//!
//! With `--counters <metrics.txt>` it additionally validates the
//! counters section of a `--metrics` table against the *generated*
//! counter vocabulary (`oeb_bench::counter_vocab::KNOWN_COUNTERS`,
//! emitted by `oeb-lint index --emit-vocab` from the workspace's
//! `Counter::new` construction sites): a typo'd or undeclared counter
//! name fails the gate instead of silently shipping an unknown key.
//!
//! Usage: `trace_check [<trace.jsonl>] [--counters <metrics.txt>]`;
//! exits 0 when valid, 1 with a line-numbered message otherwise, and
//! 3 — registered in `EXIT_CODES.md` — when the trace is structurally
//! valid but its footer records silently dropped events (the trace is
//! truncated and span totals can no longer match the metrics
//! snapshot). At least one of the two inputs is required —
//! `--counters` alone gates a metrics table from an untraced benchmark
//! (e.g. `bench_train`).

use std::process::exit;

use oeb_bench::counter_vocab::KNOWN_COUNTERS;

const REQUIRED: [&str; 7] = ["type", "id", "slot", "seq", "name", "start_us", "dur_us"];

/// Checks every row of the `counters` section of a rendered metrics
/// table against [`KNOWN_COUNTERS`].
fn check_counters(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        exit(2);
    });
    let mut in_counters = false;
    let mut seen = 0usize;
    for (i, line) in text.lines().enumerate() {
        if !line.starts_with(' ') {
            in_counters = line == "counters";
            continue;
        }
        if !in_counters {
            continue;
        }
        let Some(key) = line.split_whitespace().next() else {
            continue;
        };
        if !KNOWN_COUNTERS.contains(&key) {
            eprintln!(
                "trace_check: {path}: line {}: unknown counter {key:?}",
                i + 1
            );
            exit(1);
        }
        seen += 1;
    }
    if seen == 0 {
        eprintln!("trace_check: {path}: no counters section (was --metrics on?)");
        exit(1);
    }
    println!("trace_check: {path}: {seen} counters OK");
}

fn fail(line_no: usize, msg: &str) -> ! {
    eprintln!("trace_check: line {line_no}: {msg}");
    exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut counters: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--counters" => {
                i += 1;
                counters = args.get(i).map(String::as_str);
                if counters.is_none() {
                    eprintln!("trace_check: --counters needs a metrics file");
                    exit(2);
                }
            }
            p if path.is_none() => path = Some(p),
            _ => {
                eprintln!("usage: trace_check [<trace.jsonl>] [--counters <metrics.txt>]");
                exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        // Counters-only mode: gate a metrics table with no trace file.
        if let Some(counters) = counters {
            check_counters(counters);
            return;
        }
        eprintln!("usage: trace_check [<trace.jsonl>] [--counters <metrics.txt>]");
        exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        exit(2);
    });
    let mut n = 0u64;
    let mut footer_dropped: Option<u64> = None;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let v = serde_json::from_str(line)
            .unwrap_or_else(|e| fail(line_no, &format!("invalid JSON: {e:?}")));
        let Some(obj) = v.as_object() else {
            fail(line_no, "record is not an object");
        };
        if footer_dropped.is_some() {
            fail(line_no, "record after the footer");
        }
        if v["type"].as_str() == Some("footer") {
            for key in ["schema", "events", "dropped"] {
                if v[key].as_u64().is_none() {
                    fail(
                        line_no,
                        &format!("footer `{key}` is not an unsigned integer"),
                    );
                }
            }
            if v["schema"].as_u64() < Some(2) {
                fail(line_no, "footer `schema` must be >= 2");
            }
            if v["events"].as_u64() != Some(n) {
                fail(
                    line_no,
                    &format!(
                        "footer claims {:?} events but the file holds {n}",
                        v["events"].as_u64()
                    ),
                );
            }
            footer_dropped = v["dropped"].as_u64();
            continue;
        }
        for key in REQUIRED {
            if obj.get(key).is_none() {
                fail(line_no, &format!("missing key {key:?}"));
            }
        }
        if v["type"].as_str() != Some("span") {
            fail(line_no, "`type` is not \"span\"");
        }
        if v["name"].as_str().is_none_or(str::is_empty) {
            fail(line_no, "`name` must be a non-empty string");
        }
        for key in ["slot", "seq", "start_us", "dur_us", "start_ns", "dur_ns"] {
            if v[key].as_u64().is_none() {
                fail(line_no, &format!("`{key}` is not an unsigned integer"));
            }
        }
        // Attribution fields are optional but must be well-typed — and
        // all-or-nothing, since they serialise from one CellCtx.
        let attributed = obj.get("dataset").is_some();
        for key in ["dataset", "learner"] {
            match obj.get(key) {
                Some(s) if s.as_str().is_none_or(str::is_empty) => {
                    fail(line_no, &format!("`{key}` must be a non-empty string"));
                }
                Some(_) if !attributed => {
                    fail(line_no, &format!("`{key}` present without `dataset`"));
                }
                None if attributed => fail(line_no, &format!("attributed span lacks `{key}`")),
                _ => {}
            }
        }
        for key in ["cell_seed", "rows"] {
            match obj.get(key) {
                Some(x) if x.as_u64().is_none() => {
                    fail(line_no, &format!("`{key}` is not an unsigned integer"));
                }
                None if attributed => fail(line_no, &format!("attributed span lacks `{key}`")),
                _ => {}
            }
        }
        let id = v["id"]
            .as_u64()
            .unwrap_or_else(|| fail(line_no, "`id` is not an unsigned integer"));
        if id != n {
            fail(
                line_no,
                &format!("ids must be monotone: expected {n}, got {id}"),
            );
        }
        n += 1;
    }
    if n == 0 {
        eprintln!("trace_check: {path}: no records (was tracing enabled?)");
        exit(1);
    }
    let Some(dropped) = footer_dropped else {
        eprintln!("trace_check: {path}: missing footer record");
        exit(1);
    };
    if dropped > 0 {
        // Exit 3 (see EXIT_CODES.md): structurally valid but silently
        // truncated — the buffer cap dropped events, so aggregate span
        // totals no longer match the metrics snapshot.
        eprintln!("trace_check: {path}: trace truncated: {dropped} events dropped");
        exit(3);
    }
    println!("trace_check: {path}: {n} spans OK, footer OK");
    if let Some(metrics_path) = counters {
        check_counters(metrics_path);
    }
}
