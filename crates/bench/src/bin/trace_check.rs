//! Validates an oeb-trace JSONL file against the exported schema: every
//! line is a JSON object with the required keys, `type` is `"span"`,
//! ids are monotone `0..n`, and the numeric fields are unsigned
//! integers. Used by `ci.sh` to gate the traced smoke run.
//!
//! Usage: `trace_check <trace.jsonl>`; exits 0 when valid, 1 with a
//! line-numbered message otherwise.

use std::process::exit;

const REQUIRED: [&str; 7] = ["type", "id", "slot", "seq", "name", "start_us", "dur_us"];

fn fail(line_no: usize, msg: &str) -> ! {
    eprintln!("trace_check: line {line_no}: {msg}");
    exit(1);
}

fn main() {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        exit(2);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_check: cannot read {path}: {e}");
        exit(2);
    });
    let mut n = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let v = serde_json::from_str(line)
            .unwrap_or_else(|e| fail(line_no, &format!("invalid JSON: {e:?}")));
        let Some(obj) = v.as_object() else {
            fail(line_no, "record is not an object");
        };
        for key in REQUIRED {
            if obj.get(key).is_none() {
                fail(line_no, &format!("missing key {key:?}"));
            }
        }
        if v["type"].as_str() != Some("span") {
            fail(line_no, "`type` is not \"span\"");
        }
        if v["name"].as_str().is_none_or(str::is_empty) {
            fail(line_no, "`name` must be a non-empty string");
        }
        for key in ["slot", "seq", "start_us", "dur_us"] {
            if v[key].as_u64().is_none() {
                fail(line_no, &format!("`{key}` is not an unsigned integer"));
            }
        }
        let id = v["id"]
            .as_u64()
            .unwrap_or_else(|| fail(line_no, "`id` is not an unsigned integer"));
        if id != n {
            fail(
                line_no,
                &format!("ids must be monotone: expected {n}, got {id}"),
            );
        }
        n += 1;
    }
    if n == 0 {
        eprintln!("trace_check: {path}: no records (was tracing enabled?)");
        exit(1);
    }
    println!("trace_check: {path}: {n} spans OK");
}
