//! Wall-clock comparison of the staged sweep pipeline against the
//! unshared baseline, emitted as `BENCH_sweep.json`.
//!
//! Both sides evaluate the identical (dataset x algorithm x seed) grid
//! over the five representative datasets:
//!
//! * **baseline** — the pre-refactor per-run cost model: every cell
//!   regenerates its dataset and prepares its own stream (each learner
//!   re-ran generation, imputation, and scaling) and runs sequentially;
//! * **staged** — cells share generated datasets and
//!   [`PreparedStream`](oeb_core::PreparedStream) artifacts through the
//!   synth and prepare caches and fan out across the worker pool.
//!
//! The learner configuration is deliberately light (one epoch, small
//! network, single-member ensembles) so the comparison measures the
//! pipeline stages being shared, not network training throughput;
//! preprocessing runs the paper's full pipeline (KNN imputation + ECOD
//! outlier removal) at a dense window factor on both sides.
//!
//! Usage: `bench_sweep [--scale F] [--seeds N] [--threads N] [--out FILE]`

use oeb_core::{
    evaluate_prepared, prepare_stream, resolve_threads, run_sweep, Algorithm, HarnessConfig,
    OutlierRemoval, RunResult,
};
use oeb_synth::StreamSpec;
use std::time::Instant;

struct Options {
    scale: f64,
    n_seeds: usize,
    threads: Option<usize>,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let usage = "usage: bench_sweep [--scale F] [--seeds N] [--threads N] [--out FILE]";
    let mut opts = Options {
        scale: 0.10,
        n_seeds: 3,
        threads: None,
        out: "BENCH_sweep.json".into(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| v > 0.0 && v <= 1.0)
                    .ok_or(format!("--scale needs a value in (0, 1]\n{usage}"))?;
            }
            "--seeds" => {
                i += 1;
                opts.n_seeds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &usize| v >= 1)
                    .ok_or(format!("--seeds needs a positive integer\n{usage}"))?;
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &usize| v >= 1)
                        .ok_or(format!("--threads needs a positive integer\n{usage}"))?,
                );
            }
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("--out needs a path\n{usage}"))?;
            }
            _ => return Err(usage.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// The paper's full preprocessing pipeline (KNN imputation — the
/// [`HarnessConfig`] default — plus ECOD outlier removal) with a light
/// learner. Both sides of the comparison use this identical
/// configuration.
fn bench_config(seed: u64) -> HarnessConfig {
    let mut cfg = HarnessConfig {
        seed,
        outlier_removal: OutlierRemoval::Ecod,
        window_factor: 0.25,
        ..Default::default()
    };
    cfg.learner.epochs = 1;
    cfg.learner.hidden = vec![8];
    cfg.learner.ensemble_size = 1;
    cfg.learner.buffer_size = 20;
    cfg
}

/// The pre-refactor cost model: every cell regenerates its dataset and
/// runs one full prepare of its own — no sharing, sequential. This is
/// what `run_seeds`/`run_matrix` did before the synth and prepare
/// caches: each (dataset, algorithm, seed) run called
/// `oeb_synth::generate` and re-ran the whole preprocessing pipeline.
fn run_baseline(
    specs: &[StreamSpec],
    algorithms: &[Algorithm],
    seeds: &[u64],
) -> (Vec<RunResult>, f64, f64, f64) {
    let mut results = Vec::new();
    let (mut generate_seconds, mut prepare_seconds, mut evaluate_seconds) = (0.0, 0.0, 0.0);
    for &seed in seeds {
        let cfg = bench_config(seed);
        for spec in specs {
            for &alg in algorithms {
                let t = Instant::now();
                let dataset = oeb_synth::generate(spec, 0);
                generate_seconds += t.elapsed().as_secs_f64();
                let t = Instant::now();
                let prepared = prepare_stream(&dataset, &cfg);
                prepare_seconds += t.elapsed().as_secs_f64();
                if let Ok(prepared) = prepared {
                    let t = Instant::now();
                    let run = evaluate_prepared(&prepared, alg, &cfg);
                    evaluate_seconds += t.elapsed().as_secs_f64();
                    if let Ok(r) = run {
                        results.push(r);
                    }
                }
            }
        }
    }
    (results, generate_seconds, prepare_seconds, evaluate_seconds)
}

/// The staged pipeline: each dataset generated once, shared prepare
/// artifacts, parallel executor.
fn run_staged(
    specs: &[StreamSpec],
    algorithms: &[Algorithm],
    seeds: &[u64],
    threads: usize,
) -> Vec<RunResult> {
    let datasets: Vec<_> = specs
        .iter()
        .map(|spec| oeb_synth::generate(spec, 0))
        .collect();
    let mut results = Vec::new();
    for &seed in seeds {
        let cfg = bench_config(seed);
        let report = run_sweep(&datasets, algorithms, &cfg, None, None, threads)
            .expect("default config is valid");
        results.extend(report.completed().map(|(_, r)| r.clone()));
    }
    results
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let threads = resolve_threads(opts.threads);
    let seeds: Vec<u64> = (0..opts.n_seeds as u64).collect();
    let algorithms = Algorithm::all().to_vec();
    let specs: Vec<StreamSpec> = oeb_synth::selected_five()
        .into_iter()
        .map(|e| e.spec.scaled(opts.scale))
        .collect();
    eprintln!(
        "[bench_sweep] {} datasets x {} algorithms x {} seeds, {} threads",
        specs.len(),
        algorithms.len(),
        seeds.len(),
        threads
    );

    // Staged side first, so its caches start cold and it pays the
    // first-generate/first-prepare costs itself; the baseline bypasses
    // the caches entirely.
    let started = Instant::now();
    let staged = run_staged(&specs, &algorithms, &seeds, threads);
    let staged_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let (baseline, generate_seconds, prepare_seconds, evaluate_seconds) =
        run_baseline(&specs, &algorithms, &seeds);
    let baseline_seconds = started.elapsed().as_secs_f64();

    assert_eq!(
        staged.len(),
        baseline.len(),
        "staged and baseline grids must complete the same cells"
    );
    let speedup = baseline_seconds / staged_seconds.max(1e-9);
    let json = serde_json::json!({
        "benchmark": "five-dataset sweep, staged pipeline vs per-cell sequential baseline",
        "scale": opts.scale,
        "seeds": seeds.len() as u64,
        "threads": threads as u64,
        "algorithms": algorithms.len() as u64,
        "datasets": specs.len() as u64,
        "cells_completed": staged.len() as u64,
        "baseline_seconds": baseline_seconds,
        "baseline_generate_seconds": generate_seconds,
        "baseline_prepare_seconds": prepare_seconds,
        "baseline_evaluate_seconds": evaluate_seconds,
        "staged_seconds": staged_seconds,
        "speedup": speedup,
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&json).expect("json serialises"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    eprintln!(
        "[bench_sweep] baseline {baseline_seconds:.2}s, staged {staged_seconds:.2}s \
         ({speedup:.2}x) -> {}",
        opts.out
    );
}
