//! Wall-clock comparison of the staged sweep pipeline against the
//! unshared baseline, emitted as `BENCH_sweep.json`.
//!
//! Both sides evaluate the identical (dataset x algorithm x seed) grid
//! over the five representative datasets:
//!
//! * **baseline** — the pre-refactor per-run cost model: every cell
//!   regenerates its dataset and prepares its own stream (each learner
//!   re-ran generation, imputation, and scaling) and runs sequentially;
//! * **staged** — cells share generated datasets and
//!   [`PreparedStream`](oeb_core::PreparedStream) artifacts through the
//!   synth and prepare caches and fan out across the worker pool.
//!
//! The learner configuration is deliberately light (one epoch, small
//! network, single-member ensembles) so the comparison measures the
//! pipeline stages being shared, not network training throughput;
//! preprocessing runs the paper's full pipeline (KNN imputation + ECOD
//! outlier removal) at a dense window factor on both sides.
//!
//! Usage: `bench_sweep [--scale F] [--seeds N] [--threads N] [--out FILE]
//! [--reference-staged-seconds F]`
//!
//! `--reference-staged-seconds` takes the warm staged time (minimum
//! over repeated in-process passes) measured by a pre-instrumentation
//! build of this binary (same machine, same args) and records the
//! disabled-path overhead — instrumentation compiled in but switched
//! off versus not compiled in at all — next to the enabled-path ratio
//! the binary measures on its own. Warm minima are compared because
//! cold single passes jitter by several percent on shared machines.

use oeb_bench::profile;
use oeb_core::{
    evaluate_prepared, prepare_stream, resolve_threads, run_chaos_matrix, run_sweep,
    run_sweep_scheduled, Algorithm, ChaosOptions, HarnessConfig, OutlierRemoval, RunResult,
    Schedule, SupervisePolicy,
};
use oeb_synth::StreamSpec;
use oeb_trace::Stopwatch;

struct Options {
    scale: f64,
    n_seeds: usize,
    threads: Option<usize>,
    out: String,
    reference_staged_seconds: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let usage = "usage: bench_sweep [--scale F] [--seeds N] [--threads N] [--out FILE] \
                 [--reference-staged-seconds F]";
    let mut opts = Options {
        scale: 0.10,
        n_seeds: 3,
        threads: None,
        out: "BENCH_sweep.json".into(),
        reference_staged_seconds: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &f64| v > 0.0 && v <= 1.0)
                    .ok_or(format!("--scale needs a value in (0, 1]\n{usage}"))?;
            }
            "--seeds" => {
                i += 1;
                opts.n_seeds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &usize| v >= 1)
                    .ok_or(format!("--seeds needs a positive integer\n{usage}"))?;
            }
            "--threads" => {
                i += 1;
                opts.threads = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &usize| v >= 1)
                        .ok_or(format!("--threads needs a positive integer\n{usage}"))?,
                );
            }
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("--out needs a path\n{usage}"))?;
            }
            "--reference-staged-seconds" => {
                i += 1;
                opts.reference_staged_seconds = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&v: &f64| v > 0.0)
                        .ok_or(format!(
                            "--reference-staged-seconds needs a positive number\n{usage}"
                        ))?,
                );
            }
            _ => return Err(usage.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// The paper's full preprocessing pipeline (KNN imputation — the
/// [`HarnessConfig`] default — plus ECOD outlier removal) with a light
/// learner. Both sides of the comparison use this identical
/// configuration.
fn bench_config(seed: u64) -> HarnessConfig {
    let mut cfg = HarnessConfig {
        seed,
        outlier_removal: OutlierRemoval::Ecod,
        window_factor: 0.25,
        ..Default::default()
    };
    cfg.learner.epochs = 1;
    cfg.learner.hidden = vec![8];
    cfg.learner.ensemble_size = 1;
    cfg.learner.buffer_size = 20;
    cfg
}

/// The pre-refactor cost model: every cell regenerates its dataset and
/// runs one full prepare of its own — no sharing, sequential. This is
/// what `run_seeds`/`run_matrix` did before the synth and prepare
/// caches: each (dataset, algorithm, seed) run called
/// `oeb_synth::generate` and re-ran the whole preprocessing pipeline.
fn run_baseline(
    specs: &[StreamSpec],
    algorithms: &[Algorithm],
    seeds: &[u64],
) -> (Vec<RunResult>, f64, f64, f64) {
    let mut results = Vec::new();
    let (mut generate_seconds, mut prepare_seconds, mut evaluate_seconds) = (0.0, 0.0, 0.0);
    for &seed in seeds {
        let cfg = bench_config(seed);
        for spec in specs {
            for &alg in algorithms {
                let t = Stopwatch::start();
                let dataset = oeb_synth::generate(spec, 0);
                generate_seconds += t.elapsed_seconds();
                let t = Stopwatch::start();
                let prepared = prepare_stream(&dataset, &cfg);
                prepare_seconds += t.elapsed_seconds();
                if let Ok(prepared) = prepared {
                    let t = Stopwatch::start();
                    let run = evaluate_prepared(&prepared, alg, &cfg);
                    evaluate_seconds += t.elapsed_seconds();
                    if let Ok(r) = run {
                        results.push(r);
                    }
                }
            }
        }
    }
    (results, generate_seconds, prepare_seconds, evaluate_seconds)
}

/// The staged pipeline: each dataset generated once, shared prepare
/// artifacts, parallel executor.
fn run_staged(
    specs: &[StreamSpec],
    algorithms: &[Algorithm],
    seeds: &[u64],
    threads: usize,
) -> Vec<RunResult> {
    let datasets: Vec<_> = specs
        .iter()
        .map(|spec| oeb_synth::generate(spec, 0))
        .collect();
    let mut results = Vec::new();
    for &seed in seeds {
        let cfg = bench_config(seed);
        let report = run_sweep(&datasets, algorithms, &cfg, None, None, threads)
            .expect("default config is valid");
        results.extend(report.completed().map(|(_, r)| r.clone()));
    }
    results
}

/// [`run_staged`] under an explicit claim-order schedule (the cost
/// model fitted from the FIFO pass's own trace).
fn run_staged_scheduled(
    specs: &[StreamSpec],
    algorithms: &[Algorithm],
    seeds: &[u64],
    threads: usize,
    schedule: &Schedule,
) -> Vec<RunResult> {
    let datasets: Vec<_> = specs
        .iter()
        .map(|spec| oeb_synth::generate(spec, 0))
        .collect();
    let mut results = Vec::new();
    for &seed in seeds {
        let cfg = bench_config(seed);
        let report = run_sweep_scheduled(
            &datasets,
            algorithms,
            &cfg,
            None,
            None,
            threads,
            &SupervisePolicy::unsupervised(),
            schedule,
        )
        .expect("default config is valid");
        results.extend(report.completed().map(|(_, r)| r.clone()));
    }
    results
}

/// Serialise the currently buffered trace events (plus footer) exactly
/// as `write_trace_file` would, so the in-process profiler sees the
/// same bytes an on-disk trace file carries.
fn drain_trace_text() -> String {
    let events = oeb_trace::drain_events();
    let mut text = String::new();
    for (id, ev) in events.iter().enumerate() {
        text.push_str(&oeb_trace::render_trace_event(id, ev));
        text.push('\n');
    }
    text.push_str(&oeb_trace::render_trace_footer(
        events.len(),
        oeb_trace::dropped_events(),
    ));
    text.push('\n');
    text
}

/// Result equality up to wall-clock fields (`train_seconds`,
/// `test_seconds`, `throughput`): the loss curves, item counts, and
/// degradation logs must match bit for bit.
fn same_modulo_timing(a: &[RunResult], b: &[RunResult]) -> bool {
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.dataset == y.dataset
                && x.algorithm == y.algorithm
                && bits(&x.per_window_loss) == bits(&y.per_window_loss)
                && x.mean_loss.to_bits() == y.mean_loss.to_bits()
                && x.items == y.items
                && x.degradations == y.degradations
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let threads = resolve_threads(opts.threads);
    let seeds: Vec<u64> = (0..opts.n_seeds as u64).collect();
    let algorithms = Algorithm::all().to_vec();
    let specs: Vec<StreamSpec> = oeb_synth::selected_five()
        .into_iter()
        .map(|e| e.spec.scaled(opts.scale))
        .collect();
    eprintln!(
        "[bench_sweep] {} datasets x {} algorithms x {} seeds, {} threads",
        specs.len(),
        algorithms.len(),
        seeds.len(),
        threads
    );

    // Staged side first, so its caches start cold and it pays the
    // first-generate/first-prepare costs itself; the baseline bypasses
    // the caches entirely.
    let started = Stopwatch::start();
    let staged = run_staged(&specs, &algorithms, &seeds, threads);
    let staged_seconds = started.elapsed_seconds();

    let started = Stopwatch::start();
    let (baseline, generate_seconds, prepare_seconds, evaluate_seconds) =
        run_baseline(&specs, &algorithms, &seeds);
    let baseline_seconds = started.elapsed_seconds();

    // Tracing overhead: alternating warm-cache staged passes with the
    // instrumentation disabled and enabled, timed by the shared
    // min-of-N helper (the minimum is the noise floor, so scheduler
    // hiccups inflate neither side). The alternation loop stays here so
    // the trace enable/disable toggles and the bit-identity assert run
    // outside the timed regions; the last traced pass supplies the
    // metrics block.
    let mut untraced_timer = oeb_bench::WarmTimer::new();
    let mut traced_timer = oeb_bench::WarmTimer::new();
    for _ in 0..oeb_bench::WARM_PASSES {
        let warm_untraced =
            untraced_timer.time(|| run_staged(&specs, &algorithms, &seeds, threads));
        oeb_trace::reset();
        oeb_trace::enable();
        let warm_traced = traced_timer.time(|| run_staged(&specs, &algorithms, &seeds, threads));
        oeb_trace::disable();
        assert!(
            same_modulo_timing(&warm_untraced, &warm_traced),
            "results must be bit-identical with tracing on and off"
        );
    }
    let untraced_seconds = untraced_timer.min_seconds();
    let traced_seconds = traced_timer.min_seconds();
    let enabled_overhead_pct = (traced_seconds / untraced_seconds.max(1e-9) - 1.0) * 100.0;
    let metrics = oeb_bench::metrics_json(&oeb_trace::snapshot());

    assert_eq!(
        staged.len(),
        baseline.len(),
        "staged and baseline grids must complete the same cells"
    );
    let speedup = baseline_seconds / staged_seconds.max(1e-9);

    // Per-stage time shares from the traced pass's span totals.
    let snap = oeb_trace::snapshot();
    const STAGES: [&str; 5] = [
        "prepare.impute",
        "prepare.scale",
        "prepare.detect",
        "evaluate.train",
        "evaluate.test",
    ];
    let stage_total: u64 = STAGES
        .iter()
        .filter_map(|s| snap.spans.get(*s).map(|v| v.total_ns))
        .sum();
    let mut stage_shares = serde_json::Map::new();
    for stage in STAGES {
        let ns = snap.spans.get(stage).map_or(0, |v| v.total_ns);
        stage_shares.insert(stage, (ns as f64 / stage_total.max(1) as f64).into());
    }

    // Cost-schedule closed loop: profile the last traced FIFO pass from
    // its own buffered events, fit the per-learner cost model, replay
    // the identical grid with cost-ordered claiming, and record the
    // utilization/makespan delta. The replay must stay bit-identical —
    // the schedule only permutes the claim order.
    let fifo_trace = profile::parse_trace(&drain_trace_text()).expect("own trace parses");
    let fifo_profile = profile::analyze(&fifo_trace, 1);
    let cost_model = profile::fit_cost_model(&fifo_trace);
    oeb_trace::reset();
    oeb_trace::enable();
    let started = Stopwatch::start();
    let cost_results = run_staged_scheduled(
        &specs,
        &algorithms,
        &seeds,
        threads,
        &Schedule::Cost(cost_model.clone()),
    );
    let cost_seconds = started.elapsed_seconds();
    oeb_trace::disable();
    assert!(
        same_modulo_timing(&staged, &cost_results),
        "cost-ordered claiming must be bit-identical to FIFO"
    );
    let cost_trace = profile::parse_trace(&drain_trace_text()).expect("own trace parses");
    let cost_profile = profile::analyze(&cost_trace, 1);
    let profile_block = serde_json::json!({
        "cost_model_classes": cost_model.classes.len() as u64,
        "cost_samples": profile::cost_samples(&fifo_trace).len() as u64,
        "fifo_utilization": fifo_profile.utilization,
        "cost_utilization": cost_profile.utilization,
        "utilization_delta": cost_profile.utilization - fifo_profile.utilization,
        "fifo_makespan_ns": fifo_profile.makespan_ns,
        "cost_makespan_ns": cost_profile.makespan_ns,
        "lower_bound_ns": fifo_profile.lower_bound_ns,
        "cost_pass_seconds": cost_seconds,
        "results_bit_identical": serde_json::Value::Bool(true),
    });

    // The disabled path — instrumentation compiled in but switched off
    // — is the warm untraced minimum above (tracing defaults to off);
    // the reference is the same warm minimum timed by a
    // pre-instrumentation build.
    let mut tracing = serde_json::Map::new();
    tracing.insert("warm_disabled_seconds", untraced_seconds.into());
    tracing.insert("warm_enabled_seconds", traced_seconds.into());
    tracing.insert("enabled_overhead_pct", enabled_overhead_pct.into());
    tracing.insert("results_bit_identical", serde_json::Value::Bool(true));
    let disabled_overhead_pct = opts.reference_staged_seconds.map(|reference| {
        let pct = (untraced_seconds / reference - 1.0) * 100.0;
        tracing.insert("pre_instrumentation_warm_staged_seconds", reference.into());
        tracing.insert("disabled_overhead_pct", pct.into());
        pct
    });

    // Supervision soak: the first scenarios of the chaos fault × drift
    // matrix plus its control runs, exercising seeded retry, forced
    // quarantine, and deterministic logical deadlines. The accounting
    // lands in the artifact so a supervision regression (a dropped
    // cell, a missed quarantine, a nondeterministic deadline) shows up
    // as a BENCH_sweep.json diff — and the run aborts outright if any
    // invariant is violated.
    let started = Stopwatch::start();
    let chaos = run_chaos_matrix(&ChaosOptions {
        seed: 0,
        max_cells: Some(8),
        threads,
        max_retries: 2,
        rows: 360,
    })
    .expect("chaos options are valid");
    let chaos_seconds = started.elapsed_seconds();
    assert!(
        chaos.passed(),
        "chaos invariants violated: {:?}",
        chaos.violations
    );
    let supervision = serde_json::json!({
        "soak_cells": chaos.cells.len() as u64,
        "soak_seconds": chaos_seconds,
        "retries": chaos.summary.retries as u64,
        "recovered": chaos.summary.recovered as u64,
        "timeouts": chaos.summary.timeouts as u64,
        "wall_timeouts": chaos.summary.wall_timeouts as u64,
        "quarantined": chaos.summary.quarantined as u64,
        "violations": chaos.violations.len() as u64,
    });

    let json = serde_json::json!({
        "benchmark": "five-dataset sweep, staged pipeline vs per-cell sequential baseline",
        "scale": opts.scale,
        "seeds": seeds.len() as u64,
        "threads": threads as u64,
        "algorithms": algorithms.len() as u64,
        "datasets": specs.len() as u64,
        "cells_completed": staged.len() as u64,
        "baseline_seconds": baseline_seconds,
        "baseline_generate_seconds": generate_seconds,
        "baseline_prepare_seconds": prepare_seconds,
        "baseline_evaluate_seconds": evaluate_seconds,
        "staged_seconds": staged_seconds,
        "speedup": speedup,
        "tracing": serde_json::Value::Object(tracing),
        "stage_shares": serde_json::Value::Object(stage_shares),
        "profile": profile_block,
        "supervision": supervision,
        "metrics": metrics,
    });
    std::fs::write(
        &opts.out,
        serde_json::to_string_pretty(&json).expect("json serialises"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    let disabled_note = disabled_overhead_pct
        .map(|pct| format!(", disabled-path {pct:+.2}% vs pre-instrumentation"))
        .unwrap_or_default();
    eprintln!(
        "[bench_sweep] baseline {baseline_seconds:.2}s, staged {staged_seconds:.2}s \
         ({speedup:.2}x), tracing enabled overhead {enabled_overhead_pct:+.2}%{disabled_note}, \
         cost-schedule utilization {:.1}% -> {:.1}% -> {}",
        100.0 * fifo_profile.utilization,
        100.0 * cost_profile.utilization,
        opts.out
    );
}
