//! `oeb-profile`: timeline analytics over a recorded trace.
//!
//! ```text
//! oeb-profile <trace.jsonl> [--out PROFILE.json] [--top K] [--threads N]
//!             [--check-metrics metrics.txt]
//! oeb-profile cost-model <trace.jsonl> [--out COST_MODEL.json]
//! ```
//!
//! The default mode prints the human-readable profile table to stdout
//! and, with `--out`, writes the deterministic `PROFILE.json`.
//! `--check-metrics` cross-checks the trace's per-stage totals against
//! a rendered metrics table from the same run — they must match
//! exactly, or the tool exits 1.
//!
//! `cost-model` fits `cost ≈ a + b·rows` per learner class from the
//! attributed cell spans and writes `COST_MODEL.json` for the sweep's
//! `--schedule cost` mode.
//!
//! Exit codes: 0 success, 1 analysis/check failure, 2 usage.

use std::path::PathBuf;
use std::process::ExitCode;

use oeb_bench::profile::{
    analyze, check_metrics, cost_samples, fit_cost_model, parse_trace, profile_json, render_profile,
};

const USAGE: &str = "usage: oeb-profile <trace.jsonl> [--out PROFILE.json] [--top K] [--threads N] [--check-metrics metrics.txt]
       oeb-profile cost-model <trace.jsonl> [--out COST_MODEL.json]";

struct Options {
    cost_model: bool,
    trace: PathBuf,
    out: Option<PathBuf>,
    top: usize,
    threads: usize,
    check_metrics: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        cost_model: false,
        trace: PathBuf::new(),
        out: None,
        top: 10,
        threads: 1,
        check_metrics: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--top" => {
                opts.top = value("--top")?
                    .parse()
                    .map_err(|_| "--top needs a positive integer".to_string())?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
            }
            "--check-metrics" => {
                opts.check_metrics = Some(PathBuf::from(value("--check-metrics")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.as_slice() {
        [trace] => opts.trace = PathBuf::from(trace),
        [sub, trace] if sub == "cost-model" => {
            opts.cost_model = true;
            opts.trace = PathBuf::from(trace);
        }
        _ => return Err("expected one trace file (optionally after `cost-model`)".to_string()),
    }
    if opts.cost_model && (opts.check_metrics.is_some() || opts.top != 10 || opts.threads != 1) {
        return Err("cost-model only takes --out".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.trace)
        .map_err(|e| format!("cannot read {}: {e}", opts.trace.display()))?;
    let trace = parse_trace(&text)?;

    if opts.cost_model {
        let samples = cost_samples(&trace);
        if samples.is_empty() {
            return Err("trace has no attributed cell spans to fit".to_string());
        }
        let model = fit_cost_model(&trace);
        let json = serde_json::to_string_pretty(&model.to_json())
            .map_err(|e| format!("cannot serialise cost model: {e}"))?;
        match &opts.out {
            Some(path) => {
                std::fs::write(path, json + "\n")
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!(
                    "cost model: {} classes from {} samples -> {}",
                    model.classes.len(),
                    samples.len(),
                    path.display()
                );
            }
            None => println!("{json}"),
        }
        return Ok(());
    }

    let profile = analyze(&trace, opts.threads);
    print!("{}", render_profile(&profile, opts.top));
    if let Some(path) = &opts.check_metrics {
        let metrics = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let checked = check_metrics(&profile, &metrics)?;
        println!("\ncheck-metrics: {checked} span totals match the snapshot");
    }
    if let Some(path) = &opts.out {
        let json = serde_json::to_string_pretty(&profile_json(&profile, opts.top))
            .map_err(|e| format!("cannot serialise profile: {e}"))?;
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("profile written to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("oeb-profile: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("oeb-profile: {msg}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_profile_mode() {
        let o = opts(&["t.jsonl", "--out", "P.json", "--top", "3", "--threads", "4"]).unwrap();
        assert!(!o.cost_model);
        assert_eq!(o.trace, PathBuf::from("t.jsonl"));
        assert_eq!(o.out, Some(PathBuf::from("P.json")));
        assert_eq!((o.top, o.threads), (3, 4));
    }

    #[test]
    fn parses_cost_model_mode() {
        let o = opts(&["cost-model", "t.jsonl", "--out", "C.json"]).unwrap();
        assert!(o.cost_model);
        assert!(opts(&["cost-model", "t.jsonl", "--top", "3"]).is_err());
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(opts(&[]).is_err());
        assert!(opts(&["a", "b"]).is_err());
        assert!(opts(&["t.jsonl", "--nope"]).is_err());
        assert!(opts(&["t.jsonl", "--top"]).is_err());
    }
}
